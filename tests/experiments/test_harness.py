"""Tests for the experiment harness (scales, context, method runs)."""

import pytest

from repro.experiments import (
    SCALES,
    TABLE4_METHOD_ORDER,
    get_scale,
    prepare_context,
    run_method,
)


class TestScales:
    def test_known_scales(self):
        assert {"paper", "standard", "fast", "smoke"} <= set(SCALES)

    def test_get_scale_passthrough(self):
        scale = SCALES["smoke"]
        assert get_scale(scale) is scale

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_paper_scale_uses_table1_sizes(self):
        scale = get_scale("paper")
        assert scale.instances_for("adult") == 48_842
        assert scale.instances_for("kdd_census") == 299_285
        assert scale.instances_for("law_school") == 20_798

    def test_capped_scale(self):
        scale = get_scale("smoke")
        assert scale.instances_for("kdd_census") == scale.max_instances
        assert scale.max_instances < 20_798  # smaller than every dataset


@pytest.fixture(scope="module")
def context():
    return prepare_context("adult", scale="smoke", seed=0)


class TestContext:
    def test_explains_undesired_class_rows(self, context):
        predictions = context.blackbox.predict(context.x_explain)
        assert (predictions == 0).all()
        assert (context.desired == 1).all()

    def test_explain_count_capped(self, context):
        assert len(context.x_explain) <= SCALES["smoke"].n_explain

    def test_blackbox_beats_chance(self, context):
        assert context.blackbox_accuracy > 0.6

    def test_stats_fitted(self, context):
        assert context.stats.mad("age") > 0

    def test_dataset_property(self, context):
        assert context.dataset == "adult"


class TestRunMethod:
    def test_ours_reports_single_kind(self, context):
        report = run_method(context, "ours_unary")
        assert report.feasibility_unary is not None
        assert report.feasibility_binary is None
        assert report.validity > 50.0

    def test_baseline_reports_both_kinds(self, context):
        report = run_method(context, "cem")
        assert report.feasibility_unary is not None
        assert report.feasibility_binary is not None

    def test_unknown_method(self, context):
        with pytest.raises(KeyError):
            run_method(context, "gandalf")

    def test_method_order_is_papers(self):
        assert TABLE4_METHOD_ORDER[0] == "mahajan_unary"
        assert TABLE4_METHOD_ORDER[-1] == "ours_binary"
        assert len(TABLE4_METHOD_ORDER) == 9

"""The perf harness's serve section: cold vs warm timings, parity guard."""

from repro.experiments.perfbench import PERF_SCALES, _serve_section

_TINY_SPEC = {
    "n_instances": 500,
    "train_epochs": 3,
    "cf_epochs": 2,
    "serve_rows": 16,
}


class TestServeSection:
    def test_section_shape_and_sanity(self):
        section = _serve_section(_TINY_SPEC, seed=0)
        assert section["rows"] == 16
        assert section["cold_start_seconds"] > 0
        assert section["warm_start_seconds"] > 0
        # warm start skips training entirely, so even on a tiny workload
        # it must come out ahead
        assert section["speedup_cold_vs_warm"] > 1.0
        assert section["warm_rows_per_sec"] > 0
        assert section["cache_hit_rows_per_sec"] > 0
        # the density-aware warm start (persisted k-NN state) rides along
        assert section["warm_density_seconds"] > 0
        assert section["warm_density_rows_per_sec"] > 0

    def test_every_scale_declares_serve_rows(self):
        for name, spec in PERF_SCALES.items():
            assert "serve_rows" in spec, name
            for key in ("density_reference", "density_rows",
                        "density_candidates"):
                assert key in spec, (name, key)

"""Tests for the table and figure builders."""

import pytest

from repro.experiments import (
    build_figure6,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    prepare_context,
)
from repro.metrics import MethodReport


class TestTable1:
    def test_rows_and_layout(self):
        text, rows = build_table1(scale="smoke")
        assert "TABLE I" in text
        assert len(rows) == 3
        # attribute mixes are schema facts, independent of scale
        mixes = {row[0]: row[3] for row in rows}
        assert mixes["Adult"] == "5/2/2"
        assert mixes["KDD-Census Income"] == "32/2/7"
        assert mixes["Law School Dataset"] == "1/3/6"

    def test_cleaning_ratios(self):
        _, rows = build_table1(scale="smoke")
        for row in rows:
            assert row[2] < row[1]  # cleaned < raw


class TestTable2:
    def test_layer_structure(self):
        text, rows = build_table2(n_features=9)
        assert "TABLE II" in text
        encoder_rows = [r for r in rows if r[0] == "Encoder"]
        decoder_rows = [r for r in rows if r[0] == "Decoder"]
        assert len(encoder_rows) == 5
        assert len(decoder_rows) == 5
        assert encoder_rows[0][2] == 10  # Num. Features + 1
        assert decoder_rows[0][2] == 11  # latent + 1

    def test_paper_widths_present(self):
        _, rows = build_table2(n_features=9)
        widths = [row[3] for row in rows if isinstance(row[3], int)]
        for width in (20, 16, 14, 12):
            assert width in widths


class TestTable3:
    def test_six_rows(self):
        text, rows = build_table3()
        assert "TABLE III" in text
        assert len(rows) == 6

    def test_paper_learning_rates(self):
        _, rows = build_table3()
        rates = {(row[0], row[1]): row[2] for row in rows}
        assert rates[("Adult", "Unary-const")] == 0.2
        assert rates[("KDD-Census Income", "Unary-const")] == 0.1

    def test_batch_always_2048(self):
        _, rows = build_table3()
        assert all(row[3] == 2048 for row in rows)


class TestTable4:
    def fake_report(self, name):
        return MethodReport(
            method=name, validity=99.0, feasibility_unary=80.0,
            feasibility_binary=None, continuous_proximity=-2.5,
            categorical_proximity=-2.0, sparsity=4.4)

    def test_render(self):
        text, rows = build_table4([self.fake_report("ours_unary")], "Adult")
        assert "TABLE IV" in text
        assert "Our method (a) Unary" in text
        assert "Adult" in text

    def test_none_rendered_as_dash(self):
        text, _ = build_table4([self.fake_report("revise")])
        assert "-" in text


@pytest.fixture(scope="module")
def smoke_result():
    from repro.core import FeasibleCFExplainer, fast_config
    context = prepare_context("adult", scale="smoke", seed=0)
    explainer = FeasibleCFExplainer(
        context.bundle.encoder, constraint_kind="binary",
        config=fast_config(epochs=6), blackbox=context.blackbox, seed=0)
    explainer.fit(context.x_train, context.y_train)
    return explainer.explain(context.x_explain, context.desired)


class TestTable5:
    def test_picks_valid_feasible_row(self, smoke_result):
        text, index = build_table5(smoke_result)
        if index is None:
            pytest.skip("no valid+feasible row in the smoke batch")
        assert "TABLE V" in text
        assert smoke_result.valid[index]
        assert smoke_result.feasible[index]
        assert "x true" in text and "x pred" in text

    def test_explicit_index(self, smoke_result):
        text, index = build_table5(smoke_result, index=0)
        assert index == 0


class TestFigure6:
    def test_structure_and_metrics(self):
        figure = build_figure6("adult", scale="smoke", n_points=120,
                               tsne_iterations=120)
        assert figure.dataset == "adult"
        assert [v.name for v in figure.views] == [
            "training data", "latent samples", "predicted examples"]
        for view in figure.views:
            assert view.embedding.shape == (120, 2)
            assert len(view.labels) == 120
            assert 0.0 <= view.knn_agreement <= 1.0

    def test_render_contains_all_panels(self):
        figure = build_figure6("adult", scale="smoke", n_points=80,
                               tsne_iterations=100)
        art = figure.render()
        assert "training data" in art
        assert "latent samples" in art
        assert "predicted examples" in art

"""Edge-case tests for the experiment builders."""

import numpy as np

from repro.core import CFBatchResult
from repro.data import load_dataset
from repro.experiments import build_figure6, build_table5, prepare_context
from repro.manifold import TSNE


class TestTable5EdgeCases:
    def make_result(self, all_bad=True):
        bundle = load_dataset("adult", n_instances=600, seed=0)
        n = 4
        x = bundle.encoded[:n]
        flags = np.zeros(n, dtype=bool) if all_bad else np.ones(n, dtype=bool)
        return CFBatchResult(
            x=x, x_cf=x.copy(), desired=np.ones(n, dtype=int),
            predicted=np.zeros(n, dtype=int), valid=flags, feasible=flags,
            encoder=bundle.encoder)

    def test_no_qualifying_row_returns_message(self):
        text, index = build_table5(self.make_result(all_bad=True))
        assert index is None
        assert "no valid" in text

    def test_qualifying_row_found(self):
        text, index = build_table5(self.make_result(all_bad=False))
        assert index == 0
        assert "TABLE V" in text


class TestFigure6WithInjectedContext:
    def test_reuses_prepared_context(self):
        context = prepare_context("adult", scale="smoke", seed=0)
        figure = build_figure6("adult", n_points=60, tsne_iterations=60,
                               context=context)
        assert figure.dataset == "adult"
        assert figure.views[0].embedding.shape == (60, 2)


class TestTSNEDimensions:
    def test_three_component_embedding(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 6))
        embedding = TSNE(n_components=3, perplexity=10,
                         n_iter=60, seed=0).fit_transform(x)
        assert embedding.shape == (40, 3)

    def test_one_component_embedding(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 4))
        embedding = TSNE(n_components=1, perplexity=8,
                         n_iter=60, seed=0).fit_transform(x)
        assert embedding.shape == (30, 1)

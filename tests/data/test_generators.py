"""Tests for the synthetic SCM dataset generators.

These verify the properties the paper's method depends on: schema
conformance, determinism, the embedded causal relations (education vs
age, tier vs LSAT) and Table I cleaning ratios.
"""

import numpy as np
import pytest

from repro.data import (
    ADULT_SCHEMA,
    EDUCATION_LEVELS,
    EDUCATION_MIN_AGE,
    KDD_SCHEMA,
    LAW_SCHEMA,
    clean,
    generate_adult,
    generate_kdd_census,
    generate_law_school,
)

N = 4000


class TestAdult:
    def test_schema_columns_present(self):
        frame, labels = generate_adult(N, seed=1)
        assert set(ADULT_SCHEMA.feature_names) <= set(frame.column_names)
        assert len(labels) == frame.n_rows == N

    def test_deterministic_in_seed(self):
        frame_a, labels_a = generate_adult(500, seed=7)
        frame_b, labels_b = generate_adult(500, seed=7)
        np.testing.assert_array_equal(labels_a, labels_b)
        np.testing.assert_allclose(frame_a["age"], frame_b["age"])

    def test_different_seeds_differ(self):
        _, labels_a = generate_adult(500, seed=1)
        _, labels_b = generate_adult(500, seed=2)
        assert not np.array_equal(labels_a, labels_b)

    def test_education_respects_min_age(self):
        frame, _ = generate_adult(N, seed=3)
        frame, _ = clean(frame, np.zeros(N))
        ages = frame["age"]
        for row, level in enumerate(frame["education"]):
            assert ages[row] >= EDUCATION_MIN_AGE[level] - 1e-9

    def test_education_age_correlation_positive(self):
        frame, _ = generate_adult(N, seed=4)
        frame, _ = clean(frame, np.zeros(N))
        ranks = np.array([EDUCATION_LEVELS.index(e) for e in frame["education"]])
        corr = np.corrcoef(frame["age"], ranks)[0, 1]
        assert corr > 0.05

    def test_income_depends_on_education(self):
        frame, labels = generate_adult(N, seed=5)
        frame, labels = clean(frame, labels)
        ranks = np.array([EDUCATION_LEVELS.index(e) for e in frame["education"]])
        high = labels[ranks >= 4].mean()
        low = labels[ranks <= 1].mean()
        assert high > low + 0.1

    def test_cleaning_ratio_matches_table1(self):
        frame, labels = generate_adult(12000, seed=6)
        cleaned, _ = clean(frame, labels)
        ratio = cleaned.n_rows / 12000
        assert abs(ratio - 32561 / 48842) < 0.02

    def test_bounds_respected(self):
        frame, _ = generate_adult(N, seed=7)
        age = frame["age"]
        assert np.nanmin(age) >= 17.0 and np.nanmax(age) <= 90.0
        hours = frame["hours_per_week"]
        assert np.nanmin(hours) >= 1.0 and np.nanmax(hours) <= 99.0

    def test_positive_rate_reasonable(self):
        _, labels = generate_adult(N, seed=8)
        assert 0.15 < labels.mean() < 0.55


class TestKDDCensus:
    def test_schema_columns_present(self):
        frame, labels = generate_kdd_census(N, seed=1)
        assert set(KDD_SCHEMA.feature_names) <= set(frame.column_names)
        assert frame.n_columns == 41

    def test_cleaning_ratio_matches_table1(self):
        frame, labels = generate_kdd_census(12000, seed=2)
        cleaned, _ = clean(frame, labels)
        assert abs(cleaned.n_rows / 12000 - 199522 / 299285) < 0.02

    def test_education_age_relation(self):
        frame, _ = generate_kdd_census(N, seed=3)
        frame, _ = clean(frame, np.zeros(N))
        from repro.data import KDD_EDUCATION_LEVELS
        ranks = np.array([KDD_EDUCATION_LEVELS.index(e) for e in frame["education"]])
        doctorates = frame["age"][ranks == len(KDD_EDUCATION_LEVELS) - 1]
        if len(doctorates):
            assert doctorates.min() >= 27.0

    def test_categories_all_valid(self):
        frame, _ = generate_kdd_census(1000, seed=4)
        frame, _ = clean(frame, np.zeros(1000))
        for spec in KDD_SCHEMA.categorical:
            values = set(frame[spec.name])
            assert values <= set(spec.categories)

    def test_positive_rate_low_like_census(self):
        _, labels = generate_kdd_census(N, seed=5)
        assert 0.03 < labels.mean() < 0.30

    def test_deterministic(self):
        _, a = generate_kdd_census(400, seed=9)
        _, b = generate_kdd_census(400, seed=9)
        np.testing.assert_array_equal(a, b)


class TestLawSchool:
    def test_schema_columns_present(self):
        frame, labels = generate_law_school(N, seed=1)
        assert set(LAW_SCHEMA.feature_names) <= set(frame.column_names)
        assert frame.n_columns == 10

    def test_cleaning_ratio_matches_table1(self):
        frame, labels = generate_law_school(12000, seed=2)
        cleaned, _ = clean(frame, labels)
        assert abs(cleaned.n_rows / 12000 - 20512 / 20798) < 0.02

    def test_tier_lsat_correlation_positive(self):
        frame, _ = generate_law_school(N, seed=3)
        frame, _ = clean(frame, np.zeros(N))
        corr = np.corrcoef(frame["tier"], frame["lsat"])[0, 1]
        assert corr > 0.3

    def test_pass_rate_majority(self):
        _, labels = generate_law_school(N, seed=4)
        assert 0.4 < labels.mean() < 0.9

    def test_lsat_drives_passing(self):
        frame, labels = generate_law_school(N, seed=5)
        frame, labels = clean(frame, labels)
        lsat = frame["lsat"]
        assert labels[lsat > np.quantile(lsat, 0.8)].mean() > \
            labels[lsat < np.quantile(lsat, 0.2)].mean() + 0.2

    def test_bounds(self):
        frame, _ = generate_law_school(N, seed=6)
        assert np.nanmin(frame["lsat"]) >= 120.0
        assert np.nanmax(frame["lsat"]) <= 180.0
        assert np.nanmin(frame["tier"]) >= 1.0
        assert np.nanmax(frame["tier"]) <= 6.0


class TestCleanHelper:
    def test_clean_filters_labels_together(self):
        frame, labels = generate_adult(2000, seed=10)
        cleaned, kept = clean(frame, labels)
        assert cleaned.n_rows == len(kept)
        assert not cleaned.missing_mask().any()

    def test_clean_rejects_misaligned_labels(self):
        frame, labels = generate_adult(100, seed=11)
        with pytest.raises(ValueError):
            clean(frame, labels[:50])

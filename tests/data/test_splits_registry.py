"""Tests for the 80/10/10 splitter and the dataset registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import dataset_names, load_dataset, train_val_test_split


class TestSplit:
    def rng(self):
        return np.random.default_rng(0)

    def test_partitions_indices(self):
        train, val, test = train_val_test_split(100, self.rng())
        combined = np.sort(np.concatenate([train, val, test]))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_default_fractions(self):
        train, val, test = train_val_test_split(1000, self.rng())
        assert len(train) == 800
        assert len(val) == 100
        assert len(test) == 100

    def test_rejects_bad_fraction_sum(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, self.rng(), fractions=(0.5, 0.2, 0.2))

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(ValueError):
            train_val_test_split(0, self.rng())

    def test_rejects_wrong_fraction_count(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, self.rng(), fractions=(0.5, 0.5))

    def test_tiny_inputs_keep_all_splits_nonempty(self):
        train, val, test = train_val_test_split(4, self.rng())
        assert len(train) >= 1 and len(val) >= 1 and len(test) >= 1

    def test_deterministic_given_rng_seed(self):
        a = train_val_test_split(50, np.random.default_rng(3))
        b = train_val_test_split(50, np.random.default_rng(3))
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    @given(st.integers(min_value=4, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_property_partition(self, n):
        train, val, test = train_val_test_split(n, np.random.default_rng(1))
        combined = np.sort(np.concatenate([train, val, test]))
        np.testing.assert_array_equal(combined, np.arange(n))


class TestRegistry:
    def test_dataset_names(self):
        assert set(dataset_names()) == {"adult", "kdd_census", "law_school"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    @pytest.mark.parametrize("name", ["adult", "kdd_census", "law_school"])
    def test_bundle_consistency(self, name):
        bundle = load_dataset(name, n_instances=1500, seed=0)
        assert bundle.name == name
        assert bundle.n_raw == 1500
        assert bundle.n_clean == bundle.encoded.shape[0] == len(bundle.labels)
        assert bundle.encoded.shape[1] == bundle.encoder.n_encoded
        # split partitions rows
        combined = np.sort(np.concatenate(
            [bundle.train_idx, bundle.val_idx, bundle.test_idx]))
        np.testing.assert_array_equal(combined, np.arange(bundle.n_clean))

    def test_split_accessor(self):
        bundle = load_dataset("adult", n_instances=1000, seed=0)
        x_train, y_train = bundle.split("train")
        assert len(x_train) == len(y_train) == len(bundle.train_idx)
        with pytest.raises(KeyError):
            bundle.split("holdout")

    def test_seeded_reproducibility(self):
        a = load_dataset("law_school", n_instances=800, seed=5)
        b = load_dataset("law_school", n_instances=800, seed=5)
        np.testing.assert_allclose(a.encoded, b.encoded)
        np.testing.assert_array_equal(a.train_idx, b.train_idx)

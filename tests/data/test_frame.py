"""Unit tests for the TabularFrame column store."""

import numpy as np
import pytest

from repro.data import TabularFrame


def small_frame():
    return TabularFrame({
        "age": np.array([25.0, 40.0, np.nan]),
        "color": np.array(["red", None, "blue"], dtype=object),
        "flag": np.array([1.0, 0.0, 1.0]),
    })


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            TabularFrame({})

    def test_rejects_2d_columns(self):
        with pytest.raises(ValueError):
            TabularFrame({"x": np.zeros((2, 2))})

    def test_rejects_ragged_lengths(self):
        with pytest.raises(ValueError):
            TabularFrame({"a": [1.0, 2.0], "b": [1.0]})

    def test_shape_properties(self):
        frame = small_frame()
        assert frame.n_rows == 3
        assert frame.n_columns == 3
        assert len(frame) == 3
        assert frame.column_names == ("age", "color", "flag")

    def test_contains_and_getitem(self):
        frame = small_frame()
        assert "age" in frame
        assert "height" not in frame
        np.testing.assert_allclose(frame["flag"], [1.0, 0.0, 1.0])
        with pytest.raises(KeyError):
            frame["height"]

    def test_repr(self):
        assert "3 rows" in repr(small_frame())


class TestTransforms:
    def test_with_column_replaces(self):
        frame = small_frame().with_column("flag", np.zeros(3))
        np.testing.assert_allclose(frame["flag"], [0.0, 0.0, 0.0])

    def test_with_column_adds(self):
        frame = small_frame().with_column("extra", np.ones(3))
        assert "extra" in frame

    def test_without_columns(self):
        frame = small_frame().without_columns(["color"])
        assert frame.column_names == ("age", "flag")

    def test_select_orders_columns(self):
        frame = small_frame().select(["flag", "age"])
        assert frame.column_names == ("flag", "age")

    def test_take_reorders_rows(self):
        frame = small_frame().take([1, 0])
        np.testing.assert_allclose(frame["flag"], [0.0, 1.0])

    def test_head(self):
        assert small_frame().head(2).n_rows == 2
        assert small_frame().head(10).n_rows == 3

    def test_concat(self):
        frame = small_frame()
        doubled = TabularFrame.concat([frame, frame])
        assert doubled.n_rows == 6

    def test_concat_rejects_mismatch(self):
        frame = small_frame()
        other = frame.without_columns(["flag"])
        with pytest.raises(ValueError):
            TabularFrame.concat([frame, other])

    def test_concat_rejects_empty(self):
        with pytest.raises(ValueError):
            TabularFrame.concat([])


class TestMissing:
    def test_missing_mask_covers_nan_and_none(self):
        mask = small_frame().missing_mask()
        np.testing.assert_array_equal(mask, [False, True, True])

    def test_drop_missing(self):
        frame = small_frame().drop_missing()
        assert frame.n_rows == 1
        assert frame["color"][0] == "red"

    def test_no_missing_is_noop(self):
        frame = TabularFrame({"a": [1.0, 2.0]})
        assert frame.drop_missing().n_rows == 2


class TestRowAccess:
    def test_row_dict(self):
        row = small_frame().row(0)
        assert row["age"] == 25.0
        assert row["color"] == "red"

    def test_row_negative_index(self):
        assert small_frame().row(-1)["color"] == "blue"

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            small_frame().row(5)

    def test_iter_rows(self):
        rows = list(small_frame().iter_rows())
        assert len(rows) == 3

    def test_format_row(self):
        text = small_frame().format_row(0)
        assert "age: 25.00" in text
        assert "color: red" in text

"""Unit tests for FeatureSpec / DatasetSchema validation and lookups."""

import pytest

from repro.data import DatasetSchema, FeatureSpec, FeatureType


def spec_cont(name="x", immutable=False):
    return FeatureSpec(name, FeatureType.CONTINUOUS, bounds=(0.0, 1.0), immutable=immutable)


def spec_cat(name="c", categories=("a", "b"), immutable=False):
    return FeatureSpec(name, FeatureType.CATEGORICAL, categories=categories, immutable=immutable)


class TestFeatureSpec:
    def test_categorical_needs_categories(self):
        with pytest.raises(ValueError):
            FeatureSpec("c", FeatureType.CATEGORICAL)

    def test_continuous_needs_bounds(self):
        with pytest.raises(ValueError):
            FeatureSpec("x", FeatureType.CONTINUOUS)

    def test_continuous_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            FeatureSpec("x", FeatureType.CONTINUOUS, bounds=(1.0, 1.0))

    def test_binary_needs_nothing(self):
        spec = FeatureSpec("b", FeatureType.BINARY)
        assert spec.n_categories == 0

    def test_category_rank(self):
        spec = spec_cat(categories=("low", "mid", "high"))
        assert spec.category_rank("mid") == 1

    def test_category_rank_unknown(self):
        with pytest.raises(KeyError):
            spec_cat().category_rank("zzz")

    def test_frozen(self):
        with pytest.raises(Exception):
            spec_cont().name = "other"


class TestDatasetSchema:
    def build(self):
        return DatasetSchema(
            name="toy",
            features=(
                spec_cont("age"),
                FeatureSpec("gender", FeatureType.BINARY, immutable=True),
                spec_cat("education", ("hs", "bs", "ms")),
            ),
            target="outcome",
        )

    def test_duplicate_feature_names_rejected(self):
        with pytest.raises(ValueError):
            DatasetSchema("bad", (spec_cont("x"), spec_cont("x")), target="y")

    def test_target_clash_rejected(self):
        with pytest.raises(ValueError):
            DatasetSchema("bad", (spec_cont("y"),), target="y")

    def test_feature_lookup(self):
        schema = self.build()
        assert schema.feature("age").ftype is FeatureType.CONTINUOUS
        with pytest.raises(KeyError):
            schema.feature("nope")

    def test_type_partitions(self):
        schema = self.build()
        assert [s.name for s in schema.continuous] == ["age"]
        assert [s.name for s in schema.binary] == ["gender"]
        assert [s.name for s in schema.categorical] == ["education"]

    def test_type_counts_order_matches_table1(self):
        # Table I reports categorical / binary / numerical
        assert self.build().type_counts() == (1, 1, 1)

    def test_immutable_names(self):
        assert self.build().immutable_names == ("gender",)

    def test_feature_names_order(self):
        assert self.build().feature_names == ("age", "gender", "education")

    def test_n_features(self):
        assert self.build().n_features == 3


class TestPaperSchemas:
    def test_adult_matches_table1(self):
        from repro.data import ADULT_SCHEMA
        assert ADULT_SCHEMA.type_counts() == (5, 2, 2)
        assert set(ADULT_SCHEMA.immutable_names) == {"race", "gender"}
        assert ADULT_SCHEMA.target == "income"

    def test_kdd_matches_table1(self):
        from repro.data import KDD_SCHEMA
        assert KDD_SCHEMA.type_counts() == (32, 2, 7)
        assert KDD_SCHEMA.n_features == 41
        assert set(KDD_SCHEMA.immutable_names) == {"race", "gender"}

    def test_law_matches_table1(self):
        from repro.data import LAW_SCHEMA
        assert LAW_SCHEMA.type_counts() == (1, 3, 6)
        assert LAW_SCHEMA.n_features == 10
        assert LAW_SCHEMA.immutable_names == ("sex",)
        assert LAW_SCHEMA.target == "pass_bar"

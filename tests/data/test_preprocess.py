"""Tests for the invertible TabularEncoder, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DatasetSchema,
    FeatureSpec,
    FeatureType,
    TabularEncoder,
    TabularFrame,
    generate_adult,
    clean,
    ADULT_SCHEMA,
)

TOY_SCHEMA = DatasetSchema(
    name="toy",
    features=(
        FeatureSpec("age", FeatureType.CONTINUOUS, bounds=(18.0, 80.0)),
        FeatureSpec("flag", FeatureType.BINARY, immutable=True),
        FeatureSpec("grade", FeatureType.CATEGORICAL, categories=("low", "mid", "high")),
    ),
    target="y",
)


def toy_frame():
    return TabularFrame({
        "age": np.array([20.0, 50.0, 80.0]),
        "flag": np.array([0.0, 1.0, 1.0]),
        "grade": np.array(["low", "high", "mid"], dtype=object),
    })


class TestEncoderLayout:
    def test_slices_are_contiguous_and_cover(self):
        enc = TabularEncoder(TOY_SCHEMA)
        assert enc.feature_slices["age"] == slice(0, 1)
        assert enc.feature_slices["flag"] == slice(1, 2)
        assert enc.feature_slices["grade"] == slice(2, 5)
        assert enc.n_encoded == 5

    def test_requires_fit_before_transform(self):
        enc = TabularEncoder(TOY_SCHEMA)
        with pytest.raises(RuntimeError):
            enc.transform(toy_frame())
        with pytest.raises(RuntimeError):
            enc.inverse_transform(np.zeros((1, 5)))

    def test_ranges_property(self):
        enc = TabularEncoder(TOY_SCHEMA).fit(toy_frame())
        assert enc.ranges["age"] == (20.0, 80.0)

    def test_constant_column_handled(self):
        frame = TabularFrame({
            "age": np.array([30.0, 30.0]),
            "flag": np.array([0.0, 1.0]),
            "grade": np.array(["low", "low"], dtype=object),
        })
        enc = TabularEncoder(TOY_SCHEMA).fit(frame)
        out = enc.transform(frame)
        assert np.isfinite(out).all()


class TestTransform:
    def test_continuous_minmax(self):
        enc = TabularEncoder(TOY_SCHEMA)
        out = enc.fit_transform(toy_frame())
        np.testing.assert_allclose(out[:, 0], [0.0, 0.5, 1.0])

    def test_binary_passthrough(self):
        out = TabularEncoder(TOY_SCHEMA).fit_transform(toy_frame())
        np.testing.assert_allclose(out[:, 1], [0.0, 1.0, 1.0])

    def test_onehot_block(self):
        out = TabularEncoder(TOY_SCHEMA).fit_transform(toy_frame())
        np.testing.assert_allclose(out[0, 2:5], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(out[1, 2:5], [0.0, 0.0, 1.0])

    def test_unknown_category_raises(self):
        enc = TabularEncoder(TOY_SCHEMA).fit(toy_frame())
        bad = toy_frame().with_column(
            "grade", np.array(["???", "low", "mid"], dtype=object))
        with pytest.raises(ValueError):
            enc.transform(bad)

    def test_values_bounded_01(self):
        frame, labels = generate_adult(2000, seed=0)
        frame, _ = clean(frame, labels)
        out = TabularEncoder(ADULT_SCHEMA).fit_transform(frame)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestInverse:
    def test_roundtrip_exact_categories(self):
        enc = TabularEncoder(TOY_SCHEMA)
        encoded = enc.fit_transform(toy_frame())
        back = enc.inverse_transform(encoded)
        np.testing.assert_array_equal(back["grade"], toy_frame()["grade"])
        np.testing.assert_allclose(back["age"], toy_frame()["age"])
        np.testing.assert_allclose(back["flag"], toy_frame()["flag"])

    def test_inverse_total_on_arbitrary_matrices(self):
        enc = TabularEncoder(TOY_SCHEMA).fit(toy_frame())
        rng = np.random.default_rng(0)
        noisy = rng.normal(0.5, 1.0, size=(10, enc.n_encoded))
        frame = enc.inverse_transform(noisy)
        # continuous clipped to schema bounds
        assert frame["age"].min() >= 18.0 and frame["age"].max() <= 80.0
        # binary thresholded
        assert set(np.unique(frame["flag"])) <= {0.0, 1.0}
        # categorical decoded to valid labels
        assert set(frame["grade"]) <= {"low", "mid", "high"}

    def test_inverse_shape_validation(self):
        enc = TabularEncoder(TOY_SCHEMA).fit(toy_frame())
        with pytest.raises(ValueError):
            enc.inverse_transform(np.zeros((2, 3)))


class TestStructuralMetadata:
    def test_immutable_mask(self):
        enc = TabularEncoder(TOY_SCHEMA)
        np.testing.assert_array_equal(
            enc.immutable_mask(), [False, True, False, False, False])

    def test_column_of_continuous(self):
        enc = TabularEncoder(TOY_SCHEMA)
        assert enc.column_of("age") == 0
        assert enc.column_of("flag") == 1

    def test_column_of_rejects_categorical(self):
        with pytest.raises(ValueError):
            TabularEncoder(TOY_SCHEMA).column_of("grade")

    def test_normalized_value(self):
        enc = TabularEncoder(TOY_SCHEMA).fit(toy_frame())
        assert enc.normalized_value("age", 50.0) == pytest.approx(0.5)

    def test_category_rank_weights(self):
        enc = TabularEncoder(TOY_SCHEMA)
        np.testing.assert_allclose(enc.category_rank_weights("grade"), [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            enc.category_rank_weights("age")


@st.composite
def toy_rows(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    ages = draw(st.lists(
        st.floats(min_value=18.0, max_value=80.0, allow_nan=False),
        min_size=n, max_size=n))
    flags = draw(st.lists(st.sampled_from([0.0, 1.0]), min_size=n, max_size=n))
    grades = draw(st.lists(
        st.sampled_from(["low", "mid", "high"]), min_size=n, max_size=n))
    return TabularFrame({
        "age": np.array(ages),
        "flag": np.array(flags),
        "grade": np.array(grades, dtype=object),
    })


class TestEncoderProperties:
    @given(toy_rows())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_identity_up_to_range(self, frame):
        enc = TabularEncoder(TOY_SCHEMA).fit(frame)
        back = enc.inverse_transform(enc.transform(frame))
        np.testing.assert_allclose(back["age"], frame["age"], atol=1e-9)
        np.testing.assert_array_equal(back["grade"], frame["grade"])
        np.testing.assert_allclose(back["flag"], frame["flag"])

    @given(toy_rows())
    @settings(max_examples=40, deadline=None)
    def test_onehot_blocks_sum_to_one(self, frame):
        enc = TabularEncoder(TOY_SCHEMA).fit(frame)
        encoded = enc.transform(frame)
        block = encoded[:, enc.feature_slices["grade"]]
        np.testing.assert_allclose(block.sum(axis=1), np.ones(frame.n_rows))

    @given(toy_rows())
    @settings(max_examples=40, deadline=None)
    def test_encoded_within_unit_interval(self, frame):
        enc = TabularEncoder(TOY_SCHEMA).fit(frame)
        encoded = enc.transform(frame)
        assert encoded.min() >= -1e-12
        assert encoded.max() <= 1.0 + 1e-12


class TestTransformChunked:
    @pytest.fixture(scope="class")
    def fitted(self):
        frame, labels = clean(*generate_adult(n_instances=500, seed=3))
        return TabularEncoder(ADULT_SCHEMA).fit(frame), frame

    def test_parity_with_single_shot(self, fitted):
        enc, frame = fitted
        full = enc.transform(frame)
        chunked = enc.transform_chunked(frame, chunk_size=64)
        np.testing.assert_array_equal(chunked, full)

    def test_writes_into_caller_buffer(self, fitted):
        enc, frame = fitted
        out = np.zeros((frame.n_rows, enc.n_encoded))
        returned = enc.transform_chunked(frame, chunk_size=100, out=out)
        assert returned is out
        np.testing.assert_array_equal(out, enc.transform(frame))

    def test_writes_into_memmap(self, fitted, tmp_path):
        enc, frame = fitted
        out = np.lib.format.open_memmap(
            tmp_path / "encoded.npy", mode="w+", dtype=np.float64,
            shape=(frame.n_rows, enc.n_encoded))
        enc.transform_chunked(frame, chunk_size=128, out=out)
        out.flush()
        back = np.load(tmp_path / "encoded.npy", mmap_mode="r")
        np.testing.assert_array_equal(np.asarray(back), enc.transform(frame))

    def test_rejects_bad_chunk_and_shape(self, fitted):
        enc, frame = fitted
        with pytest.raises(ValueError, match="chunk_size"):
            enc.transform_chunked(frame, chunk_size=0)
        with pytest.raises(ValueError, match="out"):
            enc.transform_chunked(frame, out=np.zeros((1, enc.n_encoded)))

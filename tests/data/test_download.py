"""Tests for the downloadable-dataset registry (repro.data.download)."""

import json

import numpy as np
import pytest

from repro.data import (
    DownloadableDataset,
    DownloadError,
    data_cache_dir,
    downloadable_names,
    fetch_dataset,
    load_downloadable,
    upsample,
)
from repro.data.adult import ADULT_SCHEMA
from repro.data.download import parse_adult_census

#: Two raw UCI Adult rows (the real file's exact shape: 15 comma+space
#: separated columns, ``?`` for missing cells, trailing-period labels
#: in the test split variant).
ADULT_ROWS = (
    "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
    " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n"
    "50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse,"
    " Exec-managerial, Husband, White, Male, 0, 0, 13, ?, >50K\n"
    "short, row\n"  # malformed: silently skipped
)


def _fake_fetcher(payload=ADULT_ROWS):
    """A fetcher that writes ``payload`` instead of hitting the network."""

    def fetch(url, dest):
        dest.write_text(payload)

    return fetch


def _failing_fetcher(url, dest):
    raise OSError("no network in tests")


class TestFetch:
    def test_registry_lists_adult(self):
        assert "adult_uci" in downloadable_names()

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_CACHE", str(tmp_path / "env-cache"))
        assert data_cache_dir() == tmp_path / "env-cache"
        assert data_cache_dir().is_dir()
        explicit = data_cache_dir(tmp_path / "explicit")
        assert explicit == tmp_path / "explicit"

    def test_fetch_records_tofu_checksum(self, tmp_path):
        path = fetch_dataset("adult_uci", cache_dir=tmp_path,
                             fetcher=_fake_fetcher())
        assert path.is_file()
        lock = json.loads((tmp_path / "checksums.json").read_text())
        assert path.name in lock and len(lock[path.name]) == 64

    def test_cached_file_reused_without_fetcher(self, tmp_path):
        fetch_dataset("adult_uci", cache_dir=tmp_path, fetcher=_fake_fetcher())
        # second call must not need the network at all
        again = fetch_dataset("adult_uci", cache_dir=tmp_path,
                              fetcher=_failing_fetcher)
        assert again.is_file()

    def test_corruption_caught_by_lockfile(self, tmp_path):
        path = fetch_dataset("adult_uci", cache_dir=tmp_path,
                             fetcher=_fake_fetcher())
        path.write_text(ADULT_ROWS + "extra, tampered, row\n")
        with pytest.raises(DownloadError, match="checksum"):
            fetch_dataset("adult_uci", cache_dir=tmp_path,
                          fetcher=_fake_fetcher())

    def test_failed_download_raises_download_error(self, tmp_path):
        with pytest.raises(DownloadError, match="could not download"):
            fetch_dataset("adult_uci", cache_dir=tmp_path,
                          fetcher=_failing_fetcher)


class TestParseAdult:
    def test_maps_raw_census_onto_adult_schema(self, tmp_path):
        raw = tmp_path / "adult.data"
        raw.write_text(ADULT_ROWS)
        frame, labels = parse_adult_census(raw)
        assert frame.n_rows == 2  # malformed row dropped
        np.testing.assert_array_equal(labels, [0.0, 1.0])
        row = frame.row(0)
        assert row["age"] == 39
        assert row["workclass"] == "government"
        assert row["education"] == "bachelors"
        assert row["marital_status"] == "single"
        assert row["occupation"] == "white_collar"
        assert row["hours_per_week"] == 40
        assert row["gender"] == 1.0
        assert row["native_us"] == 1.0
        # '?' native-country becomes a missing cell for clean() to fill
        second = frame.row(1)
        assert second["workclass"] == "self_employed"
        assert second["native_us"] is None or second["native_us"] != second["native_us"]


class TestLoadDownloadable:
    def test_download_source_and_exact_row_count(self, tmp_path):
        frame, labels, source = load_downloadable(
            "adult_uci", n_rows=50, cache_dir=tmp_path,
            fetcher=_fake_fetcher())
        assert source == "download"
        assert frame.n_rows == 50 and len(labels) == 50

    def test_offline_fallback_is_synthetic(self, tmp_path):
        frame, labels, source = load_downloadable(
            "adult_uci", n_rows=64, cache_dir=tmp_path,
            fetcher=_failing_fetcher)
        assert source == "synthetic"
        assert frame.n_rows == 64 and len(labels) == 64
        assert set(frame.column_names) == {s.name for s in ADULT_SCHEMA.features}

    def test_require_real_raises_offline(self, tmp_path):
        with pytest.raises(DownloadError):
            load_downloadable("adult_uci", cache_dir=tmp_path,
                              fetcher=_failing_fetcher, require_real=True)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown downloadable"):
            load_downloadable("imagenet")


class TestUpsample:
    def test_jitter_stays_in_bounds_and_rows_distinct(self, tmp_path):
        frame, labels, _ = load_downloadable(
            "adult_uci", n_rows=32, cache_dir=tmp_path,
            fetcher=_failing_fetcher)
        big, big_labels = upsample(frame, labels, 500, seed=1,
                                   schema=ADULT_SCHEMA)
        assert big.n_rows == 500 and len(big_labels) == 500
        for spec in ADULT_SCHEMA.continuous:
            low, high = spec.bounds
            column = big[spec.name].astype(np.float64)
            assert column.min() >= low and column.max() <= high
        ages = big["age"].astype(np.float64)
        assert len(np.unique(ages)) > 32  # jitter de-duplicates resamples

    def test_rejects_empty_target(self, tmp_path):
        frame, labels, _ = load_downloadable(
            "adult_uci", n_rows=8, cache_dir=tmp_path,
            fetcher=_failing_fetcher)
        with pytest.raises(ValueError, match="n_rows"):
            upsample(frame, labels, 0)


class TestRegisterDownloadable:
    def test_duplicate_registration_needs_overwrite(self):
        from repro.data.download import _downloadable, register_downloadable

        entry = _downloadable("adult_uci")
        with pytest.raises(ValueError, match="already registered"):
            register_downloadable(entry)
        register_downloadable(entry, overwrite=True)  # idempotent re-pin
        assert isinstance(entry, DownloadableDataset)

"""Tests for the CI perf-regression gate (benchmarks/check_perf_regression.py)."""

import importlib.util
import json
import pathlib

import pytest

_GATE_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "check_perf_regression.py")


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_perf_regression",
                                                  _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _results(train=100.0, predict=1000.0, candidates=500.0,
             constraint_eval=2000.0, scenarios=50.0, density=300.0,
             causal=700.0, robust=400.0, plan=600.0, serve_scale=800.0,
             density_at_scale=900.0, inloss=10.0):
    return {
        "train": {"rows_per_sec": train},
        "predict": {"rows_per_sec": predict},
        "candidates": {"rows_per_sec": candidates},
        "constraint_eval": {"rows_per_sec": constraint_eval},
        "scenario_matrix": {"min_rows_per_sec": scenarios},
        "density": {"rows_per_sec": density},
        "causal": {"rows_per_sec": causal},
        "robust": {"rows_per_sec": robust},
        "plan": {"rows_per_sec": plan},
        "serve_scale": {"rows_per_sec": serve_scale},
        "density_at_scale": {"rows_per_sec": density_at_scale},
        "inloss": {"reduction_vs_posthoc": inloss},
    }


class TestCompare:
    def test_no_regression_passes(self, gate):
        rows, failures = gate.compare(_results(), _results(predict=990.0))
        assert failures == []
        assert len(rows) == 12

    def test_density_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(density=10.0))
        assert len(failures) == 1
        assert "density" in failures[0]

    def test_causal_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(causal=10.0))
        assert len(failures) == 1
        assert "causal" in failures[0]

    def test_robust_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(robust=10.0))
        assert len(failures) == 1
        assert "robust" in failures[0]

    def test_plan_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(plan=10.0))
        assert len(failures) == 1
        assert "plan" in failures[0]

    def test_serve_scale_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(serve_scale=10.0))
        assert len(failures) == 1
        assert "serve_scale" in failures[0]

    def test_density_at_scale_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(density_at_scale=10.0))
        assert len(failures) == 1
        assert "density_at_scale" in failures[0]

    def test_inloss_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(inloss=2.0))
        assert len(failures) == 1
        assert "inloss.reduction_vs_posthoc" in failures[0]

    def test_constraint_eval_is_gated(self, gate):
        _, failures = gate.compare(_results(), _results(constraint_eval=100.0))
        assert len(failures) == 1
        assert "constraint_eval" in failures[0]

    def test_scenario_matrix_is_informational(self, gate):
        rows, failures = gate.compare(_results(), _results(scenarios=1.0))
        assert failures == []
        row = [r for r in rows if r[0] == "scenario_matrix"][0]
        assert row[5] is False  # not gated

    def test_missing_section_skips_gracefully(self, gate):
        old = _results()
        del old["constraint_eval"]
        del old["scenario_matrix"]
        del old["density"]
        del old["causal"]
        del old["robust"]
        del old["plan"]
        del old["serve_scale"]
        del old["density_at_scale"]
        rows, failures = gate.compare(old, _results())
        assert failures == []
        skipped = [r for r in rows if r[2] != r[2]]  # NaN baseline
        assert {r[0] for r in skipped} == {
            "constraint_eval", "scenario_matrix", "density", "causal",
            "robust", "plan", "serve_scale", "density_at_scale"}
        markdown = gate.render_markdown(rows, 0.30)
        assert "no baseline" in markdown

    def test_improvement_passes(self, gate):
        _, failures = gate.compare(_results(), _results(predict=5000.0))
        assert failures == []

    def test_drop_beyond_threshold_fails(self, gate):
        _, failures = gate.compare(_results(), _results(predict=500.0))
        assert len(failures) == 1
        assert "predict" in failures[0]

    def test_drop_within_threshold_passes(self, gate):
        _, failures = gate.compare(_results(), _results(candidates=400.0),
                                   threshold=0.30)
        assert failures == []

    def test_train_is_informational_only(self, gate):
        rows, failures = gate.compare(_results(), _results(train=1.0))
        assert failures == []
        train_row = [r for r in rows if r[0] == "train"][0]
        assert train_row[5] is False  # not gated

    def test_both_sections_can_fail(self, gate):
        _, failures = gate.compare(
            _results(), _results(predict=100.0, candidates=50.0))
        assert len(failures) == 2

    def test_nonpositive_baseline_rejected(self, gate):
        with pytest.raises(ValueError, match="positive"):
            gate.compare(_results(predict=0.0), _results())


class TestMarkdown:
    def test_table_mentions_verdicts(self, gate):
        rows, _ = gate.compare(_results(), _results(predict=100.0))
        markdown = gate.render_markdown(rows, 0.30)
        assert "FAIL" in markdown
        assert "pass" in markdown
        assert "info only" in markdown
        assert "| predict |" in markdown


class TestMain:
    def _write(self, tmp_path, name, results):
        path = tmp_path / name
        path.write_text(json.dumps(results))
        return path

    def test_exit_zero_on_pass(self, tmp_path, gate, capsys):
        baseline = self._write(tmp_path, "base.json", _results())
        current = self._write(tmp_path, "cur.json", _results())
        assert gate.main(["--baseline", str(baseline),
                          "--current", str(current)]) == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_exit_two_on_regression(self, tmp_path, gate, capsys):
        baseline = self._write(tmp_path, "base.json", _results())
        current = self._write(tmp_path, "cur.json", _results(predict=10.0))
        assert gate.main(["--baseline", str(baseline),
                          "--current", str(current)]) == 2
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_summary_file_appended(self, tmp_path, gate):
        baseline = self._write(tmp_path, "base.json", _results())
        current = self._write(tmp_path, "cur.json", _results())
        summary = tmp_path / "summary.md"
        gate.main(["--baseline", str(baseline), "--current", str(current),
                   "--summary", str(summary)])
        assert "Perf-regression gate" in summary.read_text()

    def test_threshold_validated(self, tmp_path, gate):
        baseline = self._write(tmp_path, "base.json", _results())
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(baseline),
                       "--current", str(baseline), "--threshold", "1.5"])

    def test_custom_threshold_changes_verdict(self, tmp_path, gate):
        baseline = self._write(tmp_path, "base.json", _results())
        current = self._write(tmp_path, "cur.json", _results(predict=800.0))
        args = ["--baseline", str(baseline), "--current", str(current)]
        assert gate.main(args) == 0
        assert gate.main(args + ["--threshold", "0.10"]) == 2

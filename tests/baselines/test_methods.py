"""Method-specific behaviour tests for each baseline."""

import numpy as np

from repro.baselines import (
    CCHVAEExplainer,
    CEMExplainer,
    DiceRandomExplainer,
    FACEExplainer,
    MahajanExplainer,
    ReviseExplainer,
)
from repro.core import fast_config


class TestMahajan:
    def test_sparsity_weights_zeroed(self, adult_setup):
        bundle, blackbox, _, _, _ = adult_setup
        explainer = MahajanExplainer(bundle.encoder, blackbox,
                                     config=fast_config(epochs=2))
        assert explainer.config.sparsity_l1_weight == 0.0
        assert explainer.config.sparsity_l0_weight == 0.0

    def test_constraint_kind_in_name(self, adult_setup):
        bundle, blackbox, _, _, _ = adult_setup
        unary = MahajanExplainer(bundle.encoder, blackbox, constraint_kind="unary")
        binary = MahajanExplainer(bundle.encoder, blackbox, constraint_kind="binary")
        assert unary.name == "mahajan_unary"
        assert binary.name == "mahajan_binary"

    def test_objective_differs_from_ours_as_published(self, adult_setup):
        # the ablation the paper highlights: Mahajan et al. train without
        # the sparsity term and with the ELBO-style squared proximity; the
        # Table IV ordering itself is checked by the experiment harness.
        bundle, blackbox, _, _, _ = adult_setup
        mahajan = MahajanExplainer(bundle.encoder, blackbox,
                                   config=fast_config(epochs=2))
        assert mahajan.config.proximity_metric == "l2"
        assert mahajan.config.sparsity_l1_weight == 0.0
        assert mahajan.config.sparsity_l0_weight == 0.0
        from repro.core import CFTrainingConfig
        ours = CFTrainingConfig()
        assert ours.proximity_metric == "l1"
        assert ours.sparsity_l1_weight > 0
        assert ours.sparsity_l0_weight > 0


class TestRevise:
    def test_latent_moves_toward_validity(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = ReviseExplainer(bundle.encoder, blackbox, seed=0,
                                    vae_epochs=30, steps=150)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        # gradient search should flip more than the raw reconstruction does
        zeros = np.zeros(len(negatives))
        reconstruction = explainer.vae.reconstruct(negatives, zeros)
        validity_cf = (blackbox.predict(cf) == 1).mean()
        validity_rec = (blackbox.predict(reconstruction) == 1).mean()
        assert validity_cf >= validity_rec

    def test_uses_unconditional_vae(self, adult_setup):
        bundle, blackbox, x_train, y_train, _ = adult_setup
        explainer = ReviseExplainer(bundle.encoder, blackbox, vae_epochs=2)
        explainer.fit(x_train, y_train)
        # decoding the same z with different labels must be identical only
        # if the VAE ignored the conditioning during training; we simply
        # check the label column was pinned to zero in fit (no crash) and
        # the vae exists.
        assert explainer.vae is not None


class TestCCHVAE:
    def test_respects_radius_budget(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = CCHVAEExplainer(bundle.encoder, blackbox, seed=0,
                                    vae_epochs=10, max_radius=0.2,
                                    n_candidates=5)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives[:5])
        assert cf.shape == (5, bundle.encoder.n_encoded)

    def test_annulus_sampling_radii(self, adult_setup):
        bundle, blackbox, _, _, _ = adult_setup
        explainer = CCHVAEExplainer(bundle.encoder, blackbox, seed=0,
                                    n_candidates=200)
        center = np.zeros(10)
        samples = explainer._sample_annulus(center, 0.5, 1.0)
        norms = np.linalg.norm(samples, axis=1)
        assert (norms >= 0.5 - 1e-9).all() and (norms <= 1.0 + 1e-9).all()


class TestCEM:
    def test_sparser_than_dense_methods(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        cem = CEMExplainer(bundle.encoder, blackbox, seed=0)
        cem.fit(x_train, y_train)
        mahajan = MahajanExplainer(bundle.encoder, blackbox, seed=0,
                                   config=fast_config(epochs=8))
        mahajan.fit(x_train, y_train)
        changed_cem = (
            np.abs(cem.generate(negatives) - negatives) > 0.01).sum(axis=1).mean()
        changed_mahajan = (
            np.abs(mahajan.generate(negatives) - negatives) > 0.01).sum(axis=1).mean()
        # CEM's elastic net should win sparsity by a wide margin (Table IV)
        assert changed_cem < changed_mahajan

    def test_candidates_stay_in_unit_box(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        cem = CEMExplainer(bundle.encoder, blackbox, seed=0, steps=40)
        cem.fit(x_train, y_train)
        cf = cem.generate(negatives)
        assert cf.min() >= -1e-9 and cf.max() <= 1.0 + 1e-9

    def test_zero_steps_returns_input(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        cem = CEMExplainer(bundle.encoder, blackbox, seed=0, steps=0)
        cem.fit(x_train, y_train)
        np.testing.assert_allclose(cem.generate(negatives), negatives)


class TestDiceRandom:
    def test_only_mutable_features_touched(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = DiceRandomExplainer(bundle.encoder, blackbox, seed=0)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        mask = bundle.encoder.immutable_mask()
        np.testing.assert_allclose(cf[:, mask], negatives[:, mask])

    def test_sparsification_reduces_changes(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = DiceRandomExplainer(bundle.encoder, blackbox, seed=0)
        explainer.fit(x_train, y_train)
        row = negatives[0]
        candidate = explainer._perturb(row)
        sparsified = explainer._sparsify(row, candidate.copy(), 1)
        changed_before = (np.abs(candidate - row) > 1e-9).sum()
        changed_after = (np.abs(sparsified - row) > 1e-9).sum()
        assert changed_after <= changed_before

    def test_onehot_blocks_remain_valid(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = DiceRandomExplainer(bundle.encoder, blackbox, seed=0)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        for spec in bundle.schema.categorical:
            block = cf[:, bundle.encoder.feature_slices[spec.name]]
            np.testing.assert_allclose(block.sum(axis=1), np.ones(len(cf)))


class TestFACE:
    def test_returns_training_points(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = FACEExplainer(bundle.encoder, blackbox, seed=0,
                                  max_vertices=400)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        # every CF must be one of the graph vertices (before projection);
        # check mutable columns match some vertex
        mutable = ~bundle.encoder.immutable_mask()
        for row in cf:
            distances = np.abs(explainer._vertices[:, mutable]
                               - row[mutable]).sum(axis=1)
            assert distances.min() < 1e-8

    def test_subsampling_bounds_graph(self, adult_setup):
        bundle, blackbox, x_train, y_train, _ = adult_setup
        explainer = FACEExplainer(bundle.encoder, blackbox, seed=0,
                                  max_vertices=100)
        explainer.fit(x_train, y_train)
        assert len(explainer._vertices) == 100

    def test_high_confidence_targets_flip_classifier(self, adult_setup):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = FACEExplainer(bundle.encoder, blackbox, seed=0,
                                  confidence=0.7, max_vertices=600)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        validity = (blackbox.predict(cf) == 1).mean()
        assert validity > 0.5

"""Shared fixtures: one trained classifier + dataset for all baseline tests."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.models import BlackBoxClassifier, train_classifier


@pytest.fixture(scope="session")
def adult_setup():
    """Small Adult bundle with a trained black-box (session-cached)."""
    bundle = load_dataset("adult", n_instances=2000, seed=0)
    x_train, y_train = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
    train_classifier(blackbox, x_train, y_train, epochs=20,
                     rng=np.random.default_rng(0))
    x_test, _ = bundle.split("test")
    negatives = x_test[blackbox.predict(x_test) == 0][:25]
    return bundle, blackbox, x_train, y_train, negatives

"""Contract tests every baseline must satisfy (shared behaviours)."""

import numpy as np
import pytest

from repro.baselines import (
    CCHVAEExplainer,
    CEMExplainer,
    DiceRandomExplainer,
    FACEExplainer,
    MahajanExplainer,
    ReviseExplainer,
)
from repro.core import fast_config

FAST_KWARGS = {
    MahajanExplainer: {"config": fast_config(epochs=4)},
    ReviseExplainer: {"vae_epochs": 15, "steps": 60},
    CCHVAEExplainer: {"vae_epochs": 15, "n_candidates": 20},
    CEMExplainer: {"steps": 60},
    DiceRandomExplainer: {"max_attempts": 25},
    FACEExplainer: {"max_vertices": 500},
}

ALL_BASELINES = list(FAST_KWARGS)


def build(cls, bundle, blackbox, seed=0):
    return cls(bundle.encoder, blackbox, seed=seed, **FAST_KWARGS[cls])


@pytest.mark.parametrize("cls", ALL_BASELINES)
class TestBaselineContract:
    def test_generate_before_fit_raises(self, adult_setup, cls):
        bundle, blackbox, _, _, negatives = adult_setup
        explainer = build(cls, bundle, blackbox)
        with pytest.raises(RuntimeError):
            explainer.generate(negatives)

    def test_output_shape_and_range(self, adult_setup, cls):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = build(cls, bundle, blackbox)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        assert cf.shape == negatives.shape
        assert np.isfinite(cf).all()

    def test_immutables_projected(self, adult_setup, cls):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = build(cls, bundle, blackbox)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        mask = bundle.encoder.immutable_mask()
        np.testing.assert_allclose(cf[:, mask], negatives[:, mask])

    def test_desired_length_validation(self, adult_setup, cls):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = build(cls, bundle, blackbox)
        explainer.fit(x_train, y_train)
        with pytest.raises(ValueError):
            explainer.generate(negatives, desired=np.ones(3, dtype=int))

    def test_achieves_some_validity(self, adult_setup, cls):
        bundle, blackbox, x_train, y_train, negatives = adult_setup
        explainer = build(cls, bundle, blackbox)
        explainer.fit(x_train, y_train)
        cf = explainer.generate(negatives)
        validity = (blackbox.predict(cf) == 1).mean()
        # every method should flip at least some inputs, even fast-config
        assert validity > 0.1

    def test_name_is_set(self, adult_setup, cls):
        bundle, blackbox, _, _, _ = adult_setup
        assert build(cls, bundle, blackbox).name != "baseline"

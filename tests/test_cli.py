"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_accepted(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "table4", "table5",
                        "figure6", "discover", "serve-demo", "run-scenario",
                        "list-scenarios", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.dataset == "adult"
        assert args.scale == "fast"
        assert args.seed == 0
        assert args.out is None

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table4", "--dataset", "mnist"])


class TestExecution:
    def test_table1_prints(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_table2_prints(self, capsys):
        assert main(["table2"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        assert "TABLE III" in capsys.readouterr().out

    def test_discover_writes_artifact(self, capsys, tmp_path):
        code = main(["discover", "--dataset", "law_school",
                     "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        assert "tier" in capsys.readouterr().out
        assert (tmp_path / "discovered_law_school.txt").exists()

    def test_out_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        main(["table1", "--scale", "smoke", "--out", str(target)])
        assert (target / "table1.txt").exists()

    def test_serve_demo_trains_then_warm_starts(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        out_dir = tmp_path / "out"
        code = main(["serve-demo", "--scale", "smoke", "--rows", "32",
                     "--artifact-dir", str(store_dir), "--out", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SERVE DEMO" in out
        assert "cold train + save" in out
        assert (out_dir / "serve_demo_adult.txt").exists()
        assert (store_dir / "adult-unary-seed0" / "manifest.json").exists()

        code = main(["serve-demo", "--scale", "smoke", "--rows", "32",
                     "--artifact-dir", str(store_dir)])
        assert code == 0
        assert "cache hit" in capsys.readouterr().out

    def test_serve_demo_with_baseline_strategy(self, capsys, tmp_path):
        code = main(["serve-demo", "--scale", "smoke", "--rows", "16",
                     "--artifact-dir", str(tmp_path / "store"),
                     "--strategy", "dice_random"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy dice_random" in out
        assert "fit strategy" in out

    def test_list_scenarios(self, capsys, tmp_path):
        code = main(["list-scenarios", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "adult/face" in out
        assert "law_school/ours_binary" in out
        assert (tmp_path / "scenarios.txt").exists()

    def test_list_scenarios_filtered(self, capsys):
        assert main(["list-scenarios", "--strategy", "face"]) == 0
        out = capsys.readouterr().out
        assert "adult/face" in out
        assert "adult/cem" not in out

    def test_run_scenario_requires_name(self, capsys):
        assert main(["run-scenario"]) == 2
        assert "requires --scenario" in capsys.readouterr().out

    def test_run_scenario_smoke(self, capsys, tmp_path):
        code = main(["run-scenario", "--scenario", "adult/dice_random",
                     "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO adult/dice_random" in out
        assert "validity" in out
        assert (tmp_path / "scenario_adult_dice_random.txt").exists()

    def test_run_scenario_density_variant(self, capsys, tmp_path):
        code = main(["run-scenario", "--scenario", "adult/dice_random",
                     "--density", "knn", "--scale", "smoke",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO adult/dice_random+knn" in out
        assert "density (mean kNN dist)" in out
        assert (tmp_path / "scenario_adult_dice_random+knn.txt").exists()

    def test_list_scenarios_shows_density_column(self, capsys):
        assert main(["list-scenarios", "--strategy", "face"]) == 0
        out = capsys.readouterr().out
        assert "adult/face+knn" in out
        assert "adult/face+kde" in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def table_lines(out, title):
    """The rendered table block that starts at ``title``."""
    lines = out.splitlines()
    for index, line in enumerate(lines):
        if line.startswith(title):
            block = []
            for row in lines[index:]:
                if not row.strip():
                    break
                block.append(row)
            return block
    raise AssertionError(f"no table titled {title!r} in output:\n{out}")


def table_cells(line):
    return [cell.strip() for cell in line.split("|")]


class TestParser:
    def test_commands_accepted(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "table4", "table5",
                        "figure6", "discover", "serve-demo", "run-scenario",
                        "list-scenarios", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.dataset == "adult"
        assert args.scale == "fast"
        assert args.seed == 0
        assert args.out is None

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table4", "--dataset", "mnist"])


class TestExecution:
    def test_table1_prints(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_table2_prints(self, capsys):
        assert main(["table2"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        assert "TABLE III" in capsys.readouterr().out

    def test_discover_writes_artifact(self, capsys, tmp_path):
        code = main(["discover", "--dataset", "law_school",
                     "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        assert "tier" in capsys.readouterr().out
        assert (tmp_path / "discovered_law_school.txt").exists()

    def test_out_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        main(["table1", "--scale", "smoke", "--out", str(target)])
        assert (target / "table1.txt").exists()

    def test_serve_demo_trains_then_warm_starts(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        out_dir = tmp_path / "out"
        code = main(["serve-demo", "--scale", "smoke", "--rows", "32",
                     "--artifact-dir", str(store_dir), "--out", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SERVE DEMO" in out
        assert "cold train + save" in out
        assert (out_dir / "serve_demo_adult.txt").exists()
        assert (store_dir / "adult-unary-seed0" / "manifest.json").exists()

        code = main(["serve-demo", "--scale", "smoke", "--rows", "32",
                     "--artifact-dir", str(store_dir)])
        assert code == 0
        assert "cache hit" in capsys.readouterr().out

    def test_serve_demo_with_baseline_strategy(self, capsys, tmp_path):
        code = main(["serve-demo", "--scale", "smoke", "--rows", "16",
                     "--artifact-dir", str(tmp_path / "store"),
                     "--strategy", "dice_random"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy dice_random" in out
        assert "fit strategy" in out

    def test_list_scenarios(self, capsys, tmp_path):
        code = main(["list-scenarios", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "adult/face" in out
        assert "law_school/ours_binary" in out
        assert (tmp_path / "scenarios.txt").exists()

    def test_list_scenarios_filtered(self, capsys):
        assert main(["list-scenarios", "--strategy", "face"]) == 0
        out = capsys.readouterr().out
        assert "adult/face" in out
        assert "adult/cem" not in out

    def test_run_scenario_requires_name(self, capsys):
        assert main(["run-scenario"]) == 2
        assert "requires --scenario" in capsys.readouterr().out

    def test_run_scenario_smoke(self, capsys, tmp_path):
        code = main(["run-scenario", "--scenario", "adult/dice_random",
                     "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO adult/dice_random" in out
        assert "validity" in out
        assert (tmp_path / "scenario_adult_dice_random.txt").exists()

    def test_run_scenario_density_variant(self, capsys, tmp_path):
        code = main(["run-scenario", "--scenario", "adult/dice_random",
                     "--density", "knn", "--scale", "smoke",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO adult/dice_random+knn" in out
        assert "density (mean kNN dist)" in out
        assert (tmp_path / "scenario_adult_dice_random+knn.txt").exists()

    def test_list_scenarios_shows_density_column(self, capsys):
        assert main(["list-scenarios", "--strategy", "face"]) == 0
        out = capsys.readouterr().out
        assert "adult/face+knn" in out
        assert "adult/face+kde" in out

    def test_run_scenario_robust_variant(self, capsys, tmp_path):
        code = main(["run-scenario", "--scenario", "adult/dice_random",
                     "--ensemble", "2", "--scale", "smoke",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO adult/dice_random+robust" in out
        assert "cross-model validity (%)" in out
        assert "robust validity (%)" in out
        assert (tmp_path / "scenario_adult_dice_random+robust.txt").exists()

    def test_serve_demo_with_ensemble(self, capsys, tmp_path):
        code = main(["serve-demo", "--scale", "smoke", "--rows", "16",
                     "--artifact-dir", str(tmp_path / "store"),
                     "--ensemble", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fit + persist ensemble" in out
        assert "K2 ensemble" in out


class TestParserModelFlags:
    def test_causal_default_and_choices(self):
        args = build_parser().parse_args(["run-scenario"])
        assert args.causal is None
        for choice in ("scm", "mined"):
            parsed = build_parser().parse_args(["run-scenario", "--causal", choice])
            assert parsed.causal == choice

    def test_rejects_unknown_causal_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-scenario", "--causal", "tarot"])

    def test_rejects_unknown_density_estimator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-scenario", "--density", "voronoi"])

    def test_ensemble_default_and_value(self):
        assert build_parser().parse_args(["run-scenario"]).ensemble is None
        parsed = build_parser().parse_args(
            ["run-scenario", "--ensemble", "4"])
        assert parsed.ensemble == 4
        assert build_parser().parse_args(
            ["serve-demo", "--ensemble", "3"]).ensemble == 3

    def test_rejects_non_integer_ensemble(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-scenario", "--ensemble", "many"])


class TestListScenariosLayout:
    def metric_rows(self, capsys, argv):
        assert main(argv) == 0
        out = capsys.readouterr().out
        block = table_lines(out, "Scenario registry")
        return out, block

    def test_column_layout(self, capsys):
        out, block = self.metric_rows(capsys, ["list-scenarios", "--strategy", "face"])
        header = table_cells(block[1])
        assert header == ["scenario", "dataset", "strategy", "kind",
                          "desired", "density", "causal", "robust", "inloss"]
        # every data row has exactly one cell per column
        for row in block[3:]:
            assert len(table_cells(row)) == len(header)

    def test_variant_rows_fill_the_right_column(self, capsys):
        out, block = self.metric_rows(capsys, ["list-scenarios", "--strategy", "face"])
        rows = {table_cells(row)[0]: table_cells(row) for row in block[3:]}
        assert rows["adult/face"][5:] == ["-", "-", "-", "-"]
        assert rows["adult/face+knn"][5:] == ["knn", "-", "-", "-"]
        assert rows["adult/face+scm"][5:] == ["-", "scm", "-", "-"]
        assert rows["adult/face+mined"][5:] == ["-", "mined", "-", "-"]
        assert rows["adult/face+robust"][5:] == ["-", "-", "K4", "-"]
        assert rows["adult/face+robust-knn"][5:] == ["knn", "-", "K4", "-"]

    def test_title_counts_the_rows(self, capsys):
        out, block = self.metric_rows(capsys, ["list-scenarios", "--strategy", "face"])
        n_rows = len(block) - 3  # title, header, separator
        assert block[0] == f"Scenario registry ({n_rows} entries)"

    def test_unfiltered_registry_is_at_least_140(self, capsys):
        out, block = self.metric_rows(capsys, ["list-scenarios"])
        assert len(block) - 3 >= 140


class TestRunScenarioOutput:
    def scenario_metrics(self, capsys, argv, title):
        assert main(argv) == 0
        block = table_lines(capsys.readouterr().out, title)
        return {table_cells(row)[0]: table_cells(row)[1] for row in block[3:]}

    def test_causal_variant_reports_plausibility(self, capsys, tmp_path):
        metrics = self.scenario_metrics(
            capsys,
            ["run-scenario", "--scenario", "adult/dice_random",
             "--causal", "scm", "--scale", "smoke", "--out", str(tmp_path)],
            "SCENARIO adult/dice_random+scm (scale smoke)")
        assert 0.0 <= float(metrics["causal plausibility (%)"]) <= 100.0
        assert metrics["density (mean kNN dist)"] == "-"
        assert float(metrics["validity"]) > 0
        assert (tmp_path / "scenario_adult_dice_random+scm.txt").exists()

    def test_density_variant_reports_density_not_causal(self, capsys):
        metrics = self.scenario_metrics(
            capsys,
            ["run-scenario", "--scenario", "adult/dice_random",
             "--density", "knn", "--scale", "smoke"],
            "SCENARIO adult/dice_random+knn (scale smoke)")
        assert float(metrics["density (mean kNN dist)"]) >= 0.0
        assert metrics["causal plausibility (%)"] == "-"

    def test_unknown_scenario_names_the_registry(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["run-scenario", "--scenario", "adult/gandalf"])


class TestServeDemoRoundTripFlags:
    def test_causal_flag_persists_and_serves_from_store(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code = main(["serve-demo", "--scale", "smoke", "--rows", "16",
                     "--artifact-dir", str(store_dir), "--causal", "scm"])
        assert code == 0
        out = capsys.readouterr().out
        block = table_lines(out, "SERVE DEMO (adult")
        stages = [table_cells(row)[0] for row in block[3:]]
        assert stages == ["ensure artifact", "fit + persist causal",
                          "warm-start batch", "cached batch"]
        details = {table_cells(row)[0]: table_cells(row)[2] for row in block[3:]}
        assert details["fit + persist causal"] == "scm, served from store state"
        assert "strategy core generator + scm causal" in block[0]
        assert (store_dir / "adult-unary-seed0" / "causal.json").exists()
        assert (store_dir / "adult-unary-seed0" / "causal.npz").exists()

        # second run warm-starts from the persisted artifact (no retrain)
        code = main(["serve-demo", "--scale", "smoke", "--rows", "16",
                     "--artifact-dir", str(store_dir), "--causal", "scm"])
        assert code == 0
        rerun = table_lines(capsys.readouterr().out, "SERVE DEMO (adult")
        assert table_cells(rerun[3])[2] == "cache hit"

    def test_density_and_causal_flags_compose(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code = main(["serve-demo", "--scale", "smoke", "--rows", "8",
                     "--artifact-dir", str(store_dir),
                     "--density", "knn", "--causal", "mined"])
        assert code == 0
        block = table_lines(capsys.readouterr().out, "SERVE DEMO (adult")
        stages = [table_cells(row)[0] for row in block[3:]]
        assert stages == ["ensure artifact", "fit + persist density",
                          "fit + persist causal", "warm-start batch",
                          "cached batch"]
        assert "knn density + mined causal" in block[0]
        artifact = store_dir / "adult-unary-seed0"
        assert (artifact / "density.json").exists()
        assert (artifact / "causal.json").exists()


class TestDensityBackendFlag:
    def test_parse_and_choices(self):
        args = build_parser().parse_args(
            ["run-scenario", "--density-backend", "ann"])
        assert args.density_backend == "ann"
        assert build_parser().parse_args(["run-scenario"]).density_backend is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-scenario", "--density-backend", "faiss"])

    def test_run_scenario_with_ann_backend(self, capsys, tmp_path):
        code = main(["run-scenario", "--scenario", "adult/dice_random",
                     "--density", "knn", "--density-backend", "ann",
                     "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO adult/dice_random+knn@ann" in out
        assert "density (mean kNN dist)" in out

    def test_serve_demo_backend_requires_density(self, capsys):
        with pytest.raises(SystemExit, match="requires --density"):
            main(["serve-demo", "--scale", "smoke", "--rows", "8",
                  "--density-backend", "ann"])

    def test_serve_demo_with_ann_backend(self, capsys, tmp_path):
        code = main(["serve-demo", "--scale", "smoke", "--rows", "8",
                     "--artifact-dir", str(tmp_path / "store"),
                     "--density", "knn", "--density-backend", "ann"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(ann)" in out

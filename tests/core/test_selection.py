"""Tests for density-aware counterfactual selection (Figure 3)."""

import numpy as np
import pytest

from repro.core import (
    CandidateSet,
    DensityCFSelector,
    FeasibleCFExplainer,
    fast_config,
    generate_candidates,
)
from repro.data import load_dataset


@pytest.fixture(scope="module")
def fitted():
    bundle = load_dataset("adult", n_instances=2500, seed=0)
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=fast_config(epochs=10), seed=0)
    explainer.fit(x_train, y_train)
    x_test, _ = bundle.split("test")
    negatives = x_test[explainer.blackbox.predict(x_test) == 0][:15]
    return bundle, explainer, x_train, negatives


class TestGenerateCandidates:
    def test_requires_fitted_explainer(self, fitted):
        bundle, _, _, negatives = fitted
        unfitted = FeasibleCFExplainer(bundle.encoder, seed=0)
        with pytest.raises(RuntimeError):
            generate_candidates(unfitted, negatives)

    def test_candidate_count_and_shape(self, fitted):
        _, explainer, _, negatives = fitted
        sets = generate_candidates(explainer, negatives, n_candidates=8)
        assert len(sets) == len(negatives)
        for candidate_set in sets:
            assert candidate_set.candidates.shape == (8, negatives.shape[1])
            assert len(candidate_set.valid) == 8
            assert len(candidate_set.feasible) == 8

    def test_first_candidate_is_deterministic(self, fitted):
        _, explainer, _, negatives = fitted
        sets = generate_candidates(explainer, negatives[:3], n_candidates=5)
        deterministic = explainer.explain(negatives[:3]).x_cf
        for i, candidate_set in enumerate(sets):
            np.testing.assert_allclose(candidate_set.candidates[0],
                                       deterministic[i], atol=1e-9)

    def test_candidates_are_diverse(self, fitted):
        _, explainer, _, negatives = fitted
        sets = generate_candidates(explainer, negatives[:2], n_candidates=10,
                                   noise_scale=0.3)
        for candidate_set in sets:
            spread = candidate_set.candidates.std(axis=0).max()
            assert spread > 1e-4

    def test_immutables_projected_in_candidates(self, fitted):
        bundle, explainer, _, negatives = fitted
        sets = generate_candidates(explainer, negatives[:2], n_candidates=6)
        mask = bundle.encoder.immutable_mask()
        for candidate_set in sets:
            np.testing.assert_allclose(
                candidate_set.candidates[:, mask],
                np.repeat(candidate_set.x[None, mask], 6, axis=0))

    def test_rejects_bad_count(self, fitted):
        _, explainer, _, negatives = fitted
        with pytest.raises(ValueError):
            generate_candidates(explainer, negatives, n_candidates=0)


class TestDensityCFSelector:
    def test_requires_reference(self, fitted):
        _, explainer, _, negatives = fitted
        selector = DensityCFSelector(explainer)
        with pytest.raises(RuntimeError):
            selector.density_score(negatives)

    def test_fit_reference_builds_population(self, fitted):
        _, explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer, k_neighbors=5)
        selector.fit_reference(x_train[:300])
        assert selector.n_reference >= 5

    def test_fit_reference_shrinks_tiny_population(self, fitted):
        _, explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer, k_neighbors=10_000)
        with pytest.warns(UserWarning, match="feasible reference examples"):
            selector.fit_reference(x_train[:100])
        # degraded gracefully: fitted, with k clamped at query time
        assert 0 < selector.n_reference < 10_000
        scores = selector.density_score(x_train[:5])
        assert scores.shape == (5,)

    def test_density_score_orders_by_closeness(self, fitted):
        _, explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer, k_neighbors=5)
        selector.fit_reference(x_train[:300])
        reference_point = selector._reference[0]
        far_point = reference_point + 5.0
        scores = selector.density_score(
            np.vstack([reference_point, far_point]))
        assert scores[0] < scores[1]

    def test_select_prefers_usable(self, fitted):
        _, explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer, k_neighbors=5)
        selector.fit_reference(x_train[:300])
        x = np.full(explainer.encoder.n_encoded, 0.5)
        candidates = np.vstack([x + 0.01, x + 0.02, x + 0.03])
        candidate_set = CandidateSet(
            x=x, candidates=candidates,
            valid=np.array([False, True, True]),
            feasible=np.array([False, False, True]))
        chosen = selector.select(candidate_set)
        assert chosen == 2  # the only valid & feasible one

    def test_select_falls_back_to_valid(self, fitted):
        _, explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer, k_neighbors=5)
        selector.fit_reference(x_train[:300])
        x = np.full(explainer.encoder.n_encoded, 0.5)
        candidate_set = CandidateSet(
            x=x, candidates=np.vstack([x + 0.01, x + 0.5]),
            valid=np.array([False, True]),
            feasible=np.array([False, False]))
        assert selector.select(candidate_set) == 1

    def test_explain_batch(self, fitted):
        _, explainer, x_train, negatives = fitted
        selector = DensityCFSelector(explainer, k_neighbors=5)
        selector.fit_reference(x_train[:300])
        x_cf, diagnostics = selector.explain(negatives[:5], n_candidates=8)
        assert x_cf.shape == (5, negatives.shape[1])
        assert len(diagnostics) == 5
        for diag in diagnostics:
            assert 0 <= diag["chosen"] < 8
            assert diag["n_usable"] <= diag["n_valid"] <= 8

    def test_density_weight_changes_choice_pressure(self, fitted):
        _, explainer, x_train, negatives = fitted
        proximal = DensityCFSelector(explainer, density_weight=1e-6,
                                     k_neighbors=5).fit_reference(x_train[:300])
        dense = DensityCFSelector(explainer, density_weight=100.0,
                                  k_neighbors=5).fit_reference(x_train[:300])
        x_cf_proximal, _ = proximal.explain(negatives[:8], n_candidates=12)
        x_cf_dense, _ = dense.explain(negatives[:8], n_candidates=12)
        # the dense selector's picks sit in (weakly) denser regions
        assert dense.density_score(x_cf_dense).mean() <= \
            dense.density_score(x_cf_proximal).mean() + 1e-9

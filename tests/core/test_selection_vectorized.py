"""Vectorized candidate generation must reproduce the per-row loop.

``generate_candidates`` decodes all ``n_rows * n_candidates`` latents in
one batched pass with a single black-box validity call and a single
constraint feasibility call.  These tests pin it against
``_generate_candidates_loop`` — the original per-row reference — given
identically seeded rngs: same candidates, same valid/feasible flags.
"""

import numpy as np
import pytest

from repro.core import FeasibleCFExplainer, fast_config, generate_candidates
from repro.core.selection import _generate_candidates_loop
from repro.data import load_dataset


@pytest.fixture(scope="module")
def fitted():
    bundle = load_dataset("adult", n_instances=1200, seed=3)
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=fast_config(epochs=4), seed=3)
    explainer.fit(x_train, y_train)
    x_test, _ = bundle.split("test")
    negatives = x_test[explainer.blackbox.predict(x_test) == 0][:9]
    return explainer, negatives


def _pair(explainer, x, **kwargs):
    seed = kwargs.pop("rng_seed", 42)
    vectorized = generate_candidates(
        explainer, x, rng=np.random.default_rng(seed), **kwargs)
    looped = _generate_candidates_loop(
        explainer, x, rng=np.random.default_rng(seed), **kwargs)
    return vectorized, looped


class TestVectorizedMatchesLoop:
    def test_candidates_identical(self, fitted):
        explainer, negatives = fitted
        vectorized, looped = _pair(explainer, negatives, n_candidates=12)
        assert len(vectorized) == len(looped) == len(negatives)
        for vec_set, loop_set in zip(vectorized, looped):
            np.testing.assert_array_equal(vec_set.x, loop_set.x)
            np.testing.assert_allclose(vec_set.candidates, loop_set.candidates,
                                       rtol=0, atol=1e-12)

    def test_valid_and_feasible_flags_identical(self, fitted):
        explainer, negatives = fitted
        vectorized, looped = _pair(explainer, negatives, n_candidates=12)
        for vec_set, loop_set in zip(vectorized, looped):
            np.testing.assert_array_equal(vec_set.valid, loop_set.valid)
            np.testing.assert_array_equal(vec_set.feasible, loop_set.feasible)

    def test_explicit_desired_and_noise(self, fitted):
        explainer, negatives = fitted
        desired = np.ones(len(negatives), dtype=int)
        vectorized, looped = _pair(explainer, negatives, n_candidates=7,
                                   noise_scale=0.3, desired=desired)
        for vec_set, loop_set in zip(vectorized, looped):
            np.testing.assert_allclose(vec_set.candidates, loop_set.candidates,
                                       rtol=0, atol=1e-12)
            np.testing.assert_array_equal(vec_set.valid, loop_set.valid)

    def test_single_row(self, fitted):
        explainer, negatives = fitted
        vectorized, looped = _pair(explainer, negatives[:1], n_candidates=5)
        np.testing.assert_allclose(vectorized[0].candidates,
                                   looped[0].candidates, rtol=0, atol=1e-12)

    def test_single_candidate(self, fitted):
        explainer, negatives = fitted
        vectorized, looped = _pair(explainer, negatives[:3], n_candidates=1)
        for vec_set, loop_set in zip(vectorized, looped):
            np.testing.assert_allclose(vec_set.candidates, loop_set.candidates,
                                       rtol=0, atol=1e-12)

    def test_first_candidate_deterministic(self, fitted):
        explainer, negatives = fitted
        sets = generate_candidates(explainer, negatives[:4], n_candidates=6,
                                   rng=np.random.default_rng(0))
        deterministic = explainer.explain(negatives[:4]).x_cf
        for i, candidate_set in enumerate(sets):
            np.testing.assert_allclose(candidate_set.candidates[0],
                                       deterministic[i], atol=1e-9)

    def test_rng_stream_consumed_identically(self, fitted):
        """After generation both rngs are in the same state."""
        explainer, negatives = fitted
        rng_vec = np.random.default_rng(5)
        rng_loop = np.random.default_rng(5)
        generate_candidates(explainer, negatives[:3], n_candidates=4, rng=rng_vec)
        _generate_candidates_loop(explainer, negatives[:3], n_candidates=4,
                                  rng=rng_loop)
        assert rng_vec.random() == rng_loop.random()

"""Tests for the CFVAEGenerator and the FeasibleCFExplainer public API."""

import numpy as np
import pytest

from repro.core import CFBatchResult, FeasibleCFExplainer, fast_config
from repro.data import load_dataset


def fitted_explainer(kind="unary", n=2500, epochs=8, seed=0):
    bundle = load_dataset("adult", n_instances=n, seed=seed)
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind=kind,
        config=fast_config(epochs=epochs), seed=seed)
    explainer.fit(x_train, y_train, blackbox_epochs=15)
    return bundle, explainer


class TestFitValidation:
    def test_explain_before_fit_raises(self):
        bundle = load_dataset("adult", n_instances=300, seed=0)
        explainer = FeasibleCFExplainer(bundle.encoder)
        with pytest.raises(RuntimeError):
            explainer.explain(bundle.encoded[:5])

    def test_history_empty_before_fit(self):
        bundle = load_dataset("adult", n_instances=300, seed=0)
        assert FeasibleCFExplainer(bundle.encoder).history == []

    def test_rejects_non_2d(self):
        bundle, explainer = fitted_explainer(n=400, epochs=2)
        with pytest.raises(ValueError):
            explainer.explain(np.zeros(bundle.encoder.n_encoded))


class TestTrainingBehaviour:
    def test_loss_decreases(self):
        _, explainer = fitted_explainer(epochs=10)
        history = explainer.history
        assert history[-1]["total"] < history[0]["total"]

    def test_history_has_all_parts(self):
        _, explainer = fitted_explainer(n=400, epochs=2)
        assert set(explainer.history[0]) >= {
            "validity", "proximity", "feasibility", "sparsity", "total"}

    def test_pretrained_blackbox_reused(self):
        bundle = load_dataset("adult", n_instances=600, seed=0)
        x_train, y_train = bundle.split("train")
        from repro.models import BlackBoxClassifier, train_classifier
        blackbox = BlackBoxClassifier(bundle.encoder.n_encoded,
                                      np.random.default_rng(9))
        train_classifier(blackbox, x_train, y_train, epochs=5)
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=2),
            blackbox=blackbox, seed=0)
        explainer.fit(x_train, y_train)
        assert explainer.blackbox is blackbox


class TestExplainOutputs:
    def test_result_structure(self):
        bundle, explainer = fitted_explainer()
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test)
        assert isinstance(result, CFBatchResult)
        assert len(result) == len(x_test)
        assert result.x_cf.shape == x_test.shape
        assert result.valid.dtype == bool
        assert result.feasible.dtype == bool

    def test_validity_high_after_training(self):
        bundle, explainer = fitted_explainer(epochs=12)
        x_test, _ = bundle.split("test")
        negatives = x_test[explainer.blackbox.predict(x_test) == 0]
        result = explainer.explain(negatives)
        assert result.validity_rate > 0.8

    def test_feasibility_high_with_unary_constraint(self):
        bundle, explainer = fitted_explainer(epochs=12)
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test)
        assert result.feasibility_rate > 0.7

    def test_immutables_never_change(self):
        bundle, explainer = fitted_explainer(n=600, epochs=3)
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test)
        mask = bundle.encoder.immutable_mask()
        np.testing.assert_allclose(result.x_cf[:, mask], result.x[:, mask])

    def test_desired_defaults_to_flip(self):
        bundle, explainer = fitted_explainer(n=600, epochs=3)
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test)
        np.testing.assert_array_equal(
            result.desired, 1 - explainer.blackbox.predict(x_test))

    def test_explicit_desired_respected(self):
        bundle, explainer = fitted_explainer(n=600, epochs=3)
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test[:10], desired=np.ones(10, dtype=int))
        np.testing.assert_array_equal(result.desired, np.ones(10))

    def test_explain_frame_roundtrip(self):
        bundle, explainer = fitted_explainer(n=600, epochs=3)
        subset = bundle.frame.take(bundle.test_idx[:8])
        result = explainer.explain_frame(subset)
        assert len(result) == 8

    def test_decoded_frames(self):
        bundle, explainer = fitted_explainer(n=600, epochs=3)
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test[:5])
        decoded = result.decoded()
        assert decoded.n_rows == 5
        assert set(decoded.column_names) == set(bundle.schema.feature_names)

    def test_comparison_rendering(self):
        bundle, explainer = fitted_explainer(n=600, epochs=3)
        x_test, _ = bundle.split("test")
        result = explainer.explain(x_test[:3])
        text = result.comparison(0)
        assert "x true" in text and "x pred" in text
        assert "age" in text


class TestBinaryConstraintModel:
    def test_binary_kind_trains_and_scores(self):
        bundle, explainer = fitted_explainer(kind="binary", epochs=12)
        assert explainer.constraint_kind == "binary"
        x_test, _ = bundle.split("test")
        negatives = x_test[explainer.blackbox.predict(x_test) == 0]
        result = explainer.explain(negatives)
        assert 0.0 <= result.feasibility_rate <= 1.0
        assert result.validity_rate > 0.5


class TestDeterminism:
    def test_same_seed_same_cfs(self):
        bundle_a, explainer_a = fitted_explainer(n=500, epochs=3, seed=7)
        bundle_b, explainer_b = fitted_explainer(n=500, epochs=3, seed=7)
        x = bundle_a.encoded[bundle_a.test_idx[:10]]
        np.testing.assert_allclose(
            explainer_a.explain(x).x_cf, explainer_b.explain(x).x_cf)

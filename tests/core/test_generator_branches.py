"""Branch-coverage tests for the CF generator and loss configuration."""

import numpy as np
import pytest
from dataclasses import replace

from repro.constraints import ImmutableProjector, build_constraints
from repro.core import CFTrainingConfig, FourPartLoss, fast_config
from repro.core.generator import CFVAEGenerator
from repro.data import load_dataset
from repro.models import BlackBoxClassifier, ConditionalVAE, train_classifier
from repro.nn import Tensor


@pytest.fixture(scope="module")
def pieces():
    bundle = load_dataset("adult", n_instances=1000, seed=0)
    x_train, y_train = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded,
                                  np.random.default_rng(0))
    train_classifier(blackbox, x_train, y_train, epochs=5,
                     rng=np.random.default_rng(0))
    return bundle, blackbox, x_train


def make_generator(bundle, blackbox, config):
    vae = ConditionalVAE(bundle.encoder.n_encoded, np.random.default_rng(3))
    return CFVAEGenerator(
        vae, blackbox, build_constraints(bundle.encoder, "unary"),
        ImmutableProjector(bundle.encoder), config,
        rng=np.random.default_rng(4))


class TestGeneratorBranches:
    def test_generate_before_fit_raises(self, pieces):
        bundle, blackbox, _ = pieces
        generator = make_generator(bundle, blackbox, fast_config(epochs=1))
        with pytest.raises(RuntimeError):
            generator.generate(bundle.encoded[:3])

    def test_no_warmstart_path(self, pieces):
        bundle, blackbox, x_train = pieces
        config = replace(fast_config(epochs=2), warmstart_epochs=0)
        generator = make_generator(bundle, blackbox, config)
        generator.fit(x_train[:300])
        assert len(generator.history) == 2

    def test_desired_length_validation(self, pieces):
        bundle, blackbox, x_train = pieces
        generator = make_generator(bundle, blackbox, fast_config(epochs=1))
        with pytest.raises(ValueError):
            generator.fit(x_train[:100], desired=np.ones(3, dtype=int))

    def test_generate_with_perturbation_differs(self, pieces):
        bundle, blackbox, x_train = pieces
        generator = make_generator(bundle, blackbox, fast_config(epochs=2))
        generator.fit(x_train[:300])
        x = x_train[:10]
        deterministic = generator.generate(x)
        perturbed = generator.generate(x, perturb=True)
        assert not np.allclose(deterministic, perturbed)

    def test_sgd_optimizer_branch(self, pieces):
        bundle, blackbox, x_train = pieces
        config = replace(fast_config(epochs=1), optimizer="sgd",
                         learning_rate=0.01, momentum=0.5)
        generator = make_generator(bundle, blackbox, config)
        generator.fit(x_train[:200])
        assert generator.history


class TestLossBranches:
    def test_l2_proximity_metric(self, pieces):
        bundle, blackbox, x_train = pieces
        constraints = build_constraints(bundle.encoder, "unary")
        l1_loss = FourPartLoss(blackbox, constraints,
                               CFTrainingConfig(proximity_metric="l1"))
        l2_loss = FourPartLoss(blackbox, constraints,
                               CFTrainingConfig(proximity_metric="l2"))
        x = x_train[:20]
        x_cf = Tensor(np.clip(x + 0.1, 0, 1))
        desired = 1 - blackbox.predict(x)
        _, parts_l1 = l1_loss(x, x_cf, desired)
        _, parts_l2 = l2_loss(x, x_cf, desired)
        # for deltas ~0.1, squared distance is smaller than absolute
        assert parts_l2["proximity"] < parts_l1["proximity"]

    def test_kl_skipped_when_weight_zero(self, pieces):
        bundle, blackbox, x_train = pieces
        constraints = build_constraints(bundle.encoder, "unary")
        loss = FourPartLoss(blackbox, constraints,
                            CFTrainingConfig(kl_weight=0.0))
        x = x_train[:10]
        mu = Tensor(np.random.default_rng(0).random((10, 4)))
        log_var = Tensor(np.zeros((10, 4)))
        _, parts = loss(x, Tensor(x.copy()), 1 - blackbox.predict(x),
                        mu, log_var)
        assert "kl" not in parts

"""Tests for the four-part counterfactual loss."""

import numpy as np
import pytest

from repro.constraints import ConstraintSet, MonotonicIncreaseConstraint
from repro.core import CFTrainingConfig, FourPartLoss, sparsity_penalty
from repro.data import load_dataset
from repro.models import BlackBoxClassifier, train_classifier
from repro.nn import Tensor


class TestSparsityPenalty:
    def test_zero_delta_zero_penalty(self):
        out = sparsity_penalty(Tensor(np.zeros((3, 4))), 1.0, 1.0, 0.05)
        assert out.item() == 0.0

    def test_grows_with_changes(self):
        small = sparsity_penalty(Tensor(np.full((2, 4), 0.01)), 1.0, 1.0, 0.05).item()
        large = sparsity_penalty(Tensor(np.full((2, 4), 0.5)), 1.0, 1.0, 0.05).item()
        assert large > small

    def test_l0_counts_features_not_magnitude(self):
        # one large change vs many small ones with same L1 mass
        one_big = np.zeros((1, 10))
        one_big[0, 0] = 1.0
        spread = np.full((1, 10), 0.1)
        l0_big = sparsity_penalty(Tensor(one_big), 0.0, 1.0, 0.01).item()
        l0_spread = sparsity_penalty(Tensor(spread), 0.0, 1.0, 0.01).item()
        assert l0_spread > l0_big  # more features changed => larger smooth-L0

    def test_weights_disable_terms(self):
        delta = Tensor(np.full((2, 3), 0.2))
        assert sparsity_penalty(delta, 0.0, 0.0, 0.05).item() == 0.0

    def test_differentiable(self):
        delta = Tensor(np.full((2, 3), 0.2), requires_grad=True)
        sparsity_penalty(delta, 1.0, 1.0, 0.05).backward()
        assert delta.grad is not None


def fitted_pieces(n=300):
    bundle = load_dataset("adult", n_instances=n, seed=0)
    x, y = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
    train_classifier(blackbox, x, y, epochs=5, rng=np.random.default_rng(0))
    constraints = ConstraintSet(
        [MonotonicIncreaseConstraint(bundle.encoder, "age")])
    return bundle, x, blackbox, constraints


class TestFourPartLoss:
    def test_parts_reported(self):
        _, x, blackbox, constraints = fitted_pieces()
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig())
        desired = 1 - blackbox.predict(x)
        total, parts = loss_fn(x, Tensor(x.copy()), desired)
        assert set(parts) >= {"validity", "proximity", "feasibility", "sparsity", "total"}
        assert total.item() == pytest.approx(parts["total"])

    def test_identity_cf_has_zero_proximity_and_sparsity(self):
        _, x, blackbox, constraints = fitted_pieces()
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig())
        desired = 1 - blackbox.predict(x)
        _, parts = loss_fn(x, Tensor(x.copy()), desired)
        assert parts["proximity"] == 0.0
        assert parts["sparsity"] == 0.0
        assert parts["feasibility"] == 0.0
        assert parts["validity"] > 0.0  # same input cannot satisfy flipped class

    def test_kl_included_when_stats_given(self):
        _, x, blackbox, constraints = fitted_pieces()
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig(kl_weight=0.1))
        desired = 1 - blackbox.predict(x)
        mu = Tensor(np.random.default_rng(0).random((len(x), 4)))
        log_var = Tensor(np.zeros((len(x), 4)))
        _, parts = loss_fn(x, Tensor(x.copy()), desired, mu, log_var)
        assert "kl" in parts and parts["kl"] > 0

    def test_blackbox_frozen(self):
        _, x, blackbox, constraints = fitted_pieces()
        FourPartLoss(blackbox, constraints, CFTrainingConfig())
        assert all(not p.requires_grad for p in blackbox.parameters())

    def test_gradients_flow_to_cf(self):
        _, x, blackbox, constraints = fitted_pieces()
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig())
        desired = 1 - blackbox.predict(x)
        x_cf = Tensor(x.copy() + 0.01, requires_grad=True)
        total, _ = loss_fn(x, x_cf, desired)
        total.backward()
        assert x_cf.grad is not None
        assert np.abs(x_cf.grad).sum() > 0

    def test_violating_cf_pays_feasibility(self):
        bundle, x, blackbox, constraints = fitted_pieces()
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig())
        desired = 1 - blackbox.predict(x)
        x_cf = x.copy()
        x_cf[:, bundle.encoder.column_of("age")] -= 0.2  # get younger
        _, parts = loss_fn(x, Tensor(x_cf), desired)
        assert parts["feasibility"] > 0

"""Density-layer selection tests: parity, single score pass, fit contract."""

import pytest

from repro.core import DensityCFSelector, FeasibleCFExplainer, fast_config
from repro.data import load_dataset
from repro.density import GaussianKdeDensity, KnnDensity
from repro.utils.validation import SchemaMismatchError
from tests.helpers.parity import DATASETS, assert_batched_matches_loop


def _fit_explainer(dataset, seed=0):
    bundle = load_dataset(dataset, n_instances=900, seed=seed)
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=fast_config(epochs=2), seed=seed)
    explainer.fit(x_train, y_train)
    x_test, _ = bundle.split("test")
    rows = x_test[:10]
    return explainer, x_train, rows


@pytest.fixture(scope="module", params=DATASETS)
def fitted(request):
    return _fit_explainer(request.param)


class TestBatchLoopParity:
    """The batched explain must reproduce the pre-PR per-row loop exactly."""

    def test_explain_bit_identical_to_loop(self, fitted):
        explainer, x_train, rows = fitted
        selector = DensityCFSelector(explainer, density_weight=2.0, k_neighbors=6)
        selector.fit_reference(x_train[:150])
        assert_batched_matches_loop(
            selector.explain, selector._explain_loop, rows, n_candidates=7,
            context="density explain")

    def test_kde_estimator_selects_equivalently(self, fitted):
        # the kde backend is matmul-based, so scores match within float
        # tolerance rather than bitwise (BLAS blocking varies with batch
        # shape); the selected counterfactuals still agree
        explainer, x_train, rows = fitted
        selector = DensityCFSelector(
            explainer, k_neighbors=6, density_model=GaussianKdeDensity())
        selector.fit_reference(x_train[:150])
        assert_batched_matches_loop(
            selector.explain, selector._explain_loop, rows[:6], n_candidates=5,
            atol=1e-6, context="kde density explain")


class _CountingKnn(KnnDensity):
    """KnnDensity that counts backend score passes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.score_calls = 0
        self.tiled_calls = 0

    def score(self, candidates):
        self.score_calls += 1
        return super().score(candidates)

    def score_tiled(self, candidates):
        self.tiled_calls += 1
        return super().score_tiled(candidates)


class TestSingleScorePass:
    def test_explain_scores_each_batch_once(self, fitted):
        explainer, x_train, rows = fitted
        model = _CountingKnn(k_neighbors=6)
        selector = DensityCFSelector(explainer, density_model=model)
        selector.fit_reference(x_train[:150])
        model.score_calls = 0
        model.tiled_calls = 0
        selector.explain(rows, n_candidates=6)
        # one tiled pass for the whole batch; score() only as its backend
        assert model.tiled_calls == 1
        assert model.score_calls == 1

    def test_loop_reference_scored_twice_per_row(self, fitted):
        # documents the historical cost the batched path removed
        explainer, x_train, rows = fitted
        model = _CountingKnn(k_neighbors=6)
        selector = DensityCFSelector(explainer, density_model=model)
        selector.fit_reference(x_train[:150])
        model.score_calls = 0
        selector._explain_loop(rows, n_candidates=6)
        assert model.score_calls == 2 * len(rows)


class TestFitReferenceContract:
    def test_wrong_width_raises_schema_error(self, fitted):
        explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer)
        with pytest.raises(SchemaMismatchError, match="x_reference"):
            selector.fit_reference(x_train[:50, :-1])

    def test_kde_model_small_population_does_not_warn(self, fitted):
        # the k-clamping warning is a k-NN statement; a KDE has no k
        import warnings as warnings_module

        explainer, x_train, _ = fitted
        selector = DensityCFSelector(
            explainer, k_neighbors=100_000, density_model=GaussianKdeDensity())
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            selector.fit_reference(x_train[:60])
        assert selector.n_reference > 0

    def test_warning_uses_the_injected_models_k(self, fitted):
        explainer, x_train, _ = fitted
        model = KnnDensity(k_neighbors=100_000)
        selector = DensityCFSelector(explainer, k_neighbors=2, density_model=model)
        with pytest.warns(UserWarning, match="k_neighbors=100000"):
            selector.fit_reference(x_train[:60])

    def test_small_population_warns_and_fits(self, fitted):
        explainer, x_train, rows = fitted
        selector = DensityCFSelector(explainer, k_neighbors=100_000)
        with pytest.warns(UserWarning, match="density scores will use"):
            selector.fit_reference(x_train[:60])
        assert selector.n_reference > 0
        # usable end to end despite the shrunken k
        x_cf, diagnostics = selector.explain(rows[:3], n_candidates=4)
        assert x_cf.shape == (3, x_train.shape[1])
        assert len(diagnostics) == 3

    def test_zero_feasible_references_raise(self, fitted, monkeypatch):
        explainer, x_train, _ = fitted
        selector = DensityCFSelector(explainer)
        real = explainer.explain

        def no_feasible(x, desired=None):
            result = real(x, desired)
            result.feasible[:] = False
            return result

        monkeypatch.setattr(explainer, "explain", no_feasible)
        with pytest.raises(ValueError, match="no valid & feasible"):
            selector.fit_reference(x_train[:40])

    def test_unfitted_explain_raises(self, fitted):
        explainer, _, rows = fitted
        selector = DensityCFSelector(explainer)
        with pytest.raises(RuntimeError, match="no reference"):
            selector.explain(rows[:2], n_candidates=3)

"""Six-part in-objective training: freeze lifecycle, parity and wiring.

Covers the training-loop regressions this PR fixed (the permanent
blackbox freeze, the duplicated delta subtraction, the scalar ``desired``
crash, zero-row fits, re-fit history clobbering) plus the six-part
contract: with both in-loss weights at zero, training and generation are
bit-identical to the four-part path — even with surrogates attached.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.causal import ScmLossSurrogate, fit_causal
from repro.constraints import (
    ConstraintSet,
    ImmutableProjector,
    MonotonicIncreaseConstraint,
)
from repro.core import (
    CFTrainingConfig,
    CFVAEGenerator,
    FourPartLoss,
    fast_config,
    inloss_config,
)
from repro.data import load_dataset
from repro.density import DifferentiableKde
from repro.models import BlackBoxClassifier, ConditionalVAE, train_classifier
from repro.nn import Adam, Tensor
from tests.helpers.parity import assert_bit_identical


@pytest.fixture(scope="module")
def pieces():
    bundle = load_dataset("adult", n_instances=300, seed=0)
    x, y = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
    train_classifier(blackbox, x, y, epochs=5, rng=np.random.default_rng(0))
    constraints = ConstraintSet([MonotonicIncreaseConstraint(bundle.encoder, "age")])
    return bundle, x, y, blackbox, constraints


def make_generator(bundle, x, y, config=None, attach_surrogates=False):
    """A fully deterministic generator; every rng is freshly seeded."""
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
    train_classifier(blackbox, x, y, epochs=5, rng=np.random.default_rng(0))
    constraints = ConstraintSet([MonotonicIncreaseConstraint(bundle.encoder, "age")])
    vae = ConditionalVAE(bundle.encoder.n_encoded, np.random.default_rng(3))
    config = config or replace(fast_config(epochs=2), warmstart_epochs=2)
    generator = CFVAEGenerator(
        vae, blackbox, constraints, ImmutableProjector(bundle.encoder),
        config, rng=np.random.default_rng(4))
    if attach_surrogates:
        generator.inloss_density = DifferentiableKde(max_reference=64).fit(x)
        generator.inloss_causal = ScmLossSurrogate(
            fit_causal("scm", bundle.encoder, x, y))
    return generator


class TestFreezeLifecycle:
    def test_construction_freezes_nondestructively(self, pieces):
        bundle, x, y, _, constraints = pieces
        blackbox = BlackBoxClassifier(
            bundle.encoder.n_encoded, np.random.default_rng(0))
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig())
        assert list(blackbox.parameters()) == []  # frozen: invisible to optimizers
        loss_fn.release()
        assert all(p.requires_grad for p in blackbox.parameters())

    def test_freeze_is_idempotent(self, pieces):
        bundle, _, _, _, constraints = pieces
        blackbox = BlackBoxClassifier(
            bundle.encoder.n_encoded, np.random.default_rng(0))
        loss_fn = FourPartLoss(blackbox, constraints, CFTrainingConfig())
        # a second freeze must not overwrite the recorded prior flags
        loss_fn.freeze()
        loss_fn.release()
        assert all(p.requires_grad for p in blackbox.parameters())
        loss_fn.release()  # no-op once released

    def test_blackbox_retrainable_after_fit(self, pieces):
        # the historical bug: FourPartLoss froze the classifier forever,
        # so a serving rollover's train_classifier() raised
        # "optimizer received no parameters"
        bundle, x, y, _, _ = pieces
        generator = make_generator(bundle, x, y)
        generator.fit(x[:120])
        assert list(generator.blackbox.parameters())
        train_classifier(generator.blackbox, x, y, epochs=1,
                         rng=np.random.default_rng(1))  # must not raise

    def test_frozen_blackbox_rejected_by_optimizer(self, pieces):
        bundle, _, _, _, constraints = pieces
        blackbox = BlackBoxClassifier(
            bundle.encoder.n_encoded, np.random.default_rng(0))
        FourPartLoss(blackbox, constraints, CFTrainingConfig())
        with pytest.raises(ValueError, match="no parameters"):
            Adam(blackbox.parameters())

    def test_from_trained_releases(self, pieces):
        bundle, x, y, _, _ = pieces
        trained = make_generator(bundle, x, y)
        trained.fit(x[:120])
        warm = CFVAEGenerator.from_trained(
            trained.vae, trained.blackbox, trained.constraints,
            trained.projector, trained.config)
        assert list(warm.blackbox.parameters())


class TestDifferenceReuse:
    def test_parts_match_two_subtraction_reference(self, pieces):
        # the fixed duplication: proximity and sparsity built
        # ``x_cf - Tensor(x)`` independently; the shared delta must be
        # bit-identical to recomputing it per term
        from repro.core import sparsity_penalty

        _, x, _, blackbox, constraints = pieces
        cfg = CFTrainingConfig()
        loss_fn = FourPartLoss(blackbox, constraints, cfg)
        rng = np.random.default_rng(5)
        x_cf = np.clip(x + rng.normal(0.0, 0.05, size=x.shape), 0.0, 1.0)
        desired = 1 - blackbox.predict(x)
        _, parts = loss_fn(x, Tensor(x_cf.copy()), desired)

        proximity = (Tensor(x_cf) - Tensor(x)).abs().sum(axis=1).mean()
        sparsity = sparsity_penalty(
            Tensor(x_cf) - Tensor(x), cfg.sparsity_l1_weight,
            cfg.sparsity_l0_weight, cfg.sparsity_l0_tau)
        assert parts["proximity"] == proximity.item()
        assert parts["sparsity"] == sparsity.item()


class TestDesiredClasses:
    @pytest.fixture(scope="class")
    def generator(self, pieces):
        bundle, x, y, _, _ = pieces
        return make_generator(bundle, x, y).fit(x[:120])

    def test_scalar_broadcasts(self, pieces, generator):
        _, x, _, _, _ = pieces
        desired = generator._desired_classes(x[:7], 1)
        assert desired.tolist() == [1] * 7
        assert generator._desired_classes(x[:3], np.int64(0)).tolist() == [0, 0, 0]

    def test_generate_accepts_scalar_desired(self, pieces, generator):
        # the historical crash: len() of unsized object on a scalar
        _, x, _, _, _ = pieces
        out = generator.generate(x[:5], desired=0)
        assert out.shape == x[:5].shape

    def test_matrix_desired_rejected(self, pieces, generator):
        _, x, _, _, _ = pieces
        with pytest.raises(ValueError, match="scalar or 1-D"):
            generator._desired_classes(x[:4], np.zeros((4, 1)))

    def test_length_mismatch_rejected(self, pieces, generator):
        _, x, _, _, _ = pieces
        with pytest.raises(ValueError, match="row counts differ"):
            generator._desired_classes(x[:4], np.zeros(3))

    def test_none_flips_blackbox_prediction(self, pieces, generator):
        _, x, _, _, _ = pieces
        desired = generator._desired_classes(x[:10], None)
        assert desired.tolist() == (
            1 - generator.blackbox.predict(x[:10])).tolist()


class TestFitGuards:
    def test_zero_row_fit_rejected(self, pieces):
        bundle, x, y, _, _ = pieces
        generator = make_generator(bundle, x, y)
        with pytest.raises(ValueError, match="non-empty"):
            generator.fit(x[:0])

    def test_refit_segments_history(self, pieces):
        bundle, x, y, _, _ = pieces
        generator = make_generator(bundle, x, y)
        generator.fit(x[:120])
        first = list(generator.history)
        generator.fit(x[:120])
        assert generator.history_segments == [first]
        assert len(generator.history) == generator.config.epochs
        assert generator.history is not first

    def test_causal_weight_without_surrogate_rejected(self, pieces):
        bundle, x, y, _, _ = pieces
        config = inloss_config(
            replace(fast_config(epochs=1), warmstart_epochs=1),
            density_weight=0.0)
        generator = make_generator(bundle, x, y, config=config)
        with pytest.raises(RuntimeError, match="prepare_inloss"):
            generator.fit(x[:64])


class TestSixPartTraining:
    def test_history_reports_density_and_causal(self, pieces):
        bundle, x, y, _, _ = pieces
        config = inloss_config(replace(fast_config(epochs=1), warmstart_epochs=1))
        generator = make_generator(bundle, x, y, config=config)
        desired_class = int(bundle.encoder.schema.desired_class)
        generator.prepare_inloss(
            reference=x[np.asarray(y) == desired_class],
            causal=fit_causal("scm", bundle.encoder, x, y),
            desired_class=desired_class)
        generator.fit(x[:120])
        assert {"density", "causal"} <= set(generator.history[0])

    def test_standalone_density_fallback_fits_on_x(self, pieces):
        bundle, x, y, _, _ = pieces
        config = inloss_config(
            replace(fast_config(epochs=1), warmstart_epochs=1),
            causal_weight=0.0)
        generator = make_generator(bundle, x, y, config=config)
        generator.fit(x[:120])
        assert generator.inloss_density is not None
        assert generator.inloss_density.n_reference > 0
        assert "density" in generator.history[0]


class TestZeroWeightParity:
    def test_loss_is_bit_identical_with_surrogates_attached(self, pieces):
        bundle, x, y, blackbox, constraints = pieces
        cfg = CFTrainingConfig()  # both in-loss weights default to 0
        plain = FourPartLoss(blackbox, constraints, cfg)
        loaded = FourPartLoss(
            blackbox, constraints, cfg,
            density_model=DifferentiableKde(max_reference=64).fit(x),
            causal_model=ScmLossSurrogate(fit_causal("scm", bundle.encoder, x, y)))
        desired = 1 - blackbox.predict(x)
        rng = np.random.default_rng(6)
        x_cf = np.clip(x + rng.normal(0.0, 0.05, size=x.shape), 0.0, 1.0)
        total_a, parts_a = plain(x, Tensor(x_cf.copy()), desired)
        total_b, parts_b = loaded(x, Tensor(x_cf.copy()), desired)
        assert total_a.item() == total_b.item()
        assert_bit_identical(parts_a, parts_b, context="zero-weight loss parts")

    def test_training_is_bit_identical_with_surrogates_attached(self, pieces):
        # the acceptance contract: weights at zero => the six-part path
        # trains and generates exactly like the four-part one
        bundle, x, y, _, _ = pieces
        four = make_generator(bundle, x, y)
        six = make_generator(bundle, x, y, attach_surrogates=True)
        four.fit(x[:120])
        six.fit(x[:120])
        assert_bit_identical(six.history, four.history,
                             context="zero-weight training history")
        np.testing.assert_array_equal(six.generate(x[120:160]),
                                      four.generate(x[120:160]))


class TestFingerprints:
    def test_pipeline_fingerprint_tracks_inloss_config(self, pieces):
        from repro.serve.pipeline import pipeline_fingerprint

        bundle, _, _, _, _ = pieces
        base = fast_config(epochs=2)

        def fingerprint(config):
            return pipeline_fingerprint(
                dataset="adult", n_instances=300, seed=0,
                constraint_kind="unary", config=config,
                schema=bundle.encoder.schema, blackbox_epochs=5)

        assert fingerprint(base) != fingerprint(inloss_config(base))
        assert fingerprint(inloss_config(base)) != fingerprint(
            inloss_config(base, density_weight=0.5))
        assert fingerprint(base) == fingerprint(fast_config(epochs=2))

"""Tests for CFTrainingConfig and the Table III settings."""

import pytest

from repro.core import CFTrainingConfig, TABLE3_SETTINGS, fast_config, paper_config


class TestConfigValidation:
    def test_defaults_valid(self):
        config = CFTrainingConfig()
        assert config.batch_size == 2048  # Table III batch size

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            CFTrainingConfig(learning_rate=0.0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            CFTrainingConfig(batch_size=0)

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            CFTrainingConfig(epochs=-1)

    def test_rejects_bad_optimizer(self):
        with pytest.raises(ValueError):
            CFTrainingConfig(optimizer="rmsprop")

    def test_scaled_for_small_data(self):
        config = CFTrainingConfig(batch_size=2048)
        scaled = config.scaled_for(100)
        assert scaled.batch_size == 16  # floor keeps batches viable
        assert scaled.epochs == config.epochs

    def test_scaled_keeps_step_count_medium_data(self):
        config = CFTrainingConfig(batch_size=2048)
        scaled = config.scaled_for(4000)
        assert scaled.batch_size == 500  # ~8 batches per epoch

    def test_scaled_noop_for_big_data(self):
        config = CFTrainingConfig(batch_size=2048)
        assert config.scaled_for(20_000) is config

    def test_rejects_bad_proximity_metric(self):
        with pytest.raises(ValueError):
            CFTrainingConfig(proximity_metric="cosine")

    def test_frozen(self):
        with pytest.raises(Exception):
            CFTrainingConfig().epochs = 3


class TestTable3:
    def test_all_six_rows_present(self):
        datasets = {"adult", "kdd_census", "law_school"}
        kinds = {"unary", "binary"}
        assert set(TABLE3_SETTINGS) == {(d, k) for d in datasets for k in kinds}

    def test_paper_values(self):
        from repro.core import PAPER_TABLE3
        assert PAPER_TABLE3[("adult", "unary")]["learning_rate"] == 0.2
        assert PAPER_TABLE3[("kdd_census", "unary")]["learning_rate"] == 0.1
        assert paper_config("adult", "unary").epochs == 25
        assert paper_config("adult", "binary").epochs == 50
        assert paper_config("kdd_census", "binary").epochs == 25
        assert paper_config("law_school", "binary").epochs == 50

    def test_all_use_batch_2048(self):
        assert all(c.batch_size == 2048 for c in TABLE3_SETTINGS.values())

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            paper_config("adult", "ternary")

    def test_fast_config(self):
        config = fast_config(epochs=3, batch_size=64)
        assert config.epochs == 3
        assert config.batch_size == 64

"""Unit tests for the CFBatchResult container."""

import numpy as np
import pytest

from repro.core import CFBatchResult
from repro.data import load_dataset


@pytest.fixture(scope="module")
def bundle():
    return load_dataset("adult", n_instances=800, seed=0)


def make_result(bundle, n=6):
    x = bundle.encoded[:n]
    x_cf = np.clip(x + 0.05, 0.0, 1.0)
    desired = np.ones(n, dtype=int)
    predicted = np.array([1, 1, 0, 1, 0, 1])[:n]
    return CFBatchResult(
        x=x, x_cf=x_cf, desired=desired, predicted=predicted,
        valid=predicted == desired,
        feasible=np.array([True, False, True, True, True, False])[:n],
        encoder=bundle.encoder)


class TestRates:
    def test_len(self, bundle):
        assert len(make_result(bundle)) == 6

    def test_validity_rate(self, bundle):
        assert make_result(bundle).validity_rate == pytest.approx(4 / 6)

    def test_feasibility_rate(self, bundle):
        assert make_result(bundle).feasibility_rate == pytest.approx(4 / 6)

    def test_empty_rates_are_zero(self, bundle):
        empty = CFBatchResult(
            x=np.zeros((0, bundle.encoder.n_encoded)),
            x_cf=np.zeros((0, bundle.encoder.n_encoded)),
            desired=np.zeros(0, dtype=int), predicted=np.zeros(0, dtype=int),
            valid=np.zeros(0, dtype=bool), feasible=np.zeros(0, dtype=bool),
            encoder=bundle.encoder)
        assert empty.validity_rate == 0.0
        assert empty.feasibility_rate == 0.0


class TestDecoding:
    def test_decoded_counts(self, bundle):
        result = make_result(bundle)
        assert result.decoded().n_rows == 6
        assert result.decoded_inputs().n_rows == 6

    def test_decoded_inputs_roundtrip_raw_values(self, bundle):
        result = make_result(bundle)
        original = bundle.frame.take(np.arange(6))
        decoded = result.decoded_inputs()
        np.testing.assert_allclose(decoded["age"], original["age"], atol=1e-9)

    def test_comparison_contains_both_columns(self, bundle):
        text = make_result(bundle).comparison(0)
        lines = text.splitlines()
        assert "x true" in lines[0] and "x pred" in lines[0]
        assert len(lines) == 1 + bundle.schema.n_features

    def test_comparison_formats_categoricals_as_text(self, bundle):
        text = make_result(bundle).comparison(0)
        assert any(category in text for category in
                   bundle.schema.feature("education").categories)

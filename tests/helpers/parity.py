"""Shared batched-vs-loop parity harness.

Every vectorization PR in this repo keeps the per-row loop it replaced
as a parity reference and pins the batched path bit-identical to it on
all registry datasets (the compiled feasibility kernel, the density
selector, the t-SNE perplexity search, the causal repair pass).  The
pattern used to be copy-pasted per test module; this module is the one
home for it:

* :func:`registry_bundle_fixture` — a parametrized module-scoped bundle
  fixture over every registry dataset (assign it to a module-level name
  and pytest picks it up like a locally defined fixture),
* :func:`perturbed` — the standard noisy-candidate generator,
* :func:`assert_bit_identical` — recursive exact equality over arrays,
  dicts, sequences and scalars, with a context label in failures,
* :func:`assert_close` — the float-tolerance variant for matmul-backed
  paths whose BLAS blocking varies with batch shape,
* :func:`assert_batched_matches_loop` — run a batched callable and its
  loop reference on the same inputs and pin the outputs together.
"""

import numpy as np
import pytest

from repro.data import dataset_names, load_dataset

#: Every registry dataset, in sorted order (stable test ids).
DATASETS = tuple(sorted(dataset_names()))


def registry_bundle_fixture(n_instances=900, seed=1, scope="module"):
    """Build a bundle fixture parametrized over all registry datasets.

    Usage::

        from tests.helpers.parity import registry_bundle_fixture
        bundle = registry_bundle_fixture()

        def test_something(bundle): ...
    """

    @pytest.fixture(scope=scope, params=DATASETS)
    def bundle(request):
        return load_dataset(request.param, n_instances=n_instances, seed=seed)

    return bundle


def perturbed(x, rng, scale, m=1):
    """``m`` noisy candidates per row of ``x``, flat in ``np.repeat`` order."""
    noise = rng.normal(0.0, scale, size=(len(x) * m, x.shape[1]))
    return np.clip(np.repeat(x, m, axis=0) + noise, 0.0, 1.0)


def candidate_sweep(x, rng, scale, m):
    """``(n, m, d)`` noisy candidate tensor around ``x``."""
    return perturbed(x, rng, scale, m=m).reshape(len(x), m, x.shape[1])


def _compare(fast, loop, context, leaf):
    if isinstance(fast, np.ndarray) or isinstance(loop, np.ndarray):
        leaf(np.asarray(fast), np.asarray(loop), context)
    elif isinstance(fast, dict) and isinstance(loop, dict):
        assert fast.keys() == loop.keys(), \
            f"{context}: key sets differ ({sorted(fast)} vs {sorted(loop)})"
        for key in fast:
            _compare(fast[key], loop[key], f"{context}[{key!r}]", leaf)
    elif isinstance(fast, (list, tuple)) and isinstance(loop, (list, tuple)):
        assert len(fast) == len(loop), \
            f"{context}: lengths differ ({len(fast)} vs {len(loop)})"
        for index, (f, s) in enumerate(zip(fast, loop)):
            _compare(f, s, f"{context}[{index}]", leaf)
    elif isinstance(fast, float) and isinstance(loop, float):
        leaf(np.asarray(fast), np.asarray(loop), context)
    else:
        assert fast == loop, f"{context}: {fast!r} != {loop!r}"


def assert_bit_identical(fast, loop, context="batched vs loop"):
    """Recursive *exact* equality: the bit-parity contract."""

    def leaf(f, s, where):
        np.testing.assert_array_equal(f, s, err_msg=where)

    _compare(fast, loop, context, leaf)


def assert_close(fast, loop, atol=1e-9, context="batched vs loop"):
    """Recursive float-tolerance equality (matmul-backed paths)."""

    def leaf(f, s, where):
        np.testing.assert_allclose(f, s, atol=atol, err_msg=where)

    _compare(fast, loop, context, leaf)


def assert_grad_matches_fd(penalty_fn, x, n_coords=8, eps=1e-5, rtol=5e-3,
                           atol=1e-6, context="analytic vs finite difference"):
    """Pin a scalar penalty's backward gradient to central differences.

    ``penalty_fn`` maps a :class:`repro.nn.Tensor` batch to a scalar
    Tensor.  The analytic gradient is taken once via ``backward()``;
    the ``n_coords`` coordinates with the largest magnitude are then
    re-derived by central finite differences and compared.  The in-loss
    surrogates keep their hinges squared (C^1) precisely so this check
    is meaningful at hinge boundaries.  Returns the full analytic
    gradient for further domain assertions.
    """
    from repro.nn import Tensor

    x = np.asarray(x, dtype=np.float64)
    tensor = Tensor(x.copy(), requires_grad=True)
    penalty_fn(tensor).backward()
    grad = np.asarray(tensor.grad)
    assert np.abs(grad).sum() > 0, f"{context}: gradient is identically zero"
    largest = np.argsort(np.abs(grad).ravel())[::-1][:n_coords]
    for position in largest:
        index = np.unravel_index(position, grad.shape)
        plus, minus = x.copy(), x.copy()
        plus[index] += eps
        minus[index] -= eps
        central = (penalty_fn(Tensor(plus)).item()
                   - penalty_fn(Tensor(minus)).item()) / (2.0 * eps)
        np.testing.assert_allclose(
            grad[index], central, rtol=rtol, atol=atol,
            err_msg=f"{context}: coordinate {index}")
    return grad


def assert_batched_matches_loop(batched_fn, loop_fn, *args, atol=None,
                                context=None, **kwargs):
    """Run both paths on identical inputs and pin the outputs together.

    ``atol=None`` (the default) demands bit-identity; a float switches
    to tolerance comparison.  Returns ``(batched, loop)`` so callers can
    make further domain assertions on either result.
    """
    fast = batched_fn(*args, **kwargs)
    loop = loop_fn(*args, **kwargs)
    where = context or f"{getattr(batched_fn, '__name__', batched_fn)} vs loop"
    if atol is None:
        assert_bit_identical(fast, loop, context=where)
    else:
        assert_close(fast, loop, atol=atol, context=where)
    return fast, loop

"""End-to-end integration tests across modules.

These exercise the same paths the paper's evaluation uses: raw generation
-> cleaning -> encoding -> classifier -> CF-VAE -> metrics -> manifolds,
plus model persistence and cross-dataset consistency.
"""

import numpy as np
import pytest

from repro.core import FeasibleCFExplainer, fast_config
from repro.data import load_dataset
from repro.experiments import prepare_context, run_method
from repro.manifold import TSNE, knn_label_agreement
from repro.metrics import evaluate_counterfactuals
from repro.nn import load_state, save_state


@pytest.fixture(scope="module")
def adult_small():
    return load_dataset("adult", n_instances=2500, seed=0)


class TestEndToEnd:
    def test_full_pipeline_produces_scored_counterfactuals(self, adult_small):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        explainer = FeasibleCFExplainer(
            bundle.encoder, constraint_kind="unary",
            config=fast_config(epochs=10), seed=0)
        explainer.fit(x_train, y_train)
        x_test, _ = bundle.split("test")
        negatives = x_test[explainer.blackbox.predict(x_test) == 0]
        result = explainer.explain(negatives)

        report = evaluate_counterfactuals(
            "ours", negatives, result.x_cf, result.desired,
            explainer.blackbox, bundle.encoder, x_train=x_train)
        assert report.validity > 50.0
        assert 0.0 <= report.feasibility_unary <= 100.0
        assert report.sparsity > 0.0
        assert report.continuous_proximity <= 0.0

    def test_decoded_counterfactuals_respect_schema(self, adult_small):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=5), seed=0)
        explainer.fit(x_train, y_train)
        result = explainer.explain(bundle.encoded[bundle.test_idx[:20]])
        frame = result.decoded()
        for spec in bundle.schema.continuous:
            assert frame[spec.name].min() >= spec.bounds[0]
            assert frame[spec.name].max() <= spec.bounds[1]
        for spec in bundle.schema.categorical:
            assert set(frame[spec.name]) <= set(spec.categories)

    def test_vae_persistence_roundtrip(self, adult_small, tmp_path):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=4), seed=0)
        explainer.fit(x_train, y_train)
        x_probe = bundle.encoded[bundle.test_idx[:10]]
        before = explainer.explain(x_probe).x_cf

        path = tmp_path / "cfvae.npz"
        save_state(path, explainer.generator.vae)

        fresh = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=4),
            blackbox=explainer.blackbox, seed=0)
        # rebuild the generator without training, then load the weights
        fresh.fit(x_train, y_train)
        load_state(path, fresh.generator.vae)
        after = fresh.explain(x_probe).x_cf
        np.testing.assert_allclose(before, after)

    def test_blackbox_persistence_roundtrip(self, adult_small, tmp_path):
        from repro.models import BlackBoxClassifier, train_classifier
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        blackbox = BlackBoxClassifier(bundle.encoder.n_encoded,
                                      np.random.default_rng(0))
        train_classifier(blackbox, x_train, y_train, epochs=5)
        path = tmp_path / "blackbox.npz"
        save_state(path, blackbox)
        other = BlackBoxClassifier(bundle.encoder.n_encoded,
                                   np.random.default_rng(99))
        load_state(path, other)
        np.testing.assert_allclose(
            blackbox.predict_logits(x_train[:50]),
            other.predict_logits(x_train[:50]))


class TestCrossDataset:
    @pytest.mark.parametrize("dataset", ["adult", "kdd_census", "law_school"])
    def test_pipeline_runs_on_every_benchmark(self, dataset):
        context = prepare_context(dataset, scale="smoke", seed=0)
        report = run_method(context, "ours_unary")
        assert report.n_instances == len(context.x_explain)
        assert np.isfinite(report.validity)
        assert np.isfinite(report.sparsity)


class TestManifoldIntegration:
    def test_latents_embed_and_score(self, adult_small):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=5), seed=0)
        explainer.fit(x_train, y_train)
        x = x_train[:150]
        desired = 1 - explainer.blackbox.predict(x)
        z = explainer.generator.vae.sample_latent(x, desired)
        embedding = TSNE(perplexity=15, n_iter=150, seed=0).fit_transform(z)
        labels = explainer.constraints.satisfied(
            x, explainer.generator.generate(x, desired)).astype(int)
        agreement = knn_label_agreement(embedding, labels)
        assert 0.0 <= agreement <= 1.0


class TestFailureInjection:
    def test_explainer_rejects_nan_input(self, adult_small):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=2), seed=0)
        explainer.fit(x_train, y_train)
        bad = bundle.encoded[:5].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            explainer.explain(bad)

    def test_fit_rejects_nan_training_data(self, adult_small):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        bad = x_train.copy()
        bad[0, 0] = np.inf
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=2), seed=0)
        with pytest.raises(ValueError):
            explainer.fit(bad, y_train)

    def test_fit_rejects_nonbinary_labels(self, adult_small):
        bundle = adult_small
        x_train, y_train = bundle.split("train")
        explainer = FeasibleCFExplainer(
            bundle.encoder, config=fast_config(epochs=2), seed=0)
        with pytest.raises(ValueError):
            explainer.fit(x_train, y_train + 5)

"""Engine runner hosting a causal model: repair placement, diagnostics,
score-only mode and the Table IV causal column."""

import numpy as np
import pytest

from repro.causal import CAUSAL_TOLERANCE, MinedCausalModel, ScmCausalModel
from repro.data import load_dataset
from repro.engine import CandidateBatch, CFStrategy, EngineRunner
from repro.models import BlackBoxClassifier, train_classifier


class _SweepStrategy(CFStrategy):
    """Deterministic strategy proposing a fixed noisy sweep."""

    name = "sweep-probe"

    def __init__(self, m=4, scale=0.1, seed=0):
        self.m = m
        self.scale = scale
        self.seed = seed

    def fit(self, x_train, y_train=None):
        return self

    def propose(self, x, desired=None):
        x = np.asarray(x, dtype=np.float64)
        if desired is None:
            desired = np.zeros(len(x), dtype=int)
        rng = np.random.default_rng(self.seed)
        candidates = np.clip(
            x[:, None, :] + rng.normal(0.0, self.scale, (len(x), self.m, x.shape[1])),
            0.0, 1.0)
        return CandidateBatch(x=x, desired=np.asarray(desired, dtype=int),
                              candidates=candidates)


@pytest.fixture(scope="module")
def context():
    bundle = load_dataset("adult", n_instances=900, seed=2)
    x_train, y_train = bundle.split("train")
    blackbox = BlackBoxClassifier(x_train.shape[1], np.random.default_rng(0))
    train_classifier(blackbox, x_train, y_train, epochs=3,
                     rng=np.random.default_rng(1))
    blackbox.eval()
    return bundle, blackbox


def test_selected_counterfactuals_are_causally_consistent(context):
    bundle, blackbox = context
    causal = ScmCausalModel(bundle.encoder)
    runner = EngineRunner(bundle.encoder, blackbox, causal=causal)
    x = bundle.encoded[:30]
    result = runner.run(_SweepStrategy(), x)
    np.testing.assert_allclose(
        causal.score(x, result.x_cf), np.zeros(len(x)), atol=CAUSAL_TOLERANCE)


def test_diagnostics_report_pre_repair_distance(context):
    bundle, blackbox = context
    causal = ScmCausalModel(bundle.encoder)
    runner = EngineRunner(bundle.encoder, blackbox, causal=causal)
    x = bundle.encoded[:30]
    _, diagnostics = runner.run(_SweepStrategy(), x, return_diagnostics=True)
    row_causal = diagnostics["row_causal"]
    assert row_causal.shape == (30,)
    assert (row_causal >= 0).all()
    assert row_causal.max() > 0  # noisy sweeps need some repair


def test_score_only_mode_keeps_candidates_raw(context):
    bundle, blackbox = context
    causal = ScmCausalModel(bundle.encoder)
    plain = EngineRunner(bundle.encoder, blackbox)
    scored = EngineRunner(bundle.encoder, blackbox, causal=causal,
                          causal_repair=False)
    x = bundle.encoded[:20]
    strategy = _SweepStrategy()
    result_plain = plain.run(strategy, x)
    result_scored, diagnostics = scored.run(strategy, x, return_diagnostics=True)
    # scoring without repair must not change the served counterfactuals
    np.testing.assert_array_equal(result_scored.x_cf, result_plain.x_cf)
    assert "row_causal" in diagnostics


def test_runner_without_causal_has_no_causal_diagnostics(context):
    bundle, blackbox = context
    runner = EngineRunner(bundle.encoder, blackbox)
    _, diagnostics = runner.run(
        _SweepStrategy(), bundle.encoded[:10], return_diagnostics=True)
    assert "row_causal" not in diagnostics


def test_evaluate_fills_the_causal_column(context):
    bundle, blackbox = context
    x_train, _ = bundle.split("train")
    causal = MinedCausalModel(
        bundle.encoder, relations=[("education", "age", 0.02)])
    runner = EngineRunner(bundle.encoder, blackbox, causal=causal)
    x = bundle.encoded[:25]
    report = runner.evaluate(_SweepStrategy(), x, x_train=x_train)
    assert report.causal_plausibility is not None
    assert 0.0 <= report.causal_plausibility <= 100.0
    plain = EngineRunner(bundle.encoder, blackbox)
    assert plain.evaluate(
        _SweepStrategy(), x, x_train=x_train).causal_plausibility is None


def test_repair_runs_on_single_candidate_batches(context):
    bundle, blackbox = context
    causal = ScmCausalModel(bundle.encoder)
    runner = EngineRunner(bundle.encoder, blackbox, causal=causal)
    x = bundle.encoded[:15]
    result, diagnostics = runner.run(
        _SweepStrategy(m=1), x, return_diagnostics=True)
    assert diagnostics["row_causal"].shape == (15,)
    np.testing.assert_allclose(
        causal.score(x, result.x_cf), np.zeros(len(x)), atol=CAUSAL_TOLERANCE)

"""Backend registry, per-scenario assignment and run_scenario dispatch."""

import pytest

from repro.engine import (
    DEFAULT_BACKEND,
    NumpyBackend,
    PlanBackend,
    TiledFloat32Backend,
    assign_backend,
    backend_for,
    backend_names,
    get_backend,
    register_backend,
    run_scenario,
)
from repro.engine import backends as backends_module
from repro.experiments.runconfig import ExperimentScale

SCALE = ExperimentScale("tiny", 900, 12, 4)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert "numpy" in names
        assert "float32" in names
        assert DEFAULT_BACKEND == "numpy"

    def test_get_resolves_names_and_passes_instances(self):
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("float32"), TiledFloat32Backend)
        instance = TiledFloat32Backend(tile_rows=5)
        assert get_backend(instance) is instance

    def test_get_produces_fresh_instances(self):
        # factories are called per resolution: backends may hold
        # per-plan state, so plans must never share one
        assert get_backend("numpy") is not get_backend("numpy")

    def test_unknown_backend_lists_known(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("tpu")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_custom_and_overwrite(self):
        class _Probe(PlanBackend):
            name = "probe"

        try:
            register_backend("probe", _Probe)
            assert isinstance(get_backend("probe"), _Probe)
            register_backend("probe", _Probe, overwrite=True)
        finally:
            backends_module._BACKENDS.pop("probe", None)

    def test_describe_feeds_the_plan_fingerprint(self):
        assert get_backend("numpy").describe() == {
            "backend": "numpy", "parity": "bitwise"}
        info = TiledFloat32Backend(tile_rows=9).describe()
        assert info["backend"] == "float32"
        assert info["parity"] == "hard"
        assert info["tile_rows"] == 9


class TestScenarioAssignment:
    def test_default_is_numpy(self):
        assert backend_for("adult/cem") == DEFAULT_BACKEND

    def test_assign_and_clear(self):
        try:
            assign_backend("adult/cem", "float32")
            assert backend_for("adult/cem") == "float32"
        finally:
            assign_backend("adult/cem", None)
        assert backend_for("adult/cem") == DEFAULT_BACKEND

    def test_assign_validates_eagerly(self):
        with pytest.raises(KeyError, match="unknown backend"):
            assign_backend("adult/cem", "tpu")
        assert backend_for("adult/cem") == DEFAULT_BACKEND


class TestRunScenarioDispatch:
    @pytest.fixture(scope="class")
    def context(self):
        from repro.experiments.harness import prepare_context

        return prepare_context("adult", scale=SCALE, seed=0)

    def test_plan_engine_reproduces_staged_report(self, context):
        staged = run_scenario("adult/cem", context=context, engine="staged")
        compiled = run_scenario("adult/cem", context=context, engine="plan")
        assert compiled.report == staged.report

    def test_assigned_backend_switches_the_default_engine(self, context):
        # an assignment flips engine=None resolution to the plan path;
        # the report must still match the staged grid entry
        staged = run_scenario("adult/face", context=context)
        try:
            assign_backend("adult/face", "float32")
            assigned = run_scenario("adult/face", context=context)
        finally:
            assign_backend("adult/face", None)
        assert assigned.report.method == staged.report.method
        assert assigned.report.validity == staged.report.validity

    def test_rejects_unknown_engine(self, context):
        with pytest.raises(ValueError, match="engine"):
            run_scenario("adult/cem", context=context, engine="warp")

"""Property-style parity: compiled feasibility kernel vs the loop evaluator.

The compiled kernel must reproduce the per-constraint loop
(``ConstraintSet.satisfied_matrix`` / ``satisfied``) bit for bit — on
every registry dataset, across noise scales, under tiling, at exact
tolerance boundaries and on degenerate batches.  Built on the shared
``tests.helpers.parity`` harness.
"""

import numpy as np
import pytest

from repro.constraints import ConstraintSet, ImmutablesRespected, build_constraints
from repro.constraints.base import Constraint
from repro.data import load_dataset
from tests.helpers.parity import (
    assert_bit_identical,
    perturbed,
    registry_bundle_fixture,
)

bundle = registry_bundle_fixture(n_instances=900, seed=1)


def union_set(encoder):
    """Catalog union (binary kind includes unary) plus the immutables audit."""
    members = list(build_constraints(encoder, "binary"))
    members.append(ImmutablesRespected(encoder))
    return ConstraintSet(members)


def assert_parity(constraints, kernel, x, x_cf, m=1):
    inputs = x if m == 1 else np.repeat(x, m, axis=0)
    assert_bit_identical(
        kernel.satisfied_matrix(x, x_cf),
        constraints.satisfied_matrix(inputs, x_cf),
        context="satisfied_matrix")
    assert_bit_identical(
        kernel.satisfied(x, x_cf), constraints.satisfied(inputs, x_cf),
        context="satisfied")
    report = kernel.evaluate(x, x_cf)
    assert report.rate == constraints.satisfaction_rate(inputs, x_cf)
    assert_bit_identical(
        report.per_constraint_rates,
        {c.name: c.satisfaction_rate(inputs, x_cf) for c in constraints},
        context="per_constraint_rates")


class TestDatasetParity:
    def test_flat_across_noise_scales(self, bundle):
        constraints = union_set(bundle.encoder)
        kernel = constraints.compile()
        x = bundle.encoded[:80]
        for trial, scale in enumerate((0.0, 1e-7, 1e-3, 0.05, 0.5)):
            rng = np.random.default_rng(100 + trial)
            assert_parity(constraints, kernel, x, perturbed(x, rng, scale))

    def test_tiled_sweeps(self, bundle):
        constraints = union_set(bundle.encoder)
        kernel = constraints.compile()
        x = bundle.encoded[:24]
        for m in (1, 2, 5, 16):
            rng = np.random.default_rng(m)
            assert_parity(constraints, kernel, x, perturbed(x, rng, 0.05, m=m), m=m)

    def test_per_kind_subsets(self, bundle):
        encoder = bundle.encoder
        constraints = union_set(encoder)
        kernel = constraints.compile()
        x = bundle.encoded[:60]
        x_cf = perturbed(x, np.random.default_rng(7), 0.05)
        report = kernel.evaluate(x, x_cf)
        for kind in ("unary", "binary"):
            members = build_constraints(encoder, kind)
            indices = [kernel.index_of(c.name) for c in members]
            assert report.subset_rate(indices) == \
                members.satisfaction_rate(x, x_cf)
            np.testing.assert_array_equal(
                report.subset_satisfied(indices), members.satisfied(x, x_cf))

    def test_exact_tolerance_boundaries(self, bundle):
        """x_cf == x and exact +/- tolerance offsets on constrained columns."""
        constraints = union_set(bundle.encoder)
        kernel = constraints.compile()
        x = bundle.encoded[:40]
        assert_parity(constraints, kernel, x, x.copy())
        for offset in (1e-6, -1e-6, 2e-6, -2e-6):
            x_cf = x + offset
            assert_parity(constraints, kernel, x, x_cf)

    def test_unary_kind_alone(self, bundle):
        constraints = build_constraints(bundle.encoder, "unary")
        kernel = constraints.compile()
        x = bundle.encoded[:50]
        x_cf = perturbed(x, np.random.default_rng(3), 0.1)
        assert_parity(constraints, kernel, x, x_cf)


class _ParityProbe(Constraint):
    """Unlowered constraint type: exercises the opaque fallback."""

    name = "probe[sum non-decreasing]"

    def satisfied(self, x, x_cf):
        return np.asarray(x_cf).sum(axis=1) >= np.asarray(x).sum(axis=1) - 1e-9

    def penalty(self, x, x_cf):  # pragma: no cover - not used here
        raise NotImplementedError


class TestFallbackAndDegenerate:
    @pytest.fixture(scope="class")
    def adult(self):
        return load_dataset("adult", n_instances=600, seed=0)

    def test_opaque_constraint_fallback(self, adult):
        members = list(build_constraints(adult.encoder, "binary"))
        members.append(_ParityProbe())
        constraints = ConstraintSet(members)
        kernel = constraints.compile()
        x = adult.encoded[:30]
        for m in (1, 4):
            x_cf = perturbed(x, np.random.default_rng(5), 0.05, m=m)
            assert_parity(constraints, kernel, x, x_cf, m=m)

    def test_empty_constraint_set(self, adult):
        kernel = ConstraintSet(()).compile()
        x = adult.encoded[:10]
        assert kernel.satisfied_matrix(x, x).shape == (10, 0)
        assert kernel.satisfied(x, x).all()
        assert kernel.satisfaction_rate(x, x) == 1.0
        assert kernel.evaluate(x, x).rate == 1.0

    def test_zero_rows(self, adult):
        constraints = union_set(adult.encoder)
        kernel = constraints.compile()
        empty = adult.encoded[:0]
        assert kernel.satisfied(empty, empty).shape == (0,)
        report = kernel.evaluate(empty, empty)
        assert report.rate == 1.0
        assert all(rate == 1.0 for rate in report.per_constraint_rates.values())
        assert constraints.satisfaction_rate(empty, empty) == 1.0

    def test_single_row(self, adult):
        constraints = union_set(adult.encoder)
        kernel = constraints.compile()
        x = adult.encoded[:1]
        x_cf = perturbed(x, np.random.default_rng(11), 0.05, m=3)
        assert_parity(constraints, kernel, x, x_cf, m=3)

    def test_non_multiple_rows_rejected(self, adult):
        kernel = union_set(adult.encoder).compile()
        with pytest.raises(ValueError, match="multiple"):
            kernel.satisfied(adult.encoded[:4], adult.encoded[:10])

    def test_index_of(self, adult):
        kernel = union_set(adult.encoder).compile()
        for i, name in enumerate(kernel.names):
            assert kernel.index_of(name) == i

"""Scenario registry: completeness, validation and an end-to-end run."""

import numpy as np
import pytest

from repro.data import dataset_names
from repro.engine import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.engine.scenarios import report_kinds_for
from repro.engine.strategy import STRATEGY_NAMES
from repro.experiments.runconfig import ExperimentScale


class TestRegistry:
    def test_builtin_grid_is_complete(self):
        from repro.causal import CAUSAL_NAMES
        from repro.engine.scenarios import density_variants_for

        names = scenario_names()
        n_robust_variants = 2  # +robust and +robust-knn
        per_dataset = sum(
            1 + len(density_variants_for(strategy)) + len(CAUSAL_NAMES)
            + n_robust_variants
            + (1 if strategy.startswith("ours_") else 0)  # +inloss
            for strategy in STRATEGY_NAMES)
        assert len(names) == len(dataset_names()) * per_dataset
        for dataset in dataset_names():
            for strategy in STRATEGY_NAMES:
                assert f"{dataset}/{strategy}" in names
                for density in density_variants_for(strategy):
                    assert f"{dataset}/{strategy}+{density}" in names
                for causal in CAUSAL_NAMES:
                    assert f"{dataset}/{strategy}+{causal}" in names
                assert f"{dataset}/{strategy}+robust" in names
                assert f"{dataset}/{strategy}+robust-knn" in names
                if strategy.startswith("ours_"):
                    assert f"{dataset}/{strategy}+inloss" in names

    def test_grid_holds_the_causal_acceptance_floor(self):
        # the issue's acceptance bar: >= 140 entries with +scm variants
        # for every dataset x strategy
        names = scenario_names()
        assert len(names) >= 140
        for dataset in dataset_names():
            for strategy in STRATEGY_NAMES:
                assert f"{dataset}/{strategy}+scm" in names

    def test_grid_holds_the_robust_acceptance_floor(self):
        # the robustness issue's acceptance bar: ~190 entries with
        # ensemble-hosting +robust variants for every dataset x strategy
        from repro.engine import DEFAULT_ENSEMBLE_SIZE

        names = scenario_names()
        assert len(names) >= 190
        for dataset in dataset_names():
            for strategy in STRATEGY_NAMES:
                scenario = get_scenario(f"{dataset}/{strategy}+robust")
                assert scenario.ensemble == DEFAULT_ENSEMBLE_SIZE
                assert get_scenario(
                    f"{dataset}/{strategy}+robust-knn").density == "knn"

    def test_filters(self):
        adult = list(iter_scenarios(
            dataset="adult", density=None, causal=None, ensemble=0,
            inloss=False))
        assert len(adult) == len(STRATEGY_NAMES)
        inloss = list(iter_scenarios(dataset="adult", inloss=True))
        assert {s.strategy for s in inloss} == {"ours_unary", "ours_binary"}
        assert all(s.inloss for s in inloss)
        face = list(iter_scenarios(
            strategy="face", density=None, causal=None, ensemble=0))
        assert {s.dataset for s in face} == set(dataset_names())
        knn = list(iter_scenarios(dataset="adult", density="knn", ensemble=0))
        assert len(knn) == len(STRATEGY_NAMES)
        assert all(s.density == "knn" for s in knn)
        scm = list(iter_scenarios(dataset="adult", causal="scm"))
        assert len(scm) == len(STRATEGY_NAMES)
        assert all(s.causal == "scm" for s in scm)
        from repro.engine import DEFAULT_ENSEMBLE_SIZE

        robust = list(iter_scenarios(
            dataset="adult", ensemble=DEFAULT_ENSEMBLE_SIZE))
        assert len(robust) == 2 * len(STRATEGY_NAMES)
        assert all(s.ensemble == DEFAULT_ENSEMBLE_SIZE for s in robust)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("adult/gandalf")

    def test_binary_methods_use_binary_kind(self):
        assert get_scenario("adult/ours_binary").constraint_kind == "binary"
        assert get_scenario("adult/ours_unary").constraint_kind == "unary"

    def test_register_validates_names(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            register_scenario(Scenario("x", "mordor", "cem"))
        with pytest.raises(KeyError, match="unknown strategy"):
            register_scenario(Scenario("x", "adult", "gandalf"))
        with pytest.raises(ValueError, match="desired policy"):
            register_scenario(Scenario("x", "adult", "cem", desired="maybe"))
        with pytest.raises(KeyError, match="already registered"):
            register_scenario(Scenario("adult/cem", "adult", "cem"))

    def test_register_rejects_inloss_on_noncore_strategy(self):
        # only the core (ours_*) strategies train a CF-VAE objective the
        # six-part in-loss terms could fold into
        with pytest.raises(ValueError, match="in-loss"):
            register_scenario(
                Scenario("x/cem+inloss", "adult", "cem", inloss=True))

    def test_register_custom_and_overwrite(self):
        scenario = Scenario(
            "test/custom-cem", "adult", "cem",
            strategy_params=(("steps", 10),))
        try:
            register_scenario(scenario)
            assert get_scenario("test/custom-cem").params() == {"steps": 10}
            register_scenario(scenario, overwrite=True)
        finally:
            from repro.engine import scenarios as module
            module._SCENARIOS.pop("test/custom-cem", None)

    def test_report_kinds(self):
        assert report_kinds_for("ours_unary") == ("unary",)
        assert report_kinds_for("mahajan_binary") == ("binary",)
        assert report_kinds_for("face") == ("unary", "binary")


class TestRunScenario:
    def test_end_to_end_tiny(self):
        scale = ExperimentScale("tiny", 900, 12, 4)
        result = run_scenario("adult/cem", scale=scale, seed=0)
        report = result.report
        assert report.method == "cem"
        assert report.n_instances == result.n_explained
        assert report.feasibility_unary is not None
        assert report.feasibility_binary is not None
        assert 0.0 <= report.validity <= 100.0
        assert result.blackbox_accuracy > 0.5

    def test_context_reuse_matches_fresh_run(self):
        from repro.experiments.harness import prepare_context

        scale = ExperimentScale("tiny", 900, 12, 4)
        context = prepare_context("adult", scale=scale, seed=0)
        reused = run_scenario("adult/cem", context=context)
        fresh = run_scenario("adult/cem", scale=scale, seed=0)
        assert reused.report == fresh.report

    def test_flip_policy(self):
        scale = ExperimentScale("tiny", 900, 12, 4)
        from repro.engine import scenarios as module

        scenario = Scenario("test/flip-cem", "adult", "cem", desired="flip",
                            strategy_params=(("steps", 15),))
        try:
            register_scenario(scenario)
            result = run_scenario("test/flip-cem", scale=scale, seed=0)
            assert result.report.method == "cem"
        finally:
            module._SCENARIOS.pop("test/flip-cem", None)

    def test_accepts_scenario_object(self):
        scale = ExperimentScale("tiny", 900, 12, 4)
        scenario = get_scenario("adult/dice_random")
        result = run_scenario(
            Scenario("inline", scenario.dataset, scenario.strategy,
                     strategy_params=(("max_attempts", 5),)),
            scale=scale, seed=0)
        assert result.report.method == "dice_random"
        assert np.isfinite(result.report.sparsity)


class TestDensityBackend:
    def test_default_is_exact(self):
        assert get_scenario("adult/face+knn").density_backend == "exact"

    def test_unknown_backend_rejected_at_registration(self):
        bad = Scenario("test/bad-backend", "adult", "cem",
                       density="knn", density_backend="faiss")
        with pytest.raises(ValueError, match="unknown density backend"):
            register_scenario(bad)

    def test_ann_scenario_runs_and_fits_ann_estimator(self):
        from repro.engine import scenarios as module
        from repro.engine.scenarios import _fit_scenario_density
        from repro.experiments.harness import prepare_context

        scale = ExperimentScale("tiny", 900, 12, 4)
        scenario = Scenario("test/ann-density", "adult", "dice_random",
                            density="knn", density_backend="ann",
                            strategy_params=(("max_attempts", 5),))
        try:
            register_scenario(scenario)
            context = prepare_context("adult", scale=scale, seed=0)
            model = _fit_scenario_density(
                scenario, context, scenario.strategy)
            assert model.backend == "ann"
            result = run_scenario("test/ann-density", context=context)
            assert result.report.mean_knn_distance is not None
        finally:
            module._SCENARIOS.pop("test/ann-density", None)

"""Compiled ExplainPlan parity: the fused replay vs the staged runner.

The acceptance bar for the compiled-plan refactor: replaying the traced
chain through ``EngineRunner.compile`` must produce exactly what the
staged ``EngineRunner.run`` path produces — same counterfactuals, same
flags, same diagnostics — for every strategy on every registry dataset,
with and without hosted density/causal/ensemble models.  The default
``"numpy"`` backend is pinned bit-identical; the tiled ``"float32"``
backend is pinned on hard outputs (predictions, validity, feasibility,
the chosen candidates).  Built on the shared ``tests.helpers.parity``
harness.
"""

import numpy as np
import pytest

from repro.core import fast_config
from repro.engine import CandidateBatch, EngineRunner, build_strategy
from repro.engine.plan import ExplainPlan
from repro.experiments.harness import prepare_context
from repro.experiments.runconfig import ExperimentScale
from repro.utils.validation import SchemaMismatchError
from tests.helpers.parity import DATASETS, assert_bit_identical, candidate_sweep

SCALE = ExperimentScale("tiny", 900, 10, 4)

#: Baseline strategies with the bench-scale fitting knobs the staged
#: parity suite (test_runner_strategies) established.
BASELINES = (
    ("cem", {"steps": 25}),
    ("dice_random", {"max_attempts": 10}),
    ("face", {}),
    ("revise", {"vae_epochs": 3, "steps": 20}),
    ("cchvae", {"vae_epochs": 3, "n_candidates": 25, "max_radius": 1.0}),
)


@pytest.fixture(scope="module", params=DATASETS)
def context(request):
    return prepare_context(request.param, scale=SCALE, seed=0)


@pytest.fixture(scope="module")
def hosted(context):
    """(density, causal, ensemble) models fitted on the context's train split."""
    from repro.causal import fit_causal
    from repro.density import KnnDensity
    from repro.models import train_ensemble

    desired_class = int(context.bundle.schema.desired_class)
    density = KnnDensity(k_neighbors=6).fit(
        context.x_train[context.y_train == desired_class])
    causal = fit_causal("scm", context.bundle.encoder, context.x_train)
    ensemble = train_ensemble(
        context.x_train, context.y_train, n_members=3, epochs=2,
        include=context.blackbox)
    return density, causal, ensemble


def built(context, method, params, seed=0):
    """A freshly fitted strategy twin (RNG state is consumed per run)."""
    strategy = build_strategy(
        method, context.bundle.encoder, context.blackbox,
        dataset=context.dataset, seed=seed, **params)
    return strategy.fit(context.x_train, context.y_train)


def unpack(pair):
    """Flatten (result, diagnostics) into one dict of comparable leaves."""
    result, diagnostics = pair
    extras = dict(diagnostics)
    report = extras.pop("report")
    return {
        "x_cf": result.x_cf,
        "predicted": result.predicted,
        "valid": result.valid,
        "feasible": result.feasible,
        "desired": result.desired,
        "mask": report.mask_t,
        "names": list(report.names),
        **extras,
    }


class _SweepStrategy:
    """Deterministic fixed multi-candidate sweep, looked up by row bytes.

    Proposal consumes no RNG, so the *same* instance can feed both the
    staged and the compiled path — which isolates the parity check to
    the chain the plan fuses (projection, repair, validity, feasibility,
    density/robust scoring, selection) across a genuine ``m > 1``
    selection workload.
    """

    name = "test_sweep"

    def __init__(self, x, m, seed):
        sweep = candidate_sweep(x, np.random.default_rng(seed), 0.08, m)
        self._sweeps = dict(zip((row.tobytes() for row in x), sweep))

    def fit(self, x_train, y_train=None):
        return self

    def propose(self, x, desired=None):
        candidates = np.stack([self._sweeps[row.tobytes()] for row in x])
        return CandidateBatch(x, np.asarray(desired, dtype=int), candidates)

    def describe(self):
        return {"class": type(self).__name__, "rows": len(self._sweeps)}

    def fingerprint(self):
        return "test-sweep"


class TestNumpyBackendBitParity:
    @pytest.mark.parametrize(
        "method,params", BASELINES, ids=[m for m, _ in BASELINES])
    def test_baseline_matches_staged(self, context, method, params):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        staged = runner.run(
            built(context, method, params), context.x_explain,
            context.desired, return_diagnostics=True)
        plan = runner.compile(built(context, method, params))
        compiled = plan.execute(
            context.x_explain, context.desired, return_diagnostics=True)
        assert_bit_identical(
            unpack(compiled), unpack(staged),
            context=f"plan vs staged ({method})")

    def test_mahajan_matches_staged(self, context):
        params = {"config": fast_config(epochs=2), "min_epochs": 2}
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        staged = runner.run(
            built(context, "mahajan_unary", params), context.x_explain,
            context.desired, return_diagnostics=True)
        plan = runner.compile(built(context, "mahajan_unary", params))
        compiled = plan.execute(
            context.x_explain, context.desired, return_diagnostics=True)
        assert_bit_identical(
            unpack(compiled), unpack(staged),
            context="plan vs staged (mahajan_unary)")

    def test_full_hosted_sweep_matches_staged(self, context, hosted):
        density, causal, ensemble = hosted
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density,
            causal=causal, ensemble=ensemble)
        strategy = _SweepStrategy(context.x_explain, m=12, seed=7)
        staged = runner.run(
            strategy, context.x_explain, context.desired,
            return_diagnostics=True)
        compiled = runner.compile(strategy).execute(
            context.x_explain, context.desired, return_diagnostics=True)
        assert_bit_identical(
            unpack(compiled), unpack(staged),
            context="plan vs staged (density+causal+ensemble sweep)")

    def test_density_only_sweep_matches_staged(self, context, hosted):
        density, _, _ = hosted
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density,
            density_weight=2.0)
        strategy = _SweepStrategy(context.x_explain, m=8, seed=11)
        staged = runner.run(
            strategy, context.x_explain, context.desired,
            return_diagnostics=True)
        compiled = runner.compile(strategy).execute(
            context.x_explain, context.desired, return_diagnostics=True)
        assert_bit_identical(
            unpack(compiled), unpack(staged),
            context="plan vs staged (density sweep)")

    def test_causal_repair_single_candidate_matches_staged(
            self, context, hosted):
        _, causal, _ = hosted
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, causal=causal)
        staged = runner.run(
            built(context, "dice_random", {"max_attempts": 10}),
            context.x_explain, context.desired, return_diagnostics=True)
        plan = runner.compile(
            built(context, "dice_random", {"max_attempts": 10}))
        compiled = plan.execute(
            context.x_explain, context.desired, return_diagnostics=True)
        assert_bit_identical(
            unpack(compiled), unpack(staged),
            context="plan vs staged (causal repair, m=1)")

    def test_result_without_diagnostics_matches_staged(self, context):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        strategy = _SweepStrategy(context.x_explain, m=5, seed=3)
        staged = runner.run(strategy, context.x_explain, context.desired)
        compiled = runner.run(
            strategy, context.x_explain, context.desired,
            plan=runner.compile(strategy))
        assert_bit_identical(
            {"x_cf": compiled.x_cf, "predicted": compiled.predicted,
             "valid": compiled.valid, "feasible": compiled.feasible},
            {"x_cf": staged.x_cf, "predicted": staged.predicted,
             "valid": staged.valid, "feasible": staged.feasible},
            context="run(plan=) vs staged")

    def test_evaluate_matches_staged_report(self, context):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        staged = runner.evaluate(
            built(context, "dice_random", {"max_attempts": 10}),
            context.x_explain, context.desired, x_train=context.x_train,
            stats=context.stats)
        plan = runner.compile(
            built(context, "dice_random", {"max_attempts": 10}))
        compiled = plan.evaluate(
            context.x_explain, context.desired, x_train=context.x_train,
            stats=context.stats)
        assert compiled.as_row() == staged.as_row()


class TestTiledFloat32HardParity:
    def test_hard_outputs_match_staged(self, context, hosted):
        density, causal, _ = hosted
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density,
            causal=causal)
        strategy = _SweepStrategy(context.x_explain, m=9, seed=5)
        staged = runner.run(strategy, context.x_explain, context.desired)
        # tile_rows=7 exercises a ragged final tile on every dataset
        from repro.engine import TiledFloat32Backend

        plan = runner.compile(
            strategy, backend=TiledFloat32Backend(tile_rows=7))
        tiled = plan.execute(context.x_explain, context.desired)
        np.testing.assert_array_equal(tiled.predicted, staged.predicted)
        np.testing.assert_array_equal(tiled.valid, staged.valid)
        np.testing.assert_array_equal(tiled.feasible, staged.feasible)
        np.testing.assert_array_equal(tiled.x_cf, staged.x_cf)

    def test_tiles_cover_rows_exactly_once(self):
        from repro.engine import TiledFloat32Backend

        backend = TiledFloat32Backend(tile_rows=7)
        tiles = backend.tiles(23, 4, 10)
        covered = np.concatenate([np.arange(23)[t] for t in tiles])
        np.testing.assert_array_equal(covered, np.arange(23))

    def test_rejects_nonpositive_tile_rows(self):
        from repro.engine import TiledFloat32Backend

        with pytest.raises(ValueError, match="tile_rows"):
            TiledFloat32Backend(tile_rows=0)


class TestPlanIdentity:
    def test_fingerprint_is_deterministic_and_backend_sensitive(
            self, context, hosted):
        density, _, _ = hosted
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        strategy = _SweepStrategy(context.x_explain, m=4, seed=1)
        assert (runner.compile(strategy).fingerprint()
                == runner.compile(strategy).fingerprint())
        assert (runner.compile(strategy).fingerprint()
                != runner.compile(strategy, backend="float32").fingerprint())
        dense = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density)
        assert (runner.compile(strategy).fingerprint()
                != dense.compile(strategy).fingerprint())

    def test_trace_records_hosted_stages(self, context, hosted):
        density, causal, ensemble = hosted
        strategy = _SweepStrategy(context.x_explain, m=4, seed=1)
        plain = EngineRunner(context.bundle.encoder, context.blackbox)
        full = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density,
            causal=causal, ensemble=ensemble)
        plain_stages = [s.name for s in plain.compile(strategy).stages]
        full_stages = [s.name for s in full.compile(strategy).stages]
        assert plain_stages == [
            "propose", "project", "predict", "feasibility", "select"]
        assert full_stages == [
            "propose", "project", "causal", "predict", "feasibility",
            "density", "robust", "select"]
        assert "->" in repr(full.compile(strategy))

    def test_run_rejects_foreign_plan(self, context):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        other = EngineRunner(context.bundle.encoder, context.blackbox)
        strategy = _SweepStrategy(context.x_explain, m=2, seed=1)
        plan = runner.compile(strategy)
        with pytest.raises(ValueError, match="different runner"):
            other.run(strategy, context.x_explain, context.desired, plan=plan)
        with pytest.raises(ValueError, match="different strategy"):
            runner.run(
                _SweepStrategy(context.x_explain, m=2, seed=1),
                context.x_explain, context.desired, plan=plan)

    def test_compile_accepts_backend_instance(self, context):
        from repro.engine import NumpyBackend

        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        strategy = _SweepStrategy(context.x_explain, m=2, seed=1)
        backend = NumpyBackend()
        plan = ExplainPlan(runner, strategy, backend=backend)
        assert plan.backend is backend


class TestPlanInputFuzz:
    def test_execute_rejects_malformed_rows(self, context):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        strategy = _SweepStrategy(context.x_explain, m=3, seed=2)
        plan = runner.compile(strategy)
        width = context.bundle.encoder.n_encoded
        rng = np.random.default_rng(20260807)
        bad_nan = context.x_explain.copy()
        bad_nan[0, 0] = np.nan
        bad_inf = context.x_explain.copy()
        bad_inf[-1, -1] = np.inf
        for rows in (
            rng.random((4, width - 1)),
            rng.random((4, width + 3)),
            bad_nan,
            bad_inf,
        ):
            with pytest.raises(SchemaMismatchError):
                plan.execute(rows, context.desired[: len(rows)])

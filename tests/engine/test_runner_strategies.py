"""Engine runner + strategy API parity against the pre-engine paths.

The acceptance bar for the refactor: every method routed through the
shared :class:`EngineRunner` must produce exactly what its legacy
entry point produced — same counterfactuals, same flags, same Table IV
numbers.
"""

import numpy as np
import pytest

from repro.core import FeasibleCFExplainer, fast_config
from repro.data import load_dataset
from repro.engine import EngineRunner, build_strategy
from repro.engine.runner import _select_candidates
from repro.metrics import evaluate_counterfactuals
from repro.serve.service import _pick_candidate


@pytest.fixture(scope="module")
def setup():
    bundle = load_dataset("adult", n_instances=1500, seed=2)
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=fast_config(epochs=3), seed=2)
    explainer.fit(x_train, y_train, blackbox_epochs=10)
    x_test, _ = bundle.split("test")
    negatives = x_test[explainer.blackbox.predict(x_test) == 0][:20]
    return bundle, explainer, x_train, y_train, negatives


class TestCoreParity:
    def test_explain_matches_legacy_path(self, setup):
        bundle, explainer, _, _, negatives = setup
        result = explainer.explain(negatives)
        # the pre-engine explain: generate + predict + loop feasibility
        desired = 1 - explainer.blackbox.predict(negatives)
        x_cf = explainer.generator.generate(negatives, desired)
        np.testing.assert_array_equal(result.x_cf, x_cf)
        np.testing.assert_array_equal(
            result.predicted, explainer.blackbox.predict(x_cf))
        np.testing.assert_array_equal(
            result.feasible, explainer.constraints.satisfied(negatives, x_cf))
        np.testing.assert_array_equal(result.desired, desired)

    def test_explicit_desired(self, setup):
        _, explainer, _, _, negatives = setup
        desired = np.ones(len(negatives), dtype=int)
        result = explainer.explain(negatives, desired)
        x_cf = explainer.generator.generate(negatives, desired)
        np.testing.assert_array_equal(result.x_cf, x_cf)

    def test_diverse_strategy_selects_from_candidates(self, setup):
        _, explainer, _, _, negatives = setup
        strategy = explainer.as_strategy(
            n_candidates=6, rng=np.random.default_rng(0))
        runner = explainer._engine_runner()
        result, diagnostics = runner.run(
            strategy, negatives, return_diagnostics=True)
        assert diagnostics["n_candidates"] == 6
        assert result.x_cf.shape == negatives.shape
        # every chosen row is one of that row's projected candidates
        batch = explainer.as_strategy(
            n_candidates=6, rng=np.random.default_rng(0)).propose(negatives)
        projected = runner.project(batch.x, batch.candidates)
        rows = np.arange(len(negatives))
        np.testing.assert_array_equal(
            result.x_cf, projected[rows, diagnostics["chosen"]])


class TestBaselineParity:
    @pytest.mark.parametrize("method,params", [
        ("cem", {"steps": 25}),
        ("dice_random", {"max_attempts": 10}),
        ("face", {}),
        ("revise", {"vae_epochs": 3, "steps": 20}),
        ("cchvae", {"vae_epochs": 3, "n_candidates": 25, "max_radius": 1.0}),
    ])
    def test_runner_matches_generate(self, setup, method, params):
        bundle, explainer, x_train, y_train, negatives = setup

        def built():  # two identical twins: rng state is consumed per run
            strategy = build_strategy(
                method, bundle.encoder, explainer.blackbox, seed=2, **params)
            return strategy.fit(x_train, y_train)

        runner = EngineRunner(bundle.encoder, explainer.blackbox)
        desired = np.ones(len(negatives), dtype=int)
        result = runner.run(built(), negatives, desired)
        # legacy path: _generate + 2-D projection (generate is the adapter)
        legacy_strategy = built()
        raw = np.asarray(
            legacy_strategy._generate(negatives, desired), dtype=np.float64)
        legacy = legacy_strategy.projector.project(negatives, raw)
        np.testing.assert_array_equal(result.x_cf, legacy)
        np.testing.assert_array_equal(
            result.valid,
            explainer.blackbox.predict(legacy) == desired)

    def test_mahajan_runs_through_engine(self, setup):
        bundle, explainer, x_train, y_train, negatives = setup
        strategy = build_strategy(
            "mahajan_unary", bundle.encoder, explainer.blackbox, seed=2,
            config=fast_config(epochs=2), min_epochs=2)
        strategy.fit(x_train, y_train)
        runner = EngineRunner(bundle.encoder, explainer.blackbox)
        result = runner.run(strategy, negatives)
        np.testing.assert_array_equal(result.x_cf, strategy.generate(negatives))


class TestTable4Parity:
    def test_kernel_metrics_match_loop_metrics(self, setup):
        bundle, explainer, x_train, y_train, negatives = setup
        strategy = build_strategy(
            "cem", bundle.encoder, explainer.blackbox, seed=2, steps=25)
        strategy.fit(x_train, y_train)
        desired = np.ones(len(negatives), dtype=int)
        x_cf = strategy.generate(negatives, desired)
        loop_report = evaluate_counterfactuals(
            "cem", negatives, x_cf, desired, explainer.blackbox,
            bundle.encoder, x_train=x_train)
        runner = EngineRunner(bundle.encoder, explainer.blackbox)
        engine_report = runner.evaluate(
            strategy, negatives, desired, x_train=x_train)
        assert engine_report == loop_report

    def test_single_kind_report(self, setup):
        bundle, explainer, x_train, _, negatives = setup
        runner = EngineRunner(bundle.encoder, explainer.blackbox)
        report = runner.evaluate(
            explainer.as_strategy(), negatives, x_train=x_train,
            report_kinds=("unary",))
        assert report.feasibility_unary is not None
        assert report.feasibility_binary is None
        assert report.method == "ours_unary"


class TestSelection:
    def test_matches_serving_pick_candidate(self):
        rng = np.random.default_rng(0)
        n, m, d = 12, 8, 5

        class _Set:
            pass

        x = rng.random((n, d))
        candidates = rng.random((n, m, d))
        valid = rng.random((n, m)) < 0.4
        feasible = rng.random((n, m)) < 0.5
        chosen = _select_candidates(x, candidates, valid, feasible)
        for i in range(n):
            cs = _Set()
            cs.x = x[i]
            cs.candidates = candidates[i]
            cs.valid = valid[i]
            cs.feasible = feasible[i]
            cs.usable_mask = valid[i] & feasible[i]
            assert chosen[i] == _pick_candidate(cs)

    def test_fallback_is_deterministic_candidate(self):
        x = np.zeros((3, 4))
        candidates = np.ones((3, 2, 4))
        none = np.zeros((3, 2), dtype=bool)
        np.testing.assert_array_equal(
            _select_candidates(x, candidates, none, none), np.zeros(3, dtype=int))


class TestStrategyAPI:
    def test_fingerprints_distinguish_strategies(self, setup):
        bundle, explainer, _, _, _ = setup
        a = build_strategy("cem", bundle.encoder, explainer.blackbox, seed=2)
        b = build_strategy("face", bundle.encoder, explainer.blackbox, seed=2)
        c = build_strategy("cem", bundle.encoder, explainer.blackbox, seed=3)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint() == build_strategy(
            "cem", bundle.encoder, explainer.blackbox, seed=2).fingerprint()

    def test_fingerprints_include_hyperparameters(self, setup):
        bundle, explainer, _, _, _ = setup
        a = build_strategy("dice_random", bundle.encoder, explainer.blackbox,
                           seed=2, max_attempts=10)
        b = build_strategy("dice_random", bundle.encoder, explainer.blackbox,
                           seed=2, max_attempts=200)
        assert a.fingerprint() != b.fingerprint()
        assert a.describe()["params"]["max_attempts"] == 10

    def test_evaluate_with_noncatalog_kernel_falls_back(self, setup):
        from repro.constraints import build_constraints

        bundle, explainer, x_train, y_train, negatives = setup
        unary_only = EngineRunner(
            bundle.encoder, explainer.blackbox,
            constraints=build_constraints(bundle.encoder, "unary"))
        strategy = build_strategy(
            "cem", bundle.encoder, explainer.blackbox, seed=2, steps=25)
        strategy.fit(x_train, y_train)
        report = unary_only.evaluate(strategy, negatives, x_train=x_train)
        full = EngineRunner(bundle.encoder, explainer.blackbox).evaluate(
            strategy, negatives, x_train=x_train)
        # the binary column is filled via the loop fallback, same value
        assert report.feasibility_binary == full.feasibility_binary
        assert report.feasibility_unary == full.feasibility_unary

    def test_unknown_strategy(self, setup):
        bundle, explainer, _, _, _ = setup
        with pytest.raises(KeyError, match="unknown method"):
            build_strategy("gandalf", bundle.encoder, explainer.blackbox)

    def test_candidate_batch_flat_layout(self, setup):
        _, explainer, _, _, negatives = setup
        batch = explainer.as_strategy(
            n_candidates=3, rng=np.random.default_rng(1)).propose(negatives)
        assert batch.n_candidates == 3
        assert batch.flat.shape == (len(negatives) * 3, negatives.shape[1])
        np.testing.assert_array_equal(
            batch.flat[:3], batch.candidates[0])

    def test_unfitted_baseline_refuses_propose(self, setup):
        bundle, explainer, _, _, negatives = setup
        strategy = build_strategy("face", bundle.encoder, explainer.blackbox)
        with pytest.raises(RuntimeError, match="not fitted"):
            strategy.propose(negatives)

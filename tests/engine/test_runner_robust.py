"""Engine runner hosting an ensemble: cross-model scoring, the robust
selection pool and the Table IV robustness columns."""

import numpy as np
import pytest

from repro.core import FeasibleCFExplainer, fast_config
from repro.data import load_dataset
from repro.engine import CandidateBatch, CFStrategy, EngineRunner, build_strategy
from repro.engine.runner import _select_candidates, _selection_pools
from repro.models import train_ensemble


class _SweepStrategy(CFStrategy):
    """Deterministic strategy proposing a fixed noisy sweep."""

    name = "sweep-probe"

    def __init__(self, m=4, scale=0.1, seed=0):
        self.m = m
        self.scale = scale
        self.seed = seed

    def fit(self, x_train, y_train=None):
        return self

    def propose(self, x, desired=None):
        x = np.asarray(x, dtype=np.float64)
        if desired is None:
            desired = np.zeros(len(x), dtype=int)
        rng = np.random.default_rng(self.seed)
        candidates = np.clip(
            x[:, None, :] + rng.normal(0.0, self.scale, (len(x), self.m, x.shape[1])),
            0.0, 1.0)
        return CandidateBatch(x=x, desired=np.asarray(desired, dtype=int),
                              candidates=candidates)


@pytest.fixture(scope="module")
def setup():
    bundle = load_dataset("adult", n_instances=1200, seed=3)
    x_train, y_train = bundle.split("train")
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=fast_config(epochs=2), seed=3)
    explainer.fit(x_train, y_train, blackbox_epochs=4)
    ensemble = train_ensemble(
        x_train, y_train, n_members=3, seed=3, epochs=4,
        include=explainer.blackbox)
    x_test, _ = bundle.split("test")
    negatives = x_test[explainer.blackbox.predict(x_test) == 0][:16]
    return bundle, explainer, ensemble, x_train, y_train, negatives


#: One cheap fitting recipe per Table IV strategy family.
STRATEGY_RECIPES = (
    ("mahajan_unary", {"min_epochs": 2}),
    ("revise", {"vae_epochs": 2, "steps": 10}),
    ("cchvae", {"vae_epochs": 2, "n_candidates": 10, "max_radius": 1.0}),
    ("cem", {"steps": 15}),
    ("dice_random", {"max_attempts": 10}),
    ("face", {}),
)


class TestCrossModelColumns:
    def test_core_strategy_fills_both_columns(self, setup):
        bundle, explainer, ensemble, x_train, _, negatives = setup
        runner = EngineRunner(
            bundle.encoder, explainer.blackbox, ensemble=ensemble)
        report = runner.evaluate(
            explainer.as_strategy(n_candidates=4,
                                  rng=np.random.default_rng(0)),
            negatives, x_train=x_train)
        assert report.cross_model_validity is not None
        assert 0.0 <= report.cross_model_validity <= 100.0
        assert report.robust_validity is not None
        assert 0.0 <= report.robust_validity <= 100.0

    @pytest.mark.parametrize("method,params", STRATEGY_RECIPES)
    def test_every_baseline_fills_both_columns(self, setup, method, params):
        bundle, explainer, ensemble, x_train, y_train, negatives = setup
        if "mahajan" in method:
            params = dict(params, config=fast_config(epochs=2))
        strategy = build_strategy(
            method, bundle.encoder, explainer.blackbox, seed=3, **params)
        strategy.fit(x_train, y_train)
        runner = EngineRunner(
            bundle.encoder, explainer.blackbox, ensemble=ensemble)
        report = runner.evaluate(strategy, negatives, x_train=x_train)
        assert report.cross_model_validity is not None
        assert 0.0 <= report.cross_model_validity <= 100.0
        assert report.robust_validity is not None

    def test_plain_runner_leaves_columns_none(self, setup):
        bundle, explainer, _, x_train, _, negatives = setup
        runner = EngineRunner(bundle.encoder, explainer.blackbox)
        report = runner.evaluate(_SweepStrategy(), negatives, x_train=x_train)
        assert report.cross_model_validity is None
        assert report.robust_validity is None


class TestRobustDiagnostics:
    def test_row_cross_validity_matches_direct_agreement(self, setup):
        bundle, explainer, ensemble, _, _, negatives = setup
        runner = EngineRunner(
            bundle.encoder, explainer.blackbox, ensemble=ensemble)
        result, diagnostics = runner.run(
            _SweepStrategy(), negatives, return_diagnostics=True)
        np.testing.assert_allclose(
            diagnostics["row_cross_validity"],
            ensemble.agreement(result.x_cf, result.desired))
        np.testing.assert_array_equal(
            diagnostics["row_robust"],
            diagnostics["row_cross_validity"] >= runner.robust_quorum)
        assert 0.0 <= diagnostics["candidate_robustness"] <= 1.0

    def test_runner_without_ensemble_has_no_robust_diagnostics(self, setup):
        bundle, explainer, _, _, _, negatives = setup
        runner = EngineRunner(bundle.encoder, explainer.blackbox)
        _, diagnostics = runner.run(
            _SweepStrategy(), negatives, return_diagnostics=True)
        assert "row_cross_validity" not in diagnostics
        assert "row_robust" not in diagnostics

    def test_single_candidate_batches_still_score(self, setup):
        bundle, explainer, ensemble, _, _, negatives = setup
        runner = EngineRunner(
            bundle.encoder, explainer.blackbox, ensemble=ensemble)
        _, diagnostics = runner.run(
            _SweepStrategy(m=1), negatives, return_diagnostics=True)
        assert diagnostics["row_cross_validity"].shape == (len(negatives),)

    def test_density_and_ensemble_compose(self, setup):
        from repro.density import KnnDensity

        bundle, explainer, ensemble, x_train, _, negatives = setup
        density = KnnDensity(k_neighbors=5).fit(x_train[:200])
        runner = EngineRunner(
            bundle.encoder, explainer.blackbox, density=density,
            ensemble=ensemble)
        _, diagnostics = runner.run(
            _SweepStrategy(), negatives, return_diagnostics=True)
        assert "row_density" in diagnostics
        assert "row_cross_validity" in diagnostics


class TestRobustSelection:
    def test_quorum_validation(self, setup):
        bundle, explainer, ensemble, _, _, _ = setup
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="robust_quorum"):
                EngineRunner(bundle.encoder, explainer.blackbox,
                             ensemble=ensemble, robust_quorum=bad)
        EngineRunner(bundle.encoder, explainer.blackbox,
                     ensemble=ensemble, robust_quorum=1.0)

    def test_pools_without_robust_are_the_historical_pair(self):
        valid = np.array([[True, False]])
        feasible = np.array([[True, True]])
        pools = _selection_pools(valid, feasible)
        assert len(pools) == 2
        np.testing.assert_array_equal(pools[0], valid & feasible)
        np.testing.assert_array_equal(pools[1], valid)

    def test_robust_pool_is_prepended(self):
        valid = np.array([[True, True]])
        feasible = np.array([[True, True]])
        robust = np.array([[False, True]])
        pools = _selection_pools(valid, feasible, robust)
        assert len(pools) == 3
        np.testing.assert_array_equal(pools[0], valid & feasible & robust)

    def test_robust_candidate_wins_over_closer_fragile_one(self):
        # candidate 0 is closer but not robust; candidate 1 clears the
        # quorum — the robust pool must override pure closeness
        x = np.zeros((1, 3))
        candidates = np.stack([
            np.array([[0.1, 0.0, 0.0], [0.5, 0.5, 0.5]])])
        valid = np.array([[True, True]])
        feasible = np.array([[True, True]])
        robust = np.array([[False, True]])
        chosen = _select_candidates(x, candidates, valid, feasible,
                                    robust=robust)
        assert chosen[0] == 1
        # without the robust signal the closer candidate wins
        assert _select_candidates(x, candidates, valid, feasible)[0] == 0

    def test_all_robust_matches_single_model_selection(self):
        rng = np.random.default_rng(5)
        n, m, d = 10, 6, 4
        x = rng.random((n, d))
        candidates = rng.random((n, m, d))
        valid = rng.random((n, m)) < 0.5
        feasible = rng.random((n, m)) < 0.6
        all_robust = np.ones((n, m), dtype=bool)
        np.testing.assert_array_equal(
            _select_candidates(x, candidates, valid, feasible,
                               robust=all_robust),
            _select_candidates(x, candidates, valid, feasible))

    def test_rows_without_robust_candidates_fall_back(self):
        rng = np.random.default_rng(6)
        n, m, d = 10, 6, 4
        x = rng.random((n, d))
        candidates = rng.random((n, m, d))
        valid = rng.random((n, m)) < 0.5
        feasible = rng.random((n, m)) < 0.6
        no_robust = np.zeros((n, m), dtype=bool)
        np.testing.assert_array_equal(
            _select_candidates(x, candidates, valid, feasible,
                               robust=no_robust),
            _select_candidates(x, candidates, valid, feasible))

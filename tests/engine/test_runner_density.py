"""Engine-level density tests: hosting, selection, metrics and scenarios."""

import numpy as np
import pytest

from repro.engine import EngineRunner, build_strategy, get_scenario, run_scenario
from repro.engine.scenarios import density_variants_for
from repro.experiments.harness import prepare_context
from repro.experiments.runconfig import ExperimentScale
from repro.density import GaussianKdeDensity, KnnDensity


SCALE = ExperimentScale("tiny", 900, 10, 4)


@pytest.fixture(scope="module")
def context():
    return prepare_context("adult", scale=SCALE, seed=0)


@pytest.fixture(scope="module")
def dice(context):
    strategy = build_strategy(
        "dice_random", context.bundle.encoder, context.blackbox,
        dataset="adult", seed=0, max_attempts=10)
    return strategy.fit(context.x_train, context.y_train)


@pytest.fixture(scope="module")
def density(context):
    desired_class = int(context.bundle.schema.desired_class)
    reference = context.x_train[context.y_train == desired_class]
    return KnnDensity(k_neighbors=6).fit(reference)


class TestRunnerHosting:
    def test_no_density_runs_the_historical_path(self, context, dice):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        result, diagnostics = runner.run(
            dice, context.x_explain, context.desired, return_diagnostics=True)
        assert "row_density" not in diagnostics
        assert result.x_cf.shape == context.x_explain.shape

    def test_hosted_density_scores_every_strategy(self, context, dice, density):
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density)
        result, diagnostics = runner.run(
            dice, context.x_explain, context.desired, return_diagnostics=True)
        row_density = diagnostics["row_density"]
        assert row_density.shape == (len(context.x_explain),)
        np.testing.assert_array_equal(row_density, density.score(result.x_cf))

    def test_m1_results_unchanged_by_density(self, context, dice, density):
        plain = EngineRunner(context.bundle.encoder, context.blackbox)
        dense = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density)
        # single-candidate strategies: density adds a column, never
        # changes the counterfactuals themselves
        seeded = build_strategy(
            "dice_random", context.bundle.encoder, context.blackbox,
            dataset="adult", seed=3, max_attempts=10)
        seeded.fit(context.x_train, context.y_train)
        a = plain.run(seeded, context.x_explain, context.desired)
        seeded_again = build_strategy(
            "dice_random", context.bundle.encoder, context.blackbox,
            dataset="adult", seed=3, max_attempts=10)
        seeded_again.fit(context.x_train, context.y_train)
        b = dense.run(seeded_again, context.x_explain, context.desired)
        np.testing.assert_array_equal(a.x_cf, b.x_cf)

    def test_evaluate_fills_density_column(self, context, dice, density):
        dense = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density)
        report = dense.evaluate(
            dice, context.x_explain, context.desired, stats=context.stats)
        assert report.mean_knn_distance is not None
        assert np.isfinite(report.mean_knn_distance)

        plain = EngineRunner(context.bundle.encoder, context.blackbox)
        report_plain = plain.evaluate(
            dice, context.x_explain, context.desired, stats=context.stats)
        assert report_plain.mean_knn_distance is None


class TestDensityAwareSelection:
    def _core_strategy(self, context, n_candidates):
        from repro.engine import CoreCFStrategy
        from repro.core import FeasibleCFExplainer, fast_config

        explainer = FeasibleCFExplainer(
            context.bundle.encoder, constraint_kind="unary",
            config=fast_config(epochs=2), blackbox=context.blackbox, seed=0)
        explainer.fit(context.x_train, context.y_train)
        return CoreCFStrategy(explainer, n_candidates=n_candidates)

    def test_sweeps_select_denser_candidates(self, context, density):
        strategy = self._core_strategy(context, n_candidates=8)
        plain = EngineRunner(context.bundle.encoder, context.blackbox)
        heavy = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density,
            density_weight=100.0)
        proximity_pick = plain.run(strategy, context.x_explain, context.desired)
        density_pick = heavy.run(strategy, context.x_explain, context.desired)
        # a crushing density weight can only improve (lower) mean density
        assert (density.score(density_pick.x_cf).mean()
                <= density.score(proximity_pick.x_cf).mean() + 1e-9)

    def test_sweep_diagnostics_reuse_selection_scores(self, context, density):
        strategy = self._core_strategy(context, n_candidates=6)
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, density=density)
        result, diagnostics = runner.run(
            strategy, context.x_explain, context.desired,
            return_diagnostics=True)
        np.testing.assert_array_equal(
            diagnostics["row_density"], density.score(result.x_cf))


class TestDensityScenarios:
    def test_scenario_runs_with_kde(self, context):
        result = run_scenario("adult/dice_random+kde", context=context)
        assert result.report.mean_knn_distance is not None

    def test_latent_variant_restricted_to_core(self):
        assert "latent" in density_variants_for("ours_unary")
        assert "latent" not in density_variants_for("face")
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("adult/face+latent")

    def test_latent_on_baseline_raises_clearly(self, context):
        import dataclasses

        scenario = dataclasses.replace(
            get_scenario("adult/dice_random"),
            name="test/dice+latent", density="latent")
        with pytest.raises(ValueError, match="latent density"):
            run_scenario(scenario, context=context)

    def test_shared_runner_is_not_mutated(self, context, dice, density):
        runner = EngineRunner(context.bundle.encoder, context.blackbox)
        run_scenario("adult/dice_random+knn", context=context, runner=runner)
        assert runner.density is None


class TestKdeRunner:
    def test_kde_hosting_works(self, context, dice):
        desired_class = int(context.bundle.schema.desired_class)
        reference = context.x_train[context.y_train == desired_class]
        kde = GaussianKdeDensity().fit(reference)
        runner = EngineRunner(
            context.bundle.encoder, context.blackbox, density=kde)
        report = runner.evaluate(
            dice, context.x_explain, context.desired, stats=context.stats)
        assert np.isfinite(report.mean_knn_distance)

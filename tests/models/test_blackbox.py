"""Tests for the two-linear-layer black-box classifier."""

import numpy as np
import pytest

from repro.models import BlackBoxClassifier, accuracy, train_classifier


def separable_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    y = (x[:, 0] + 0.5 * x[:, 1] - 0.3 * x[:, 2] > 0).astype(int)
    return x, y


def make_model(seed=0, n_features=6):
    return BlackBoxClassifier(n_features, np.random.default_rng(seed))


class TestArchitecture:
    def test_two_linear_layers(self):
        from repro.nn import Linear
        model = make_model()
        linears = [m for m in model.modules() if isinstance(m, Linear)]
        assert len(linears) == 2  # "two linear layers" per Section III-C

    def test_logit_shape(self):
        model = make_model()
        assert model.predict_logits(np.zeros((5, 6))).shape == (5,)

    def test_proba_in_unit_interval(self):
        model = make_model()
        probs = model.predict_proba(np.random.default_rng(1).normal(size=(10, 6)))
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_predict_binary(self):
        model = make_model()
        preds = model.predict(np.random.default_rng(1).normal(size=(10, 6)))
        assert set(np.unique(preds)) <= {0, 1}


class TestTraining:
    def test_loss_decreases(self):
        x, y = separable_data()
        model = make_model()
        history = train_classifier(model, x, y, epochs=10, rng=np.random.default_rng(0))
        assert history[-1] < history[0]

    def test_reaches_high_accuracy_on_separable(self):
        x, y = separable_data()
        model = make_model()
        train_classifier(model, x, y, epochs=40, rng=np.random.default_rng(0))
        assert accuracy(model, x, y) > 0.95

    def test_sgd_optimizer_path(self):
        x, y = separable_data(200)
        model = make_model()
        history = train_classifier(model, x, y, epochs=10, optimizer="sgd",
                                   lr=0.1, rng=np.random.default_rng(0))
        assert history[-1] < history[0]

    def test_unknown_optimizer_rejected(self):
        x, y = separable_data(50)
        with pytest.raises(ValueError):
            train_classifier(make_model(), x, y, optimizer="lbfgs")

    def test_rejects_row_mismatch(self):
        x, y = separable_data(50)
        with pytest.raises(ValueError):
            train_classifier(make_model(), x, y[:10])

    def test_rejects_nonbinary_labels(self):
        x, _ = separable_data(50)
        with pytest.raises(ValueError):
            train_classifier(make_model(), x, np.full(50, 2))

    def test_left_in_eval_mode(self):
        x, y = separable_data(50)
        model = make_model()
        train_classifier(model, x, y, epochs=1)
        assert not model.training

    def test_deterministic_given_seeds(self):
        x, y = separable_data(100)
        model_a = make_model(seed=3)
        model_b = make_model(seed=3)
        train_classifier(model_a, x, y, epochs=3, rng=np.random.default_rng(1))
        train_classifier(model_b, x, y, epochs=3, rng=np.random.default_rng(1))
        np.testing.assert_allclose(
            model_a.predict_logits(x), model_b.predict_logits(x))


class TestOnBenchmarkData:
    def test_adult_classifier_beats_base_rate(self):
        from repro.data import load_dataset
        bundle = load_dataset("adult", n_instances=3000, seed=0)
        x_train, y_train = bundle.split("train")
        x_test, y_test = bundle.split("test")
        model = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
        train_classifier(model, x_train, y_train, epochs=25,
                         rng=np.random.default_rng(0))
        base_rate = max(y_test.mean(), 1 - y_test.mean())
        assert accuracy(model, x_test, y_test) > base_rate + 0.05

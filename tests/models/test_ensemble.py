"""Ensemble of black-box variants: fused scoring parity and persistence."""

import numpy as np
import pytest

from repro.models import (
    ENSEMBLE_MODES,
    BlackBoxClassifier,
    BlackBoxEnsemble,
    train_classifier,
    train_ensemble,
)
from tests.helpers.parity import assert_close, perturbed


def separable_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    y = (x[:, 0] + 0.5 * x[:, 1] - 0.3 * x[:, 2] > 0).astype(int)
    return x, y


@pytest.fixture(scope="module")
def trained():
    x, y = separable_data()
    return train_ensemble(x, y, n_members=4, seed=0, epochs=6), x, y


class TestFusedScoring:
    def test_hard_predictions_bit_identical_to_member_loop(self, trained):
        ensemble, x, _ = trained
        rows = perturbed(x[:32], np.random.default_rng(7), 0.1, m=3)
        fused = ensemble.predict_logits_all(rows)
        loop = ensemble.predict_logits_loop(rows)
        np.testing.assert_array_equal(fused > 0.0, loop > 0.0)

    def test_logits_match_to_blas_precision(self, trained):
        ensemble, x, _ = trained
        rows = perturbed(x[:32], np.random.default_rng(8), 0.1, m=3)
        assert_close(ensemble.predict_logits_all(rows),
                     ensemble.predict_logits_loop(rows),
                     context="fused vs per-member logits")

    def test_member_columns_match_direct_member_calls(self, trained):
        ensemble, x, _ = trained
        logits = ensemble.predict_logits_loop(x[:16])
        for k, member in enumerate(ensemble.members):
            np.testing.assert_array_equal(
                logits[:, k], member.predict_logits(x[:16]))

    def test_shapes(self, trained):
        ensemble, x, _ = trained
        assert ensemble.predict_logits_all(x[:5]).shape == (5, 4)
        assert ensemble.predict_all(x[:5]).shape == (5, 4)
        assert ensemble.predict(x[:5]).shape == (5,)
        assert len(ensemble) == ensemble.n_members == 4

    def test_agreement_is_member_vote_fraction(self, trained):
        ensemble, x, _ = trained
        desired = np.ones(10, dtype=int)
        agreement = ensemble.agreement(x[:10], desired)
        votes = ensemble.predict_all(x[:10])
        np.testing.assert_allclose(agreement, (votes == 1).mean(axis=1))
        assert ((agreement >= 0.0) & (agreement <= 1.0)).all()

    def test_majority_predict_follows_member_votes(self, trained):
        ensemble, x, _ = trained
        votes = ensemble.predict_all(x[:40]).mean(axis=1)
        preds = ensemble.predict(x[:40])
        decisive = votes != 0.5
        np.testing.assert_array_equal(
            preds[decisive], (votes[decisive] > 0.5).astype(int))


class TestTraining:
    def test_members_are_genuine_retrains(self, trained):
        ensemble, x, _ = trained
        logits = ensemble.predict_logits_loop(x[:64])
        for k in range(1, ensemble.n_members):
            assert not np.array_equal(logits[:, 0], logits[:, k])

    def test_every_member_learns_the_separable_task(self, trained):
        ensemble, x, y = trained
        for member in ensemble.members:
            assert (member.predict(x) == y).mean() > 0.9

    def test_bootstrap_mode_differs_from_seed_mode(self):
        x, y = separable_data(200)
        seeded = train_ensemble(x, y, n_members=2, seed=0, epochs=3)
        boot = train_ensemble(x, y, n_members=2, mode="bootstrap",
                              seed=0, epochs=3)
        assert boot.mode == "bootstrap"
        assert seeded.fingerprint() != boot.fingerprint()

    def test_include_prepends_the_primary_model_untouched(self):
        x, y = separable_data(200)
        primary = BlackBoxClassifier(x.shape[1], np.random.default_rng(42))
        train_classifier(primary, x, y, epochs=3,
                         rng=np.random.default_rng(43))
        ensemble = train_ensemble(x, y, n_members=3, seed=0, epochs=3,
                                  include=primary)
        assert ensemble.members[0] is primary
        assert ensemble.n_members == 3

    def test_deterministic_given_seed(self):
        x, y = separable_data(200)
        a = train_ensemble(x, y, n_members=2, seed=5, epochs=3)
        b = train_ensemble(x, y, n_members=2, seed=5, epochs=3)
        assert a.fingerprint() == b.fingerprint()


class TestValidation:
    def test_rejects_empty_member_list(self):
        with pytest.raises(ValueError, match="at least one member"):
            BlackBoxEnsemble([])

    def test_rejects_non_classifier_members(self):
        with pytest.raises(TypeError, match="expected BlackBoxClassifier"):
            BlackBoxEnsemble(["gandalf"])

    def test_rejects_mismatched_architectures(self):
        a = BlackBoxClassifier(6, np.random.default_rng(0))
        b = BlackBoxClassifier(7, np.random.default_rng(0))
        with pytest.raises(ValueError, match="shared architecture"):
            BlackBoxEnsemble([a, b])

    def test_rejects_unknown_mode(self):
        member = BlackBoxClassifier(6, np.random.default_rng(0))
        with pytest.raises(ValueError, match="mode must be one of"):
            BlackBoxEnsemble([member], mode="psychic")
        x, y = separable_data(50)
        with pytest.raises(ValueError, match="mode must be one of"):
            train_ensemble(x, y, mode="psychic")

    def test_train_rejects_nonpositive_size(self):
        x, y = separable_data(50)
        with pytest.raises(ValueError, match="n_members"):
            train_ensemble(x, y, n_members=0)

    def test_modes_constant(self):
        assert ENSEMBLE_MODES == ("seed", "bootstrap")


class TestPersistence:
    def test_state_round_trip_preserves_predictions(self, trained):
        ensemble, x, _ = trained
        rebuilt = BlackBoxEnsemble.from_state(ensemble.get_state())
        np.testing.assert_array_equal(
            rebuilt.predict_logits_all(x[:32]),
            ensemble.predict_logits_all(x[:32]))
        assert rebuilt.mode == ensemble.mode
        assert rebuilt.seed == ensemble.seed

    def test_round_trip_preserves_fingerprint(self, trained):
        ensemble, _, _ = trained
        rebuilt = BlackBoxEnsemble.from_state(ensemble.get_state())
        assert rebuilt.fingerprint() == ensemble.fingerprint()

    def test_fingerprint_tracks_member_weights(self, trained):
        ensemble, x, y = trained
        other = train_ensemble(x, y, n_members=4, seed=99, epochs=6)
        assert other.fingerprint() != ensemble.fingerprint()

    def test_from_state_rejects_foreign_kind(self):
        with pytest.raises(ValueError, match="not an ensemble state"):
            BlackBoxEnsemble.from_state({"kind": "density"})

    def test_from_state_rejects_missing_member(self, trained):
        ensemble, _, _ = trained
        state = {k: v for k, v in ensemble.get_state().items()
                 if not k.startswith("member3.")}
        with pytest.raises(ValueError, match="missing member 3"):
            BlackBoxEnsemble.from_state(state)

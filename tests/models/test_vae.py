"""Tests for the Table II conditional VAE."""

import numpy as np
import pytest

from repro.models import (
    DECODER_WIDTHS,
    ENCODER_WIDTHS,
    LATENT_DIM,
    ConditionalVAE,
    train_reconstruction_vae,
)
from repro.nn import Linear, Tensor


def make_vae(n_features=8, seed=0, dropout=0.3):
    return ConditionalVAE(n_features, np.random.default_rng(seed), dropout=dropout)


def toy_data(n=200, n_features=8, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.random((n, n_features))
    labels = (rng.random(n) < 0.5).astype(float)
    return x, labels


class TestArchitecture:
    def test_table2_constants(self):
        assert LATENT_DIM == 10
        assert ENCODER_WIDTHS == (20, 16, 14, 12)
        assert DECODER_WIDTHS == (12, 14, 16, 18)

    def test_encoder_layer_widths(self):
        vae = make_vae(n_features=8)
        linears = [m for m in vae.encoder_trunk.modules() if isinstance(m, Linear)]
        widths = [(layer.in_features, layer.out_features) for layer in linears]
        assert widths == [(9, 20), (20, 16), (16, 14), (14, 12)]

    def test_decoder_layer_widths(self):
        vae = make_vae(n_features=8)
        linears = [m for m in vae.decoder_trunk.modules() if isinstance(m, Linear)]
        widths = [(layer.in_features, layer.out_features) for layer in linears]
        assert widths == [(11, 12), (12, 14), (14, 16), (16, 18)]

    def test_heads(self):
        vae = make_vae()
        assert vae.mu_head.out_features == LATENT_DIM
        assert vae.log_var_head.out_features == LATENT_DIM
        assert vae.output_head.out_features == vae.n_features


class TestForward:
    def test_shapes(self):
        vae = make_vae()
        x, labels = toy_data(16)
        reconstruction, mu, log_var, z = vae(x, labels)
        assert reconstruction.shape == (16, 8)
        assert mu.shape == (16, LATENT_DIM)
        assert log_var.shape == (16, LATENT_DIM)
        assert z.shape == (16, LATENT_DIM)

    def test_mu_in_unit_interval(self):
        vae = make_vae()
        x, labels = toy_data(32)
        _, mu, _, _ = vae(x, labels)
        assert mu.data.min() >= 0.0 and mu.data.max() <= 1.0

    def test_reconstruction_in_unit_interval(self):
        vae = make_vae()
        x, labels = toy_data(32)
        reconstruction, _, _, _ = vae(x, labels)
        assert reconstruction.data.min() >= 0.0
        assert reconstruction.data.max() <= 1.0

    def test_default_labels_are_zeros(self):
        vae = make_vae()
        x, _ = toy_data(4)
        reconstruction, _, _, _ = vae(x)
        assert reconstruction.shape == (4, 8)

    def test_class_conditioning_changes_output(self):
        vae = make_vae()
        vae.eval()
        x, _ = toy_data(8)
        out0 = vae.reconstruct(x, np.zeros(8))
        out1 = vae.reconstruct(x, np.ones(8))
        assert not np.allclose(out0, out1)

    def test_gradients_reach_all_parameters(self):
        vae = make_vae()
        x, labels = toy_data(8)
        reconstruction, mu, log_var, _ = vae(x, labels)
        loss = reconstruction.sum() + mu.sum() + log_var.sum()
        loss.backward()
        missing = [name for name, p in vae.named_parameters() if p.grad is None]
        assert not missing


class TestReparameterisation:
    def test_stochastic_in_train_mode(self):
        vae = make_vae(dropout=0.0)
        x, labels = toy_data(8)
        mu, log_var = vae.encode(Tensor(x), labels)
        z1 = vae.reparameterize(mu, log_var)
        z2 = vae.reparameterize(mu, log_var)
        assert not np.allclose(z1.data, z2.data)

    def test_sample_latent_shape(self):
        vae = make_vae()
        x, labels = toy_data(8)
        z = vae.sample_latent(x, labels)
        assert z.shape == (8, LATENT_DIM)

    def test_decode_latent(self):
        vae = make_vae()
        z = np.random.default_rng(0).random((6, LATENT_DIM))
        out = vae.decode_latent(z, np.ones(6))
        assert out.shape == (6, 8)
        assert (out >= 0).all() and (out <= 1).all()


class TestReconstructionTraining:
    def test_loss_decreases(self):
        vae = make_vae(dropout=0.1)
        x, labels = toy_data(300)
        history = train_reconstruction_vae(
            vae, x, labels, epochs=8, lr=3e-3, rng=np.random.default_rng(0))
        assert history[-1] < history[0]

    def test_reconstruction_better_than_mean_on_structured_data(self):
        # Low-rank structured data: a VAE must beat the column-mean baseline.
        rng = np.random.default_rng(3)
        factors = rng.normal(size=(400, 2))
        mixing = rng.normal(size=(2, 8))
        x = 1.0 / (1.0 + np.exp(-(factors @ mixing)))
        labels = (factors[:, 0] > 0).astype(float)
        vae = make_vae(dropout=0.0)
        # low beta: the sigmoid mu head (Table II) conflicts with a strong
        # N(0,1) prior, so data fidelity needs a gentle KL weight
        train_reconstruction_vae(vae, x, labels, epochs=80, lr=5e-3, beta=0.05,
                                 rng=np.random.default_rng(0))
        reconstruction = vae.reconstruct(x, labels)
        err = np.abs(reconstruction - x).mean()
        baseline = np.abs(x - x.mean(axis=0)).mean()
        assert err < baseline * 0.95

    def test_rejects_label_mismatch(self):
        vae = make_vae()
        x, labels = toy_data(50)
        with pytest.raises(ValueError):
            train_reconstruction_vae(vae, x, labels[:10])

    def test_left_in_eval_mode(self):
        vae = make_vae()
        x, labels = toy_data(60)
        train_reconstruction_vae(vae, x, labels, epochs=1)
        assert not vae.training

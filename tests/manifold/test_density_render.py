"""Tests for the manifold density diagnostics and the ASCII renderer."""

import numpy as np
import pytest

from repro.manifold import (
    centroid_separation,
    density_grid,
    knn_label_agreement,
    render_scatter,
)


def separated_cloud(n=80, gap=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 1.0, size=(n, 2))
    b = rng.normal(gap, 1.0, size=(n, 2))
    return np.vstack([a, b]), np.array([0] * n + [1] * n)


def mixed_cloud(n=160, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.normal(0.0, 1.0, size=(n, 2))
    labels = rng.integers(0, 2, size=n)
    return points, labels


class TestKnnAgreement:
    def test_separated_near_one(self):
        embedding, labels = separated_cloud()
        assert knn_label_agreement(embedding, labels) > 0.95

    def test_mixed_near_half(self):
        embedding, labels = mixed_cloud()
        assert 0.3 < knn_label_agreement(embedding, labels) < 0.7

    def test_rejects_misaligned(self):
        embedding, labels = separated_cloud()
        with pytest.raises(ValueError):
            knn_label_agreement(embedding, labels[:-1])

    def test_k_clipped(self):
        embedding, labels = separated_cloud(n=3)
        value = knn_label_agreement(embedding, labels, k=100)
        assert 0.0 <= value <= 1.0


class TestCentroidSeparation:
    def test_separated_is_large(self):
        embedding, labels = separated_cloud()
        assert centroid_separation(embedding, labels) > 3.0

    def test_mixed_is_small(self):
        embedding, labels = mixed_cloud()
        assert centroid_separation(embedding, labels) < 1.0

    def test_requires_two_classes(self):
        embedding, _ = separated_cloud()
        with pytest.raises(ValueError):
            centroid_separation(embedding, np.zeros(len(embedding)))


class TestDensityGrid:
    def test_counts_preserved(self):
        embedding, labels = separated_cloud(n=50)
        grids, _, _ = density_grid(embedding, labels, bins=10)
        assert grids[0].sum() == 50
        assert grids[1].sum() == 50

    def test_separated_masses_in_different_cells(self):
        embedding, labels = separated_cloud(n=50)
        grids, _, _ = density_grid(embedding, labels, bins=10)
        overlap = np.minimum(grids[0], grids[1]).sum()
        assert overlap < 5

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            density_grid(np.zeros((10, 3)), np.zeros(10))


class TestRenderScatter:
    def test_contains_legend_and_border(self):
        embedding, labels = separated_cloud(n=20)
        art = render_scatter(embedding, labels, width=40, height=10)
        assert "legend" in art
        assert art.count("+--") >= 1

    def test_title_included(self):
        embedding, labels = separated_cloud(n=20)
        art = render_scatter(embedding, labels, title="Adult manifold")
        assert art.splitlines()[0] == "Adult manifold"

    def test_both_glyphs_present(self):
        embedding, labels = separated_cloud(n=30)
        art = render_scatter(embedding, labels, width=50, height=12)
        assert "." in art and "+" in art

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            render_scatter(np.zeros((5, 3)), np.zeros(5))
        with pytest.raises(ValueError):
            render_scatter(np.zeros((5, 2)), np.zeros(4))

    def test_line_width_constant(self):
        embedding, labels = separated_cloud(n=20)
        art = render_scatter(embedding, labels, width=30, height=8)
        body = [line for line in art.splitlines() if line.startswith("|")]
        assert len(body) == 8
        assert all(len(line) == 32 for line in body)

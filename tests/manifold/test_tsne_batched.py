"""Parity of the batched perplexity search against the scalar loop.

Built on the shared ``tests.helpers.parity`` harness (no dataset
dependence — the search operates on arbitrary distance matrices).
"""

import numpy as np
import pytest

from repro.manifold import TSNE
from repro.manifold.tsne import (
    _binary_search_perplexity,
    _binary_search_perplexity_loop,
    _pairwise_sq_distances,
)
from tests.helpers.parity import assert_batched_matches_loop


def assert_search_parity(distances, perplexity):
    assert_batched_matches_loop(
        _binary_search_perplexity, _binary_search_perplexity_loop,
        distances, perplexity, context="perplexity search")


@pytest.mark.parametrize("n,perplexity", [(12, 4.0), (40, 12.0), (90, 30.0)])
def test_batched_search_bit_identical_to_loop(n, perplexity):
    rng = np.random.default_rng(n)
    assert_search_parity(_pairwise_sq_distances(rng.normal(size=(n, 5))), perplexity)


def test_duplicate_points_hit_the_uniform_fallback_identically():
    # clusters of identical points drive some rows to the zero-total
    # fallback; both paths must take it the same way
    x = np.zeros((12, 3))
    x[6:] = 5.0
    assert_search_parity(_pairwise_sq_distances(x), 3.0)


def test_rows_follow_the_scalar_convergence_schedule():
    # mixed scales force rows to converge after different iteration
    # counts, exercising the active-set bookkeeping
    rng = np.random.default_rng(7)
    x = np.vstack([rng.normal(size=(20, 4)), rng.normal(size=(20, 4)) * 50.0])
    assert_search_parity(_pairwise_sq_distances(x), 10.0)


def test_full_embedding_unchanged_by_the_batched_search():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(25, 4))
    embedding = TSNE(n_iter=40, seed=0).fit_transform(x)
    assert embedding.shape == (25, 2)
    assert np.isfinite(embedding).all()

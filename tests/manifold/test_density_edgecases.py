"""Edge-case coverage for the manifold density diagnostics."""

import numpy as np
import pytest

from repro.manifold import centroid_separation, density_grid, knn_label_agreement


class TestKnnLabelAgreementEdges:
    def test_k_at_least_n_clips_to_all_other_points(self):
        rng = np.random.default_rng(0)
        embedding = rng.normal(size=(6, 2))
        labels = np.array([0, 0, 0, 1, 1, 1])
        clipped = knn_label_agreement(embedding, labels, k=100)
        explicit = knn_label_agreement(embedding, labels, k=5)
        assert clipped == explicit

    def test_two_points(self):
        embedding = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert knn_label_agreement(embedding, np.array([0, 1]), k=10) == 0.0
        assert knn_label_agreement(embedding, np.array([1, 1]), k=10) == 1.0

    def test_single_point_raises(self):
        with pytest.raises(ValueError, match="at least 2"):
            knn_label_agreement(np.zeros((1, 2)), np.array([0]), k=3)

    def test_misaligned_labels_raise(self):
        with pytest.raises(ValueError, match="align"):
            knn_label_agreement(np.zeros((4, 2)), np.array([0, 1]))


class TestCentroidSeparationEdges:
    def test_single_member_class(self):
        rng = np.random.default_rng(1)
        embedding = np.vstack([rng.normal(size=(9, 2)), [[50.0, 50.0]]])
        labels = np.array([0] * 9 + [1])
        ratio = centroid_separation(embedding, labels)
        # the singleton class has zero spread; the ratio stays finite
        # and reflects the wide between-centroid gap
        assert np.isfinite(ratio)
        assert ratio > 1.0

    def test_two_singletons(self):
        embedding = np.array([[0.0, 0.0], [3.0, 4.0]])
        ratio = centroid_separation(embedding, np.array([0, 1]))
        # zero within-class spread on both sides -> epsilon-guarded blowup
        assert ratio > 1e6

    def test_one_class_raises(self):
        with pytest.raises(ValueError, match="2 classes"):
            centroid_separation(np.zeros((4, 2)), np.zeros(4))


class TestDensityGridEdges:
    def test_constant_coordinates_get_padded_edges(self):
        embedding = np.zeros((8, 2))
        labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        grids, x_edges, y_edges = density_grid(embedding, labels, bins=5)
        assert np.all(np.diff(x_edges) > 0)
        assert np.all(np.diff(y_edges) > 0)
        # every point lands somewhere on the padded grid
        assert grids[0].sum() == 4
        assert grids[1].sum() == 4

    def test_constant_single_axis(self):
        rng = np.random.default_rng(2)
        embedding = np.column_stack([rng.normal(size=10), np.full(10, 3.0)])
        labels = np.zeros(10, dtype=int)
        grids, x_edges, y_edges = density_grid(embedding, labels, bins=4)
        assert np.all(np.diff(y_edges) > 0)
        assert grids[0].sum() == 10

    def test_regular_grid_unchanged(self):
        rng = np.random.default_rng(3)
        embedding = rng.normal(size=(30, 2))
        labels = (rng.random(30) > 0.5).astype(int)
        grids, x_edges, y_edges = density_grid(embedding, labels, bins=6)
        assert x_edges[0] == embedding[:, 0].min()
        assert x_edges[-1] == embedding[:, 0].max()
        assert sum(grid.sum() for grid in grids.values()) == 30

"""Tests for the from-scratch exact t-SNE."""

import numpy as np
import pytest

from repro.manifold import TSNE, pca_project


def blobs(n_per=60, dim=8, separation=5.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 1.0, size=(n_per, dim))
    b = rng.normal(separation, 1.0, size=(n_per, dim))
    x = np.vstack([a, b])
    labels = np.array([0] * n_per + [1] * n_per)
    return x, labels


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TSNE(n_components=0)
        with pytest.raises(ValueError):
            TSNE(perplexity=1.0)
        with pytest.raises(ValueError):
            TSNE(n_iter=5)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros(10))

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 2)))


class TestPCAInit:
    def test_shape(self):
        x, _ = blobs()
        assert pca_project(x, 2).shape == (len(x), 2)

    def test_first_component_carries_separation(self):
        x, labels = blobs()
        projected = pca_project(x, 2)
        means = [projected[labels == v, 0].mean() for v in (0, 1)]
        assert abs(means[0] - means[1]) > 1.0


class TestEmbedding:
    def test_output_shape(self):
        x, _ = blobs(n_per=40)
        embedding = TSNE(n_iter=150, seed=0).fit_transform(x)
        assert embedding.shape == (80, 2)
        assert np.isfinite(embedding).all()

    def test_separates_blobs(self):
        x, labels = blobs(n_per=60)
        embedding = TSNE(n_iter=300, seed=0).fit_transform(x)
        from repro.manifold import knn_label_agreement
        assert knn_label_agreement(embedding, labels, k=10) > 0.9

    def test_deterministic_given_seed(self):
        x, _ = blobs(n_per=30)
        a = TSNE(n_iter=120, seed=5).fit_transform(x)
        b = TSNE(n_iter=120, seed=5).fit_transform(x)
        np.testing.assert_allclose(a, b)

    def test_kl_history_decreases(self):
        x, _ = blobs(n_per=40)
        tsne = TSNE(n_iter=300, seed=0)
        tsne.fit_transform(x)
        # KL after exaggeration ends should beat the first post-exaggeration reading
        assert tsne.kl_history[-1] <= tsne.kl_history[2] + 1e-6

    def test_perplexity_clipped_for_small_n(self):
        x, _ = blobs(n_per=10)
        embedding = TSNE(perplexity=50, n_iter=100, seed=0).fit_transform(x)
        assert np.isfinite(embedding).all()

    def test_centered_output(self):
        x, _ = blobs(n_per=30)
        embedding = TSNE(n_iter=100, seed=0).fit_transform(x)
        np.testing.assert_allclose(embedding.mean(axis=0), [0.0, 0.0], atol=1e-8)

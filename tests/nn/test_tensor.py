"""Unit tests for the autograd Tensor: forward semantics and graph rules."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_scalar(self):
        t = as_tensor(3.5)
        assert t.item() == 3.5

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12
        assert t.ndim == 2

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_broadcast(self):
        out = Tensor(np.ones((2, 3))) * Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0], [1.0]])
        np.testing.assert_allclose((a @ b).data, [[3.0], [7.0]])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])


class TestNonlinearForward:
    def test_relu(self):
        np.testing.assert_allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_bounds(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid().data
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_tanh(self):
        np.testing.assert_allclose(Tensor([0.0]).tanh().data, [0.0])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        np.testing.assert_allclose(x.exp().log().data, x.data)

    def test_abs(self):
        np.testing.assert_allclose(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_clip_min(self):
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).clip_min(0.0).data, [0.0, 2.0])

    def test_maximum(self):
        out = Tensor([1.0, 5.0]).maximum(Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])


class TestReductionsAndShape:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis_keepdims(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0, keepdims=True)
        assert out.shape == (1, 2)
        np.testing.assert_allclose(out.data, [[4.0, 6.0]])

    def test_mean(self):
        assert Tensor([[2.0, 4.0]]).mean().item() == 3.0

    def test_mean_axis(self):
        out = Tensor([[1.0, 3.0], [5.0, 7.0]]).mean(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 6.0])

    def test_reshape(self):
        out = Tensor(np.arange(6.0)).reshape(2, 3)
        assert out.shape == (2, 3)

    def test_reshape_tuple_arg(self):
        out = Tensor(np.arange(6.0)).reshape((3, 2))
        assert out.shape == (3, 2)

    def test_transpose(self):
        out = Tensor(np.ones((2, 3))).T
        assert out.shape == (3, 2)

    def test_getitem(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]])[1]
        np.testing.assert_allclose(out.data, [3.0, 4.0])

    def test_concatenate(self):
        out = Tensor.concatenate([Tensor([[1.0]]), Tensor([[2.0]])], axis=0)
        np.testing.assert_allclose(out.data, [[1.0], [2.0]])

    def test_where(self):
        out = Tensor.where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0 + 1.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x should give dy/dx = 4x via two paths
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        b = x * x
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_node_in_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_broadcast_add_grad(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad


class TestNoGrad:
    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

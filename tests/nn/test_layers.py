"""Unit tests for layers, the module system and parameter management."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Module, ReLU, Sequential, Sigmoid, Tanh, Tensor


def rng():
    return np.random.default_rng(11)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng())
        out = layer(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_bias_starts_zero(self):
        layer = Linear(4, 3, rng())
        np.testing.assert_allclose(layer.bias.data, np.zeros(3))

    def test_xavier_init_bound(self):
        layer = Linear(100, 100, rng(), init="xavier")
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound

    def test_he_init_bound(self):
        layer = Linear(100, 50, rng(), init="he")
        bound = np.sqrt(6.0 / 100)
        assert np.abs(layer.weight.data).max() <= bound

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            Linear(2, 2, rng(), init="magic")

    def test_parameters_found(self):
        layer = Linear(4, 3, rng())
        params = layer.parameters()
        assert len(params) == 2

    def test_forward_matches_manual(self):
        layer = Linear(2, 2, rng())
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected)


class TestActivationLayers:
    def test_relu(self):
        np.testing.assert_allclose(ReLU()(np.array([-1.0, 2.0])).data, [0.0, 2.0])

    def test_sigmoid(self):
        np.testing.assert_allclose(Sigmoid()(np.array([0.0])).data, [0.5])

    def test_tanh(self):
        np.testing.assert_allclose(Tanh()(np.array([0.0])).data, [0.0])


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0, rng())
        with pytest.raises(ValueError):
            Dropout(-0.1, rng())

    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng())
        layer.eval()
        x = np.ones((10, 10))
        np.testing.assert_allclose(layer(x).data, x)

    def test_training_zeroes_units(self):
        layer = Dropout(0.5, rng())
        out = layer(np.ones((100, 100))).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_inverted_scaling_preserves_mean(self):
        layer = Dropout(0.3, rng())
        out = layer(np.ones((200, 200))).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_zero_p_is_identity_even_training(self):
        layer = Dropout(0.0, rng())
        x = np.ones((4, 4))
        np.testing.assert_allclose(layer(x).data, x)


class TestSequentialAndModule:
    def build(self):
        r = rng()
        return Sequential(Linear(4, 8, r), ReLU(), Linear(8, 2, r))

    def test_forward_chains(self):
        model = self.build()
        assert model(np.ones((3, 4))).shape == (3, 2)

    def test_len_getitem(self):
        model = self.build()
        assert len(model) == 3
        assert isinstance(model[0], Linear)

    def test_parameter_discovery_nested(self):
        model = self.build()
        assert len(model.parameters()) == 4  # two Linear layers x (W, b)

    def test_named_parameters_are_unique(self):
        model = self.build()
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5, rng()), Linear(2, 2, rng()))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        model = self.build()
        out = model(np.ones((2, 4))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        model_a = self.build()
        model_b = self.build()
        model_b.load_state_dict(model_a.state_dict())
        x = np.ones((2, 4))
        np.testing.assert_allclose(model_a(x).data, model_b(x).data)

    def test_load_state_dict_rejects_missing(self):
        model = self.build()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = self.build()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module().forward(Tensor([1.0]))

    def test_gradients_flow_through_stack(self):
        model = self.build()
        out = model(np.ones((2, 4))).sum()
        out.backward()
        for parameter in model.parameters():
            assert parameter.grad is not None
            assert parameter.grad.shape == parameter.data.shape

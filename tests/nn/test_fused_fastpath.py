"""Fast-path engine parity: fused kernels, graph-free inference, dtypes.

Three guarantees pinned here:

1. The fused ``linear`` op matches the unfused ``x @ W + b`` chain
   exactly (forward AND all three gradients) and passes float64
   gradcheck against central finite differences.
2. ``Module.forward_array`` (the graph-free inference path) reproduces
   the ``no_grad`` graph path bit for bit, layer by layer and through
   whole networks — including training-mode dropout given the same rng.
3. The configurable dtype: float32 fast mode produces float32 tensors
   and parameters, scopes restore cleanly, and float64 stays the
   gradcheck-grade default.
"""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    as_tensor,
    dtype_scope,
    get_default_dtype,
    linear,
    no_grad,
    set_default_dtype,
)

RNG = np.random.default_rng(11)
EPS = 1e-6
TOL = 1e-5


def numeric_grad(fn, x):
    """Central finite differences of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        up = fn(x)
        flat[i] = original - EPS
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * EPS)
    return grad


class TestFusedLinear:
    def _operands(self, batch=5, n_in=4, n_out=3):
        x = RNG.normal(size=(batch, n_in))
        w = RNG.normal(size=(n_in, n_out)) * 0.5
        b = RNG.normal(size=(n_out,))
        return x, w, b

    def test_forward_matches_unfused_exactly(self):
        x, w, b = self._operands()
        fused = linear(Tensor(x), Tensor(w), Tensor(b))
        unfused = Tensor(x) @ Tensor(w) + Tensor(b)
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_gradients_match_unfused_exactly(self):
        x, w, b = self._operands()
        operands_fused = [Tensor(a, requires_grad=True) for a in (x, w, b)]
        operands_unfused = [Tensor(a, requires_grad=True) for a in (x, w, b)]
        (linear(*operands_fused).sum() * 2.0).backward()
        ((operands_unfused[0] @ operands_unfused[1] + operands_unfused[2])
         .sum() * 2.0).backward()
        for fused_op, unfused_op in zip(operands_fused, operands_unfused):
            np.testing.assert_array_equal(fused_op.grad, unfused_op.grad)

    @pytest.mark.parametrize("slot", [0, 1, 2])
    def test_gradcheck_each_operand(self, slot):
        operands = list(self._operands())

        def fn(arr):
            tensors = [Tensor(a) for a in operands]
            tensors[slot] = Tensor(arr)
            return (linear(*tensors) * Tensor(np.arange(15.0).reshape(5, 3))
                    ).sum().item()

        probe = Tensor(operands[slot].copy(), requires_grad=True)
        tensors = [Tensor(a) for a in operands]
        tensors[slot] = probe
        (linear(*tensors) * Tensor(np.arange(15.0).reshape(5, 3))).sum().backward()
        expected = numeric_grad(fn, operands[slot].copy())
        np.testing.assert_allclose(probe.grad, expected, rtol=TOL, atol=TOL)

    def test_single_row_input(self):
        x, w, b = self._operands(batch=1)
        row = Tensor(x[0], requires_grad=True)
        out = linear(row, Tensor(w), Tensor(b))
        assert out.shape == (3,)
        out.sum().backward()

        def fn(arr):
            return linear(Tensor(arr), Tensor(w), Tensor(b)).sum().item()

        np.testing.assert_allclose(row.grad, numeric_grad(fn, x[0].copy()),
                                   rtol=TOL, atol=TOL)

    def test_layer_uses_fused_node(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        out = layer(Tensor(RNG.normal(size=(2, 4)), requires_grad=True))
        # one fused node: parents are (x, weight, bias), not a matmul chain
        assert len(out._parents) == 3


class TestActivationBackwardReuse:
    """Activation backwards recompute from the forward output only."""

    @pytest.mark.parametrize("op", ["relu", "sigmoid", "tanh"])
    def test_gradcheck(self, op):
        x = RNG.normal(size=(3, 4))
        if op == "relu":
            x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        probe = Tensor(x.copy(), requires_grad=True)
        getattr(probe, op)().sum().backward()
        expected = numeric_grad(
            lambda arr: getattr(Tensor(arr), op)().sum().item(), x.copy())
        np.testing.assert_allclose(probe.grad, expected, rtol=TOL, atol=TOL)


class TestInPlaceAccumulation:
    def test_diamond_graph_fan_in(self):
        x = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        y = x * x + x * 3.0 + x  # three paths into x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 2.0 * x.data + 4.0, rtol=1e-12)

    def test_backward_twice_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        first = x.grad.copy()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, 2.0 * first)

    def test_shared_subexpression(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        shared = x.tanh()
        out = (shared * shared).sum() + shared.sum()
        out.backward()
        expected = numeric_grad(
            lambda arr: ((np.tanh(arr) ** 2) + np.tanh(arr)).sum(), x.data.copy())
        np.testing.assert_allclose(x.grad, expected, rtol=TOL, atol=TOL)


class TestForwardArrayParity:
    def _network(self, dropout_seed=None):
        rng = np.random.default_rng(3)
        layers = [Linear(6, 8, rng), ReLU(), Linear(8, 5, rng), Tanh(),
                  Linear(5, 2, rng, init="xavier"), Sigmoid()]
        if dropout_seed is not None:
            layers.insert(2, Dropout(0.4, np.random.default_rng(dropout_seed)))
        return Sequential(*layers)

    def test_eval_mode_bitwise_identical(self):
        network = self._network().eval()
        x = RNG.normal(size=(7, 6))
        with no_grad():
            graph = network(Tensor(x)).data
        np.testing.assert_array_equal(network.forward_array(x), graph)

    def test_no_tensor_output(self):
        network = self._network().eval()
        out = network.forward_array(RNG.normal(size=(3, 6)))
        assert isinstance(out, np.ndarray) and not isinstance(out, Tensor)

    def test_training_dropout_parity_same_rng(self):
        x = RNG.normal(size=(5, 6))
        graph_net = self._network(dropout_seed=77).train()
        array_net = self._network(dropout_seed=77).train()
        with no_grad():
            graph = graph_net(Tensor(x)).data
        np.testing.assert_allclose(array_net.forward_array(x), graph,
                                   rtol=0, atol=1e-12)

    def test_default_fallback_matches_graph(self):
        class Doubler(Module):
            def forward(self, x):
                return x * 2.0 + 1.0

        module = Doubler()
        x = RNG.normal(size=(3, 2))
        np.testing.assert_array_equal(module.forward_array(x), x * 2.0 + 1.0)


class TestDtypeConfig:
    def teardown_method(self):
        set_default_dtype(np.float64)

    def test_default_is_float64(self):
        assert get_default_dtype() is np.float64
        assert as_tensor([1.0, 2.0]).data.dtype == np.float64

    def test_float32_fast_mode(self):
        set_default_dtype("float32")
        layer = Linear(4, 3, np.random.default_rng(0))
        assert layer.weight.data.dtype == np.float32
        # graph mode follows numpy promotion: float32 in -> float32 out
        out = layer(np.ones((2, 4), dtype=np.float32))
        assert out.data.dtype == np.float32
        # forward_array casts inputs to the parameter dtype itself
        assert layer.forward_array(np.ones((2, 4))).dtype == np.float32

    def test_scope_restores(self):
        with dtype_scope("float32"):
            assert get_default_dtype() is np.float32
            with dtype_scope("float64"):
                assert get_default_dtype() is np.float64
            assert get_default_dtype() is np.float32
        assert get_default_dtype() is np.float64

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_float32_training_step_stays_float32(self):
        set_default_dtype("float32")
        layer = Linear(3, 1, np.random.default_rng(1))
        out = layer(np.ones((4, 3), dtype=np.float32)).sum()
        out.backward()
        assert layer.weight.grad.dtype == np.float32

    def test_float32_graph_mode_outside_scope(self):
        """A float32 model stays float32 in graph mode after the scope ends."""
        with dtype_scope("float32"):
            layer = Linear(4, 3, np.random.default_rng(0))
        out = layer(np.ones((2, 4), dtype=np.float32))
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert layer.weight.grad.dtype == np.float32

    def test_float32_close_to_float64(self):
        x = RNG.normal(size=(5, 4))
        ref = Linear(4, 2, np.random.default_rng(9))
        with dtype_scope("float32"):
            fast = Linear(4, 2, np.random.default_rng(9))
        np.testing.assert_allclose(fast.forward_array(x.astype(np.float32)),
                                   ref.forward_array(x), rtol=1e-5, atol=1e-5)

"""Unit tests for SGD and Adam optimisers, including convergence checks."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Optimizer, Tensor, bce_with_logits


class TestConstruction:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_requires_positive_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_momentum_bounds(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.1, momentum=1.0)

    def test_base_step_not_implemented(self):
        opt = Optimizer.__new__(Optimizer)
        opt.parameters = [Tensor([1.0], requires_grad=True)]
        with pytest.raises(NotImplementedError):
            opt.step()


class TestSGD:
    def test_single_step_direction(self):
        p = Tensor([1.0], requires_grad=True)
        (p * 3.0).sum().backward()
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.3])

    def test_skips_parameters_without_grad(self):
        p = Tensor([1.0], requires_grad=True)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = Tensor([1.0], requires_grad=True)
        (p * 2.0).sum().backward()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor([5.0], requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(20):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_converges_on_quadratic(self):
        p = Tensor([4.0, -3.0], requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [0.0, 0.0], atol=1e-8)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor([4.0, -3.0], requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [0.0, 0.0], atol=1e-4)

    def test_bias_correction_first_step(self):
        p = Tensor([1.0], requires_grad=True)
        (p * 1.0).sum().backward()
        Adam([p], lr=0.1).step()
        # with bias correction the first step has magnitude ~lr
        np.testing.assert_allclose(p.data, [1.0 - 0.1], atol=1e-6)

    def test_trains_logistic_regression(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(200, 4))
        true_w = np.array([1.5, -2.0, 0.5, 1.0])
        y = (x @ true_w > 0).astype(float)
        layer = Linear(4, 1, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            logits = layer(x).reshape(200)
            bce_with_logits(logits, y).backward()
            opt.step()
        preds = (layer(x).data.ravel() > 0).astype(float)
        assert (preds == y).mean() > 0.95

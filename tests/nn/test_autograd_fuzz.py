"""Property-based fuzzing of the autograd engine.

Hypothesis builds random expression trees from the differentiable op set
and checks the analytic gradient of the resulting scalar against central
finite differences — a randomized extension of the hand-written cases in
``test_gradcheck.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor

EPS = 1e-6
TOL = 2e-4

#: Smooth unary ops only (kinked ops like relu/abs fail finite differences
#: near the kink and are covered separately with kink-avoiding inputs).
UNARY_OPS = ("sigmoid", "tanh", "exp_scaled", "square")
BINARY_OPS = ("add", "mul", "sub")


def apply_unary(op, t):
    if op == "sigmoid":
        return t.sigmoid()
    if op == "tanh":
        return t.tanh()
    if op == "exp_scaled":
        return (t * 0.3).exp()
    return t * t


def apply_binary(op, a, b):
    if op == "add":
        return a + b
    if op == "mul":
        return a * b
    return a - b


@st.composite
def expression_programs(draw):
    """A random straight-line program over a (3,)-shaped input."""
    n_steps = draw(st.integers(min_value=1, max_value=6))
    steps = []
    for index in range(n_steps):
        if index == 0 or draw(st.booleans()):
            steps.append(("unary", draw(st.sampled_from(UNARY_OPS)), None))
        else:
            operand = draw(st.integers(min_value=0, max_value=index - 1))
            steps.append(("binary", draw(st.sampled_from(BINARY_OPS)), operand))
    return steps


def run_program(steps, t):
    values = [t]
    current = t
    for kind, op, operand in steps:
        if kind == "unary":
            current = apply_unary(op, current)
        else:
            current = apply_binary(op, current, values[operand])
        values.append(current)
    return current.sum()


class TestAutogradFuzz:
    @given(expression_programs(),
           st.lists(st.floats(min_value=-2.0, max_value=2.0,
                              allow_nan=False), min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_random_programs_match_finite_differences(self, steps, values):
        x = np.array(values, dtype=np.float64)
        t = Tensor(x.copy(), requires_grad=True)
        run_program(steps, t).backward()
        analytic = t.grad

        numeric = np.zeros_like(x)
        for i in range(x.size):
            bumped = x.copy()
            bumped[i] += EPS
            up = run_program(steps, Tensor(bumped)).item()
            bumped[i] -= 2 * EPS
            down = run_program(steps, Tensor(bumped)).item()
            numeric[i] = (up - down) / (2 * EPS)

        np.testing.assert_allclose(analytic, numeric, rtol=TOL, atol=TOL)

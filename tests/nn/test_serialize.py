"""Tests for npz save/load of module parameters."""

import numpy as np

from repro.nn import Linear, ReLU, Sequential, load_state, save_state


def build(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(3, 5, rng), ReLU(), Linear(5, 2, rng))


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path):
        model = build(0)
        path = tmp_path / "model.npz"
        save_state(path, model)
        other = build(99)  # different init
        load_state(path, other)
        x = np.ones((4, 3))
        np.testing.assert_allclose(model(x).data, other(x).data)

    def test_load_returns_module(self, tmp_path):
        model = build(0)
        path = tmp_path / "model.npz"
        save_state(path, model)
        assert load_state(path, model) is model

    def test_saved_file_contains_all_parameters(self, tmp_path):
        model = build(0)
        path = tmp_path / "model.npz"
        save_state(path, model)
        with np.load(path) as archive:
            assert set(archive.files) == set(model.state_dict())

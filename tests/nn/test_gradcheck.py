"""Finite-difference gradient verification for every autograd primitive.

Each check compares the analytic gradient produced by ``backward`` with a
central finite-difference estimate on random inputs.  This is the ground
truth for the whole substrate: if these pass, every model trained on top
receives correct gradients.
"""

import numpy as np
import pytest

from repro.nn import Tensor

RNG = np.random.default_rng(7)
EPS = 1e-6
TOL = 1e-5


def numeric_grad(fn, x):
    """Central finite differences of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        up = fn(x)
        flat[i] = original - EPS
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * EPS)
    return grad


def check(fn_tensor, x, fn_numpy=None):
    """Assert analytic and numeric gradients agree for ``fn_tensor``."""
    fn_numpy = fn_numpy or (lambda arr: fn_tensor(Tensor(arr)).item())
    t = Tensor(x.copy(), requires_grad=True)
    out = fn_tensor(t)
    out.backward()
    expected = numeric_grad(fn_numpy, x.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=TOL, atol=TOL)


@pytest.mark.parametrize("shape", [(3,), (2, 4)])
class TestUnaryOps:
    def test_exp(self, shape):
        check(lambda t: t.exp().sum(), RNG.normal(size=shape))

    def test_log(self, shape):
        check(lambda t: t.log().sum(), RNG.uniform(0.5, 2.0, size=shape))

    def test_sqrt(self, shape):
        check(lambda t: t.sqrt().sum(), RNG.uniform(0.5, 2.0, size=shape))

    def test_sigmoid(self, shape):
        check(lambda t: t.sigmoid().sum(), RNG.normal(size=shape))

    def test_tanh(self, shape):
        check(lambda t: t.tanh().sum(), RNG.normal(size=shape))

    def test_relu_away_from_kink(self, shape):
        x = RNG.normal(size=shape)
        x[np.abs(x) < 0.1] = 0.5
        check(lambda t: t.relu().sum(), x)

    def test_abs_away_from_kink(self, shape):
        x = RNG.normal(size=shape)
        x[np.abs(x) < 0.1] = -0.5
        check(lambda t: t.abs().sum(), x)

    def test_neg(self, shape):
        check(lambda t: (-t).sum(), RNG.normal(size=shape))

    def test_pow(self, shape):
        check(lambda t: (t ** 3).sum(), RNG.normal(size=shape))

    def test_clip_min(self, shape):
        x = RNG.normal(size=shape)
        x[np.abs(x) < 0.1] = 0.7
        check(lambda t: t.clip_min(0.0).sum(), x)


class TestBinaryOps:
    def test_add_broadcast(self):
        x = RNG.normal(size=(2, 3))
        other = Tensor(RNG.normal(size=(3,)))
        check(lambda t: (t + other).sum(), x)

    def test_mul_both_sides(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(2, 3))
        fixed_b = Tensor(b)
        check(lambda t: (t * fixed_b).sum(), a)
        fixed_a = Tensor(a)
        check(lambda t: (fixed_a * t).sum(), b)

    def test_div_numerator_and_denominator(self):
        num = RNG.normal(size=(3,))
        den = RNG.uniform(0.5, 2.0, size=(3,))
        check(lambda t: (t / Tensor(den)).sum(), num)
        check(lambda t: (Tensor(num) / t).sum(), den)

    def test_matmul_both_operands(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        check(lambda t: (t @ Tensor(b)).sum(), a)
        check(lambda t: (Tensor(a) @ t).sum(), b)

    def test_matvec(self):
        a = RNG.normal(size=(3, 4))
        v = RNG.normal(size=(4,))
        check(lambda t: (Tensor(a) @ t).sum(), v)

    def test_maximum(self):
        a = RNG.normal(size=(5,))
        b = a + np.where(RNG.random(5) > 0.5, 0.5, -0.5)  # keep away from ties
        check(lambda t: t.maximum(Tensor(b)).sum(), a)


class TestReductionsAndIndexing:
    def test_sum_axis(self):
        check(lambda t: t.sum(axis=0).sum(), RNG.normal(size=(3, 4)))

    def test_mean_axis(self):
        check(lambda t: t.mean(axis=1).sum(), RNG.normal(size=(3, 4)))

    def test_mean_all(self):
        check(lambda t: t.mean(), RNG.normal(size=(3, 4)))

    def test_reshape(self):
        check(lambda t: (t.reshape(6) * Tensor(np.arange(6.0))).sum(),
              RNG.normal(size=(2, 3)))

    def test_transpose(self):
        w = Tensor(RNG.normal(size=(2, 3)))
        check(lambda t: (t.T * w).sum(), RNG.normal(size=(3, 2)))

    def test_getitem_row(self):
        check(lambda t: t[1].sum(), RNG.normal(size=(3, 4)))

    def test_getitem_fancy(self):
        idx = (np.array([0, 1, 1]), np.array([2, 0, 0]))
        # repeated index (1, 0) must accumulate gradient
        check(lambda t: t[idx].sum(), RNG.normal(size=(3, 4)))

    def test_concatenate(self):
        b = Tensor(RNG.normal(size=(2, 3)))
        check(lambda t: Tensor.concatenate([t, b], axis=0).sum() * 2.0,
              RNG.normal(size=(2, 3)))

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        b = Tensor(RNG.normal(size=(3, 4)))
        check(lambda t: Tensor.where(cond, t, b).sum(), RNG.normal(size=(3, 4)))


class TestCompositeExpressions:
    def test_softmax_like(self):
        def fn(t):
            shifted = t - t.sum() * 0.0
            exp = shifted.exp()
            return (exp / exp.sum()).log().sum()

        check(fn, RNG.normal(size=(4,)))

    def test_two_layer_mlp(self):
        w1 = Tensor(RNG.normal(size=(5, 4)) * 0.3)
        w2 = Tensor(RNG.normal(size=(4, 1)) * 0.3)

        def fn(t):
            hidden = (t @ w1).tanh()
            return (hidden @ w2).sigmoid().sum()

        check(fn, RNG.normal(size=(3, 5)))

    def test_gaussian_kl_expression(self):
        def fn(t):
            mu = t[:, :2]
            log_var = t[:, 2:]
            per_dim = (log_var + 1.0 - mu * mu - log_var.exp()) * (-0.5)
            return per_dim.sum(axis=1).mean()

        check(fn, RNG.normal(size=(3, 4)) * 0.5)

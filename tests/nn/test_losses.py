"""Unit tests for loss functions, including stability and gradient flow."""

import numpy as np

from repro.nn import (
    Tensor,
    bce_with_logits,
    cross_entropy,
    gaussian_kl,
    hinge_loss,
    l1_loss,
    logsumexp,
    mse_loss,
    softmax,
)


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = np.array([0.5, -1.2, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        got = bce_with_logits(Tensor(logits), targets).item()
        assert abs(got - expected) < 1e-10

    def test_stable_for_huge_logits(self):
        out = bce_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(out.item())
        assert out.item() < 1e-6

    def test_gradient_flows(self):
        logits = Tensor([0.3, -0.7], requires_grad=True)
        bce_with_logits(logits, np.array([1.0, 0.0])).backward()
        assert logits.grad is not None


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor([[10.0, -10.0], [-10.0, 10.0]])
        assert cross_entropy(logits, [0, 1]).item() < 1e-6

    def test_uniform_prediction(self):
        logits = Tensor(np.zeros((4, 3)))
        assert abs(cross_entropy(logits, [0, 1, 2, 0]).item() - np.log(3)) < 1e-10

    def test_gradient_shape(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 2)), requires_grad=True)
        cross_entropy(logits, [0, 1, 1, 0, 1]).backward()
        assert logits.grad.shape == (5, 2)


class TestHinge:
    def test_zero_when_margin_satisfied(self):
        # desired class 1 => want logit >= margin
        out = hinge_loss(Tensor([2.0, 3.0]), np.array([1, 1]), margin=1.0)
        assert out.item() == 0.0

    def test_penalises_wrong_side(self):
        out = hinge_loss(Tensor([-1.0]), np.array([1]), margin=1.0)
        assert out.item() == 2.0

    def test_desired_zero_flips_sign(self):
        out = hinge_loss(Tensor([-2.0]), np.array([0]), margin=1.0)
        assert out.item() == 0.0
        out = hinge_loss(Tensor([2.0]), np.array([0]), margin=1.0)
        assert out.item() == 3.0

    def test_gradient_flows_only_from_violations(self):
        logits = Tensor([-1.0, 5.0], requires_grad=True)
        hinge_loss(logits, np.array([1, 1])).backward()
        assert logits.grad[0] != 0.0
        assert logits.grad[1] == 0.0


class TestDistancesAndKL:
    def test_l1(self):
        out = l1_loss(Tensor([1.0, 3.0]), Tensor([0.0, 1.0]))
        assert out.item() == 1.5

    def test_mse(self):
        out = mse_loss(Tensor([2.0]), Tensor([0.0]))
        assert out.item() == 4.0

    def test_kl_zero_at_standard_normal(self):
        mu = Tensor(np.zeros((3, 4)))
        log_var = Tensor(np.zeros((3, 4)))
        assert abs(gaussian_kl(mu, log_var).item()) < 1e-12

    def test_kl_positive_elsewhere(self):
        mu = Tensor(np.ones((2, 3)))
        log_var = Tensor(np.zeros((2, 3)))
        assert gaussian_kl(mu, log_var).item() > 0

    def test_kl_matches_closed_form(self):
        mu_val = np.array([[0.5, -0.2]])
        lv_val = np.array([[0.1, -0.3]])
        expected = -0.5 * np.sum(1 + lv_val - mu_val ** 2 - np.exp(lv_val))
        got = gaussian_kl(Tensor(mu_val), Tensor(lv_val)).item()
        assert abs(got - expected) < 1e-10


class TestSoftmaxLogsumexp:
    def test_softmax_sums_to_one(self):
        out = softmax(Tensor(np.random.default_rng(1).normal(size=(4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_logsumexp_stable(self):
        out = logsumexp(Tensor([[1000.0, 1000.0]]))
        assert np.isfinite(out.data).all()
        assert abs(out.data[0, 0] - (1000.0 + np.log(2))) < 1e-9

    def test_logsumexp_matches_scipy(self):
        from scipy.special import logsumexp as scipy_lse

        x = np.random.default_rng(2).normal(size=(3, 4))
        got = logsumexp(Tensor(x), axis=1).data.ravel()
        np.testing.assert_allclose(got, scipy_lse(x, axis=1), atol=1e-12)

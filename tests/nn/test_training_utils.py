"""Tests for gradient clipping, LR schedules and early stopping."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    CosineDecay,
    EarlyStopping,
    StepDecay,
    Tensor,
    clip_grad_norm,
)


def param_with_grad(grad):
    p = Tensor(np.zeros_like(np.asarray(grad, dtype=float)), requires_grad=True)
    p.grad = np.asarray(grad, dtype=float)
    return p


class TestClipGradNorm:
    def test_rejects_bad_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)

    def test_no_grads_returns_zero(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0

    def test_under_limit_untouched(self):
        p = param_with_grad([0.3, 0.4])  # norm 0.5
        returned = clip_grad_norm([p], 1.0)
        assert returned == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_over_limit_scaled(self):
        p = param_with_grad([3.0, 4.0])  # norm 5
        returned = clip_grad_norm([p], 1.0)
        assert returned == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_parameters(self):
        a = param_with_grad([3.0])
        b = param_with_grad([4.0])
        clip_grad_norm([a, b], 1.0)
        total = np.sqrt(float((a.grad ** 2).sum()) + float((b.grad ** 2).sum()))
        assert total == pytest.approx(1.0, rel=1e-6)


class TestSchedules:
    def optimizer(self, lr=1.0):
        return SGD([Tensor([0.0], requires_grad=True)], lr=lr)

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            StepDecay(self.optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(self.optimizer(), step_size=2, gamma=0.0)

    def test_step_decay_halves_at_boundary(self):
        opt = self.optimizer(lr=1.0)
        schedule = StepDecay(opt, step_size=2, gamma=0.5)
        schedule.step()
        assert opt.lr == 1.0
        schedule.step()
        assert opt.lr == 0.5
        schedule.step()
        schedule.step()
        assert opt.lr == 0.25

    def test_cosine_decay_endpoints(self):
        opt = self.optimizer(lr=1.0)
        schedule = CosineDecay(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            schedule.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_decay_monotone(self):
        opt = self.optimizer(lr=1.0)
        schedule = CosineDecay(opt, total_epochs=8)
        values = [schedule.step() for _ in range(8)]
        assert values == sorted(values, reverse=True)

    def test_cosine_decay_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(self.optimizer(), total_epochs=0)


class TestEarlyStopping:
    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)  # stale 1
        assert stopper.update(1.0)      # stale 2 -> stop
        assert stopper.should_stop

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        stopper.update(1.0)
        stopper.update(1.0)   # stale 1
        stopper.update(0.5)   # improvement resets
        assert not stopper.should_stop
        assert stopper.best == 0.5

    def test_min_delta_gate(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(1.0)
        # an improvement smaller than min_delta counts as stale
        assert stopper.update(0.95)

"""Parity: batched ``repair_batch`` vs the per-row ``_repair_loop``.

The acceptance bar of the causal layer: on every registry dataset, for
both models, across noise scales and sweep widths, the one-pass batched
repair must be *bit-identical* to the per-row loop reference.  Built on
the shared ``tests.helpers.parity`` harness.
"""

import numpy as np
import pytest

from repro.causal import MinedCausalModel, ScmCausalModel
from tests.helpers.parity import (
    assert_batched_matches_loop,
    assert_bit_identical,
    candidate_sweep,
    registry_bundle_fixture,
)

bundle = registry_bundle_fixture(n_instances=900, seed=1)

#: Explicit relations per dataset so the mined model is deterministic
#: here (mining itself is covered in test_causal_models.py).
MINED_RELATIONS = {
    "adult": [("education", "age", 0.02), ("occupation", "hours_per_week", 0.05)],
    "kdd_census": [("education", "age", 0.02), ("education", "wage_per_hour", 0.04)],
    "law_school": [("tier", "lsat", 0.05), ("zfygpa", "zgpa", 0.08)],
}


def models_for(bundle):
    scm = ScmCausalModel(bundle.encoder)
    mined = MinedCausalModel(
        bundle.encoder, relations=MINED_RELATIONS[bundle.name])
    return {"scm": scm, "mined": mined}


class TestRepairParity:
    @pytest.mark.parametrize("kind", ["scm", "mined"])
    def test_across_noise_scales(self, bundle, kind):
        model = models_for(bundle)[kind]
        x = bundle.encoded[:40]
        for trial, scale in enumerate((0.0, 1e-7, 1e-3, 0.05, 0.3)):
            rng = np.random.default_rng(100 + trial)
            sweep = candidate_sweep(x, rng, scale, m=4)
            assert_batched_matches_loop(
                model.repair_batch, model._repair_loop, x, sweep,
                context=f"{kind} repair at noise {scale}")

    @pytest.mark.parametrize("kind", ["scm", "mined"])
    def test_across_sweep_widths(self, bundle, kind):
        model = models_for(bundle)[kind]
        x = bundle.encoded[:16]
        for m in (1, 2, 5, 16):
            sweep = candidate_sweep(x, np.random.default_rng(m), 0.05, m=m)
            assert_batched_matches_loop(
                model.repair_batch, model._repair_loop, x, sweep,
                context=f"{kind} repair at m={m}")

    @pytest.mark.parametrize("kind", ["scm", "mined"])
    def test_single_row(self, bundle, kind):
        model = models_for(bundle)[kind]
        x = bundle.encoded[:1]
        sweep = candidate_sweep(x, np.random.default_rng(11), 0.05, m=3)
        assert_batched_matches_loop(
            model.repair_batch, model._repair_loop, x, sweep,
            context=f"{kind} repair on one row")

    @pytest.mark.parametrize("kind", ["scm", "mined"])
    def test_identity_candidates_pass_through_unchanged(self, bundle, kind):
        # x is real data, hence causally consistent: repairing an exact
        # copy of the input must return its exact bits (score 0)
        model = models_for(bundle)[kind]
        x = bundle.encoded[:30]
        sweep = np.repeat(x[:, None, :], 3, axis=1)
        repaired, _ = assert_batched_matches_loop(
            model.repair_batch, model._repair_loop, x, sweep,
            context=f"{kind} identity repair")
        assert_bit_identical(repaired, sweep, context=f"{kind} identity output")
        np.testing.assert_array_equal(model.score(x, x), np.zeros(len(x)))

    @pytest.mark.parametrize("kind", ["scm", "mined"])
    def test_unvalidated_path_matches_validated(self, bundle, kind):
        # the engine runner's validate=False fast path must produce the
        # exact bits of the public validated entry
        model = models_for(bundle)[kind]
        x = bundle.encoded[:20]
        sweep = candidate_sweep(x, np.random.default_rng(9), 0.1, m=4)
        assert_bit_identical(
            model.repair_batch(x, sweep, validate=False),
            model.repair_batch(x, sweep),
            context=f"{kind} validate=False parity")

    def test_scm_repair_is_idempotent(self, bundle):
        # a repaired sweep is already causally consistent: repairing it
        # again must be the identity (the SCM equations are acyclic)
        model = ScmCausalModel(bundle.encoder)
        x = bundle.encoded[:25]
        sweep = candidate_sweep(x, np.random.default_rng(3), 0.1, m=4)
        repaired = model.repair_batch(x, sweep)
        assert_bit_identical(
            model.repair_batch(x, repaired), repaired,
            context="scm idempotence")

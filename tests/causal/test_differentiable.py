"""Differentiable causal surrogates: gradients, repair semantics, dispatch."""

import numpy as np
import pytest

from repro.causal import (
    MinedCausalModel,
    MinedLossSurrogate,
    ScmLossSurrogate,
    causal_loss_surrogate,
    fit_causal,
)
from repro.data import load_dataset
from repro.nn import Tensor
from tests.helpers.parity import assert_grad_matches_fd


@pytest.fixture(scope="module")
def fitted():
    bundle = load_dataset("adult", n_instances=300, seed=0)
    x, y = bundle.split("train")
    scm = fit_causal("scm", bundle.encoder, x, y)
    mined = fit_causal("mined", bundle.encoder, x, y)
    return bundle, x, scm, mined


class TestScmLossSurrogate:
    def test_identity_pays_nothing(self, fitted):
        # x == x_cf: no cause moved, every monotone/floor bound holds on
        # real data, so the abduct->re-predict residual gap is zero
        _, x, scm, _ = fitted
        surrogate = ScmLossSurrogate(scm)
        assert surrogate.penalty(x, Tensor(x.copy())).item() == pytest.approx(
            0.0, abs=1e-12)

    def test_gradient_matches_finite_differences(self, fitted):
        _, x, scm, _ = fitted
        surrogate = ScmLossSurrogate(scm)
        x_cf = np.random.default_rng(3).random(x[:6].shape)
        assert_grad_matches_fd(lambda t: surrogate.penalty(x[:6], t), x_cf,
                               context="ScmLossSurrogate.penalty")

    def test_monotone_violation_penalised(self, fitted):
        bundle, x, scm, _ = fitted
        surrogate = ScmLossSurrogate(scm)
        younger = x.copy()
        younger[:, bundle.encoder.column_of("age")] -= 0.3
        assert surrogate.penalty(x, Tensor(younger)).item() > 0.0

    def test_probe_classifies_additive_equations(self, fitted):
        # adult's single additive equation (hours <- occupation, gender)
        # has an affine skeleton, so it must take the graph path
        _, _, scm, _ = fitted
        surrogate = ScmLossSurrogate(scm)
        additive = {eq.label for eq in scm.equations if eq.mode == "additive"}
        assert set(surrogate._graph_safe) == additive
        assert all(surrogate._graph_safe.values())

    def test_rejects_wrong_model_type(self, fitted):
        _, _, _, mined = fitted
        with pytest.raises(TypeError, match="ScmCausalModel"):
            ScmLossSurrogate(mined)

    def test_fingerprint_delegates(self, fitted):
        _, _, scm, _ = fitted
        assert ScmLossSurrogate(scm).fingerprint() == scm.fingerprint()


class TestMinedLossSurrogate:
    def test_penalty_nonnegative_and_differentiable(self, fitted):
        _, x, _, mined = fitted
        surrogate = MinedLossSurrogate(mined)
        x_cf = np.random.default_rng(4).random(x[:6].shape)
        grad = assert_grad_matches_fd(
            lambda t: surrogate.penalty(x[:6], t), x_cf,
            context="MinedLossSurrogate.penalty")
        assert surrogate.penalty(x[:6], Tensor(x_cf)).item() >= 0.0
        assert np.isfinite(grad).all()

    def test_raising_effect_reduces_penalty(self, fitted):
        # moving a cause up puts a floor under the effect; raising the
        # effect toward that floor must shrink the squared hinge
        bundle, x, _, mined = fitted
        surrogate = MinedLossSurrogate(mined)
        cause, effect, _ = mined.relations[0]
        moved = x[:32].copy()
        column = bundle.encoder.column_of(effect)
        low = surrogate.penalty(x[:32], Tensor(moved)).item()
        lowered = moved.copy()
        lowered[:, column] = np.clip(lowered[:, column] - 0.4, 0.0, 1.0)
        assert surrogate.penalty(x[:32], Tensor(lowered)).item() > low

    def test_requires_fitted_model(self, fitted):
        bundle, _, _, _ = fitted
        with pytest.raises(RuntimeError, match="not fitted"):
            MinedLossSurrogate(MinedCausalModel(bundle.encoder))

    def test_rejects_wrong_model_type(self, fitted):
        _, _, scm, _ = fitted
        with pytest.raises(TypeError, match="MinedCausalModel"):
            MinedLossSurrogate(scm)

    def test_fingerprint_delegates(self, fitted):
        _, _, _, mined = fitted
        assert MinedLossSurrogate(mined).fingerprint() == mined.fingerprint()


class TestDispatch:
    def test_wraps_by_model_type(self, fitted):
        _, _, scm, mined = fitted
        assert isinstance(causal_loss_surrogate(scm), ScmLossSurrogate)
        assert isinstance(causal_loss_surrogate(mined), MinedLossSurrogate)

    def test_unknown_model_rejected(self):
        with pytest.raises(TypeError, match="no loss surrogate"):
            causal_loss_surrogate(object())

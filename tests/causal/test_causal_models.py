"""Unit tests for the causal protocol: abduction, intervention, repair
semantics, mining, persistence and the factory."""

import numpy as np
import pytest

from repro.causal import (
    CAUSAL_NAMES,
    MinedCausalModel,
    ScmCausalModel,
    StructuralEquation,
    build_causal,
    causal_from_state,
    fit_causal,
    scm_equations,
)
from repro.constraints import OrdinalImplicationConstraint
from repro.data import EDUCATION_MIN_AGE, load_dataset
from repro.utils.validation import SchemaMismatchError


@pytest.fixture(scope="module")
def adult():
    return load_dataset("adult", n_instances=1200, seed=0)


@pytest.fixture(scope="module")
def law():
    return load_dataset("law_school", n_instances=1200, seed=0)


def encoded_row(bundle, **overrides):
    """One encoded row with raw-value overrides applied via the frame."""
    frame = bundle.encoder.inverse_transform(bundle.encoded[:1])
    columns = {name: frame[name].copy() for name in frame.column_names}
    for name, value in overrides.items():
        columns[name][0] = value
    from repro.data import TabularFrame

    return bundle.encoder.transform(TabularFrame(columns))


class TestEquations:
    def test_every_registry_dataset_has_equations(self):
        for dataset in ("adult", "kdd_census", "law_school"):
            equations = scm_equations(dataset)
            assert len(equations) >= 3
            labels = [eq.label for eq in equations]
            assert len(labels) == len(set(labels))

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="no structural equations"):
            scm_equations("mordor")

    def test_monotone_rejects_predict(self):
        with pytest.raises(ValueError, match="monotone"):
            StructuralEquation("age", ("education",), lambda v: v, mode="monotone")

    def test_additive_requires_predict(self):
        with pytest.raises(ValueError, match="needs predict"):
            StructuralEquation("age", ("education",), None, mode="additive")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            StructuralEquation("age", mode="psychic")

    def test_describe_is_readable(self):
        equation = scm_equations("adult")[0]
        assert "age" in equation.describe()
        assert "floor" in equation.describe()


class TestScmSemantics:
    def test_intervening_on_education_lifts_young_age_to_the_minimum(self, adult):
        # a 19-year-old cannot hold a doctorate: the do() on education
        # must push age up to the SCM's attainment floor
        x = encoded_row(adult, age=19.0, education="hs_grad")
        out = adult.encoder.inverse_transform(
            ScmCausalModel(adult.encoder).intervene(x, {"education": "doctorate"}))
        assert out["education"][0] == "doctorate"
        assert out["age"][0] >= EDUCATION_MIN_AGE["doctorate"]

    def test_intervention_never_lowers_age(self, adult):
        # time moves forward: do(education=school) must not make the
        # individual younger even though the floor would allow it
        x = encoded_row(adult, age=48.0, education="masters")
        out = adult.encoder.inverse_transform(
            ScmCausalModel(adult.encoder).intervene(x, {"education": "school"}))
        assert out["age"][0] >= 48.0 - 1e-6

    def test_intervened_feature_is_severed(self, adult):
        # do(hours) pins hours even though its occupation cause moved
        x = encoded_row(adult, occupation="blue_collar", hours_per_week=30.0)
        model = ScmCausalModel(adult.encoder)
        out = adult.encoder.inverse_transform(model.intervene(
            x, {"occupation": "professional", "hours_per_week": 30.0}))
        assert out["hours_per_week"][0] == pytest.approx(30.0, abs=1e-6)

    def test_hours_follow_occupation_with_abducted_noise(self, adult):
        # moving occupation re-predicts hours but keeps the individual's
        # own residual: the delta matches the equation coefficients
        from repro.data.adult import HOURS_EQUATION

        x = encoded_row(adult, occupation="blue_collar", hours_per_week=45.0)
        model = ScmCausalModel(adult.encoder)
        out = adult.encoder.inverse_transform(
            model.intervene(x, {"occupation": "professional"}))
        rank_delta = 4  # blue_collar (0) -> professional (4)
        expected = 45.0 + HOURS_EQUATION["per_occupation_rank"] * rank_delta
        assert out["hours_per_week"][0] == pytest.approx(expected, abs=1e-6)

    def test_abduct_recovers_additive_residuals(self, adult):
        model = ScmCausalModel(adult.encoder)
        x = adult.encoded[:50]
        residuals = model.abduct(x)
        assert "hours_per_week<-occupation,gender" in residuals
        assert all(len(values) == 50 for values in residuals.values())
        # the data respects every floor, so floor slack is non-negative
        assert (residuals["age<-education"] >= 0).all()
        # monotone equations carry no noise
        np.testing.assert_array_equal(residuals["age<-self"], np.zeros(50))

    def test_repair_enforces_education_age_floor(self, adult):
        # a candidate that jumps to doctorate at age 20 is repaired to
        # the attainment age — the Mahajan-style causal consistency the
        # paper's Eq. 2 encodes
        x = encoded_row(adult, age=20.0, education="hs_grad")
        candidate = encoded_row(adult, age=20.0, education="doctorate")
        model = ScmCausalModel(adult.encoder)
        repaired = adult.encoder.inverse_transform(model.repair(x, candidate))
        assert repaired["age"][0] >= EDUCATION_MIN_AGE["doctorate"]
        assert model.score(x, candidate)[0] > 0

    def test_equations_validate_against_schema(self, adult):
        with pytest.raises(KeyError, match="not in the schema"):
            ScmCausalModel(adult.encoder, equations=(
                StructuralEquation("mithril", mode="monotone"),))
        with pytest.raises(ValueError, match="immutable"):
            ScmCausalModel(adult.encoder, equations=(
                StructuralEquation("gender", mode="monotone"),))
        with pytest.raises(ValueError, match="categorical"):
            ScmCausalModel(adult.encoder, equations=(
                StructuralEquation("education", mode="monotone"),))

    def test_intervene_unknown_target_raises(self, adult):
        with pytest.raises(KeyError, match="not in the schema"):
            ScmCausalModel(adult.encoder).intervene(
                adult.encoded[:2], {"palantir": 1.0})


class TestMinedSemantics:
    def test_fit_mines_the_paper_relation_on_law(self, law):
        x_train, y_train = law.split("train")
        model = MinedCausalModel(law.encoder).fit(x_train, y_train)
        pairs = {(cause, effect) for cause, effect, _ in model.relations}
        assert ("tier", "lsat") in pairs

    def test_fit_drops_reverse_duplicate_relations(self, law):
        x_train, _ = law.split("train")
        model = MinedCausalModel(law.encoder).fit(x_train)
        pairs = {(cause, effect) for cause, effect, _ in model.relations}
        assert not any((effect, cause) in pairs for cause, effect in pairs)

    def test_repaired_candidates_satisfy_the_constraint(self, law):
        # the whole point of the monotone repair: the matching
        # OrdinalImplicationConstraint holds on repaired output
        model = MinedCausalModel(law.encoder, relations=[("tier", "lsat", 0.05)])
        constraint = OrdinalImplicationConstraint(
            law.encoder, "tier", "lsat", slope=0.05)
        x = law.encoded[:60]
        rng = np.random.default_rng(0)
        raw = np.clip(x + rng.normal(0.0, 0.2, x.shape), 0.0, 1.0)
        # keep rows with headroom: a repair clamped at the encoded
        # ceiling cannot satisfy a strict increase within the domain
        repaired = model.repair(x, raw)
        headroom = repaired[:, law.encoder.column_of("lsat")] < 1.0
        assert headroom.sum() > 20
        assert constraint.satisfied(x[headroom], repaired[headroom]).all()

    def test_repair_never_leaves_the_encoded_box(self, law):
        # the lift is clamped at the encoded ceiling, so repaired
        # candidates stay inside [0, 1] like every other candidate source
        model = MinedCausalModel(law.encoder, relations=[("tier", "lsat", 0.9)])
        x = law.encoded[:40]
        candidate = x.copy()
        tier_col = law.encoder.column_of("tier")
        candidate[:, tier_col] = 1.0  # maximal cause jump, huge slope
        repaired = model.repair(x, candidate)
        assert repaired[:, law.encoder.column_of("lsat")].max() <= 1.0

    def test_cause_down_is_left_alone(self, law):
        model = MinedCausalModel(law.encoder, relations=[("tier", "lsat", 0.05)])
        x = law.encoded[:20]
        candidate = x.copy()
        tier_col = law.encoder.column_of("tier")
        candidate[:, tier_col] = np.maximum(candidate[:, tier_col] - 0.3, 0.0)
        np.testing.assert_array_equal(model.repair(x, candidate), candidate)

    def test_unfitted_repair_raises(self, law):
        model = MinedCausalModel(law.encoder)
        with pytest.raises(RuntimeError, match="not fitted"):
            model.repair(law.encoded[:2], law.encoded[:2])

    def test_empty_mining_result_is_identity(self, law):
        model = MinedCausalModel(law.encoder, relations=[])
        x = law.encoded[:10]
        candidate = np.clip(x + 0.1, 0.0, 1.0)
        np.testing.assert_array_equal(model.repair(x, candidate), candidate)

    def test_relation_validation(self, law):
        with pytest.raises(ValueError, match="continuous"):
            MinedCausalModel(law.encoder, relations=[("tier", "race", 0.1)])
        with pytest.raises(KeyError, match="not in the schema"):
            MinedCausalModel(law.encoder, relations=[("palantir", "lsat", 0.1)])

    def test_intervene_applies_action_then_repairs(self, law):
        model = MinedCausalModel(law.encoder, relations=[("tier", "lsat", 0.05)])
        x = law.encoded[:5]
        out = model.intervene(x, {"tier": 6.0})
        frame = law.encoder.inverse_transform(out)
        assert (frame["tier"] == 6.0).all()
        # lsat floor rose for every row whose tier went up
        lsat_col = law.encoder.column_of("lsat")
        went_up = law.encoder.inverse_transform(x)["tier"] < 6.0
        assert (out[went_up, lsat_col] >= x[went_up, lsat_col]).all()


class TestPersistence:
    @pytest.mark.parametrize("name", CAUSAL_NAMES)
    def test_state_round_trip_preserves_fingerprint(self, adult, name):
        x_train, y_train = adult.split("train")
        model = fit_causal(name, adult.encoder, x_train, y_train)
        rebuilt = causal_from_state(model.get_state(), adult.encoder)
        assert rebuilt.fingerprint() == model.fingerprint()
        x = adult.encoded[:10]
        sweep = np.clip(
            x[:, None, :]
            + np.random.default_rng(1).normal(0.0, 0.1, (10, 3, x.shape[1])),
            0.0, 1.0)
        np.testing.assert_array_equal(
            rebuilt.repair_batch(x, sweep), model.repair_batch(x, sweep))

    def test_fingerprint_differs_across_models(self, adult):
        x_train, _ = adult.split("train")
        scm = fit_causal("scm", adult.encoder, x_train)
        mined = fit_causal("mined", adult.encoder, x_train)
        assert scm.fingerprint() != mined.fingerprint()

    def test_mined_fingerprint_tracks_relations(self, adult):
        one = MinedCausalModel(adult.encoder, relations=[("education", "age", 0.02)])
        two = MinedCausalModel(adult.encoder, relations=[("education", "age", 0.04)])
        assert one.fingerprint() != two.fingerprint()

    def test_from_state_rejects_wrong_schema(self, adult, law):
        model = ScmCausalModel(adult.encoder)
        with pytest.raises(ValueError, match="schema"):
            causal_from_state(model.get_state(), law.encoder)

    def test_unknown_state_kind_raises(self, adult):
        with pytest.raises(KeyError, match="unknown causal state kind"):
            causal_from_state({"kind": "astrology"}, adult.encoder)

    def test_custom_equation_list_refuses_to_persist(self, adult):
        # from_state rebuilds the dataset defaults, so persisting a
        # custom list would silently load as a different model
        model = ScmCausalModel(
            adult.encoder, equations=(StructuralEquation("age", mode="monotone"),))
        with pytest.raises(ValueError, match="custom equation list"):
            model.get_state()

    def test_custom_equation_model_still_fingerprints(self, adult):
        # an unpersistable model must still be hostable: fingerprint()
        # (used by engine caches and the serving layer) works and is
        # distinct from the dataset-default model's
        custom = ScmCausalModel(
            adult.encoder, equations=(StructuralEquation("age", mode="monotone"),))
        assert custom.fingerprint() != ScmCausalModel(adult.encoder).fingerprint()


class TestFactoryAndValidation:
    def test_build_causal_names(self, adult):
        assert isinstance(build_causal("scm", adult.encoder), ScmCausalModel)
        assert isinstance(build_causal("mined", adult.encoder), MinedCausalModel)
        with pytest.raises(KeyError, match="unknown causal model"):
            build_causal("tarot", adult.encoder)

    @pytest.mark.parametrize("name", CAUSAL_NAMES)
    def test_wrong_width_inputs_raise_schema_error(self, adult, name):
        x_train, _ = adult.split("train")
        model = fit_causal(name, adult.encoder, x_train)
        x = adult.encoded[:4]
        good = np.repeat(x[:, None, :], 2, axis=1)
        with pytest.raises(SchemaMismatchError):
            model.repair_batch(x[:, :-1], good)
        with pytest.raises(SchemaMismatchError):
            model.repair_batch(x, good[:, :, :-1])
        with pytest.raises(ValueError, match="rows"):
            model.repair_batch(x[:2], good)
        with pytest.raises(ValueError, match="tensor"):
            model.repair_batch(x, x)

"""Tests for RNG plumbing, table rendering and validation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    SeedSequenceRegistry,
    check_2d,
    check_binary_labels,
    check_positive,
    check_probability,
    format_number,
    make_rng,
    render_table,
    spawn,
)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_spawn_children_differ(self):
        children = spawn(make_rng(0), 3)
        values = [child.random() for child in children]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [c.random() for c in spawn(make_rng(1), 2)]
        b = [c.random() for c in spawn(make_rng(1), 2)]
        assert a == b

    def test_registry_name_isolation(self):
        registry = SeedSequenceRegistry(42)
        assert registry.get("data").random() != registry.get("model").random()

    def test_registry_order_independent(self):
        first = SeedSequenceRegistry(42)
        value_data = first.get("data").random()
        second = SeedSequenceRegistry(42)
        second.get("model")
        assert second.get("data").random() == value_data


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.50" in text
        assert "-" in lines[-1]  # None cell

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number(3) == "3"
        assert format_number(3.14159, digits=3) == "3.142"
        assert format_number(float("nan")) == "-"
        assert format_number("text") == "text"
        assert format_number(True) == "True"

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_property_column_alignment(self, values):
        rows = [values, values]
        text = render_table([f"c{i}" for i in range(len(values))], rows)
        lines = text.splitlines()
        assert len({len(line) for line in lines[0:1] + lines[2:]}) == 1


class TestValidation:
    def test_check_2d_accepts_matrix(self):
        out = check_2d([[1.0, 2.0]])
        assert out.shape == (1, 2)

    def test_check_2d_rejects_vector(self):
        with pytest.raises(ValueError):
            check_2d(np.zeros(3))

    def test_check_2d_rejects_empty(self):
        with pytest.raises(ValueError):
            check_2d(np.zeros((0, 3)))

    def test_check_2d_rejects_nan(self):
        with pytest.raises(ValueError):
            check_2d(np.array([[np.nan, 1.0]]))

    def test_check_binary_labels(self):
        out = check_binary_labels([0, 1, 1])
        assert out.dtype == int

    def test_check_binary_labels_rejects_other_values(self):
        with pytest.raises(ValueError):
            check_binary_labels([0, 2])

    def test_check_binary_labels_rejects_2d(self):
        with pytest.raises(ValueError):
            check_binary_labels(np.zeros((2, 2)))

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_check_positive(self):
        assert check_positive(2) == 2.0
        with pytest.raises(ValueError):
            check_positive(0)

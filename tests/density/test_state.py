"""Tests for density state round trips and fingerprints."""

import numpy as np
import pytest

from repro.density import (
    GaussianKdeDensity,
    KnnDensity,
    LatentDensity,
    density_from_state,
)


class _StubVAE:
    def __init__(self, d, latent_dim=3, seed=7):
        rng = np.random.default_rng(seed)
        self.w = rng.normal(size=(d, latent_dim))

    def encode_array(self, x, labels):
        mu = np.asarray(x) @ self.w + np.asarray(labels)[:, None]
        return mu, np.zeros_like(mu)


@pytest.fixture(scope="module")
def reference():
    return np.random.default_rng(0).normal(size=(60, 5))


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(1).normal(size=(11, 5))


class TestRoundTrip:
    def test_knn_roundtrip_bitwise(self, reference, points):
        model = KnnDensity(k_neighbors=4).fit(reference)
        rebuilt = density_from_state(model.get_state())
        assert isinstance(rebuilt, KnnDensity)
        np.testing.assert_array_equal(rebuilt.score(points), model.score(points))

    def test_kde_roundtrip_bitwise(self, reference, points):
        model = GaussianKdeDensity().fit(reference)
        rebuilt = density_from_state(model.get_state())
        np.testing.assert_array_equal(rebuilt.score(points), model.score(points))

    def test_latent_roundtrip_reattaches_vae(self, reference, points):
        vae = _StubVAE(reference.shape[1])
        model = LatentDensity(vae=vae, desired_class=0, k_neighbors=4).fit(reference)
        state = model.get_state()
        rebuilt = density_from_state(state, vae=vae)
        np.testing.assert_array_equal(rebuilt.score(points), model.score(points))
        # state holds the latent reference, never the VAE weights
        assert state["reference"].shape[1] == vae.w.shape[1]

    def test_latent_state_without_vae_cannot_score(self, reference, points):
        vae = _StubVAE(reference.shape[1])
        model = LatentDensity(vae=vae, k_neighbors=4).fit(reference)
        rebuilt = density_from_state(model.get_state())
        with pytest.raises(RuntimeError, match="no VAE"):
            rebuilt.score(points)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown density state"):
            density_from_state({"kind": "histogram"})

    def test_unfitted_state_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KnnDensity().get_state()


class TestFingerprint:
    def test_stable_across_rebuilds(self, reference):
        model = KnnDensity(k_neighbors=4).fit(reference)
        rebuilt = density_from_state(model.get_state())
        assert model.fingerprint() == rebuilt.fingerprint()

    def test_changes_with_reference(self, reference):
        a = KnnDensity(k_neighbors=4).fit(reference)
        b = KnnDensity(k_neighbors=4).fit(reference + 1.0)
        assert a.fingerprint() != b.fingerprint()

    def test_changes_with_params(self, reference):
        a = KnnDensity(k_neighbors=4).fit(reference)
        b = KnnDensity(k_neighbors=5).fit(reference)
        assert a.fingerprint() != b.fingerprint()

    def test_differs_across_kinds(self, reference):
        knn = KnnDensity().fit(reference)
        kde = GaussianKdeDensity().fit(reference)
        assert knn.fingerprint() != kde.fingerprint()

    def test_perf_knobs_do_not_change_the_fingerprint(self, reference):
        # chunk_size shapes memory use, never scores: same-score
        # estimators must agree so store/cache staleness checks hold
        a = GaussianKdeDensity(chunk_size=4096).fit(reference)
        b = GaussianKdeDensity(chunk_size=7).fit(reference)
        assert a.fingerprint() == b.fingerprint()


class TestFitClassDensity:
    def test_fits_on_one_class_only(self, reference):
        from repro.density import fit_class_density

        y = np.zeros(len(reference), dtype=int)
        y[:20] = 1
        model = fit_class_density("knn", reference, y, desired_class=1)
        assert model.n_reference == 20
        manual = KnnDensity().fit(reference[:20])
        probe = reference[:5] + 0.2
        np.testing.assert_array_equal(model.score(probe), manual.score(probe))

"""Tests for the repro.density estimators: scoring, tiling, factory."""

import numpy as np
import pytest

from repro.density import (
    DENSITY_NAMES,
    GaussianKdeDensity,
    KnnDensity,
    LatentDensity,
    build_density,
)


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(0)
    return rng.normal(size=(120, 6))


@pytest.fixture(scope="module")
def sweep():
    rng = np.random.default_rng(1)
    return rng.normal(size=(9, 5, 6))


class _StubVAE:
    """Minimal encode_array twin: a fixed linear map into latent space."""

    def __init__(self, d, latent_dim=3, seed=7):
        rng = np.random.default_rng(seed)
        self.w = rng.normal(size=(d, latent_dim))

    def encode_array(self, x, labels):
        mu = np.asarray(x) @ self.w + np.asarray(labels)[:, None]
        return mu, np.zeros_like(mu)


class TestKnnDensity:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KnnDensity().score(np.zeros((2, 3)))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k_neighbors"):
            KnnDensity(k_neighbors=0)

    def test_score_is_mean_knn_distance(self, reference):
        model = KnnDensity(k_neighbors=4).fit(reference)
        scores = model.score(reference[:10])
        # a reference point has itself at distance 0 among its neighbours
        far = model.score(reference[:10] + 100.0)
        assert scores.shape == (10,)
        assert np.all(far > scores)

    def test_k_clamps_to_reference_size(self):
        tiny = np.arange(6, dtype=float).reshape(3, 2)
        model = KnnDensity(k_neighbors=50).fit(tiny)
        scores = model.score(tiny)
        assert scores.shape == (3,)
        assert np.all(np.isfinite(scores))

    def test_k1_returns_nearest_distance(self, reference):
        model = KnnDensity(k_neighbors=1).fit(reference)
        scores = model.score(reference[:5])
        np.testing.assert_allclose(scores, 0.0, atol=1e-12)

    def test_query_passthrough(self, reference):
        model = KnnDensity(k_neighbors=3).fit(reference)
        distances, indices = model.query(reference[:4], k=2)
        assert distances.shape == (4, 2)
        assert indices.shape == (4, 2)
        np.testing.assert_array_equal(indices[:, 0], np.arange(4))


class TestGaussianKdeDensity:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GaussianKdeDensity().score(np.zeros((2, 3)))

    def test_dense_region_scores_lower(self, reference):
        model = GaussianKdeDensity().fit(reference)
        inside = model.score(reference[:10])
        outside = model.score(reference[:10] + 50.0)
        assert np.all(outside > inside)

    def test_log_density_matches_naive_sum(self):
        rng = np.random.default_rng(3)
        ref = rng.normal(size=(40, 4))
        model = GaussianKdeDensity().fit(ref)
        points = rng.normal(size=(7, 4))
        h = model.bandwidth
        naive = []
        for point in points:
            z = (point[None, :] - ref) / h
            kernel = np.exp(-0.5 * (z**2).sum(axis=1))
            naive.append(
                np.log(kernel.sum())
                - np.log(len(ref))
                - np.log(h).sum()
                - 0.5 * len(h) * np.log(2 * np.pi)
            )
        np.testing.assert_allclose(model.log_density(points), naive, rtol=1e-10)

    def test_constant_feature_does_not_break_bandwidth(self):
        ref = np.random.default_rng(4).normal(size=(30, 3))
        ref[:, 1] = 2.0
        model = GaussianKdeDensity().fit(ref)
        assert np.all(model.bandwidth > 0)
        assert np.isfinite(model.score(ref[:5])).all()

    def test_chunking_matches_unchunked(self, reference):
        whole = GaussianKdeDensity(chunk_size=4096).fit(reference)
        chunked = GaussianKdeDensity(chunk_size=7).fit(reference)
        points = reference[:23] + 0.1
        np.testing.assert_array_equal(whole.score(points), chunked.score(points))

    def test_rejects_bad_bandwidth(self, reference):
        with pytest.raises(ValueError, match="bandwidth"):
            GaussianKdeDensity(bandwidth=np.zeros(reference.shape[1])).fit(reference)

    def test_refit_rederives_auto_bandwidth(self, reference):
        model = GaussianKdeDensity().fit(reference)
        first = model.bandwidth.copy()
        model.fit(reference * 100.0)
        # Scott bandwidths must follow the NEW population's scales
        np.testing.assert_allclose(model.bandwidth, first * 100.0, rtol=1e-9)
        fresh = GaussianKdeDensity().fit(reference * 100.0)
        points = reference[:5] * 100.0
        np.testing.assert_array_equal(model.score(points), fresh.score(points))

    def test_refit_keeps_explicit_bandwidth(self, reference):
        model = GaussianKdeDensity(bandwidth=0.3).fit(reference)
        model.fit(reference * 100.0)
        np.testing.assert_allclose(model.bandwidth, 0.3)


class TestLatentDensity:
    def test_requires_vae(self, reference):
        model = LatentDensity(vae=None)
        with pytest.raises(RuntimeError, match="no VAE"):
            model.fit(reference)

    def test_scores_in_latent_space(self, reference):
        vae = _StubVAE(reference.shape[1])
        model = LatentDensity(vae=vae, desired_class=1, k_neighbors=4).fit(reference)
        # equivalent to knn over the encoded reference
        labels = np.ones(len(reference))
        latents, _ = vae.encode_array(reference, labels)
        manual = KnnDensity(k_neighbors=4).fit(latents)
        points = reference[:8] + 0.3
        expect = manual.score(vae.encode_array(points, np.ones(8))[0])
        np.testing.assert_array_equal(model.score(points), expect)


class TestTiledScoring:
    def test_knn_tiled_matches_loop_bitwise(self, reference, sweep):
        # per-point tree queries: the one-query sweep is exactly the loop
        model = KnnDensity(k_neighbors=5).fit(reference)
        np.testing.assert_array_equal(
            model.score_tiled(sweep), model.score_tiled_loop(sweep))

    @pytest.mark.parametrize("make", [
        lambda ref: GaussianKdeDensity().fit(ref),
        lambda ref: LatentDensity(vae=_StubVAE(ref.shape[1]), k_neighbors=5).fit(ref),
    ])
    def test_matmul_backends_tiled_matches_loop_numerically(
            self, reference, sweep, make):
        # BLAS blocking varies with batch shape, so matmul-backed
        # estimators are equivalent within float tolerance, not bitwise
        model = make(reference)
        np.testing.assert_allclose(
            model.score_tiled(sweep), model.score_tiled_loop(sweep),
            rtol=1e-7, atol=1e-9)

    def test_tiled_rejects_2d(self, reference):
        model = KnnDensity().fit(reference)
        with pytest.raises(ValueError, match="n_rows, n_candidates"):
            model.score_tiled(reference)


class TestFactory:
    def test_builds_every_name(self):
        assert isinstance(build_density("knn"), KnnDensity)
        assert isinstance(build_density("kde"), GaussianKdeDensity)
        assert isinstance(build_density("latent"), LatentDensity)
        assert set(DENSITY_NAMES) == {"knn", "kde", "latent"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown density"):
            build_density("histogram")

    def test_knobs_reach_estimators(self):
        assert build_density("knn", k_neighbors=3).k_neighbors == 3
        assert build_density("latent", k_neighbors=7, desired_class=0).k_neighbors == 7

"""Differentiable density surrogates: gradients, scoring and persistence."""

import types

import numpy as np
import pytest

from repro.core import DensityLossConfig
from repro.density import (
    DifferentiableKde,
    LatentSoftMinDensity,
    build_inloss_density,
    density_from_state,
)
from repro.models import ConditionalVAE
from tests.helpers.parity import assert_grad_matches_fd


@pytest.fixture(scope="module")
def reference():
    return np.random.default_rng(0).random((40, 6))


@pytest.fixture(scope="module")
def candidates():
    return np.random.default_rng(1).random((5, 6))


@pytest.fixture(scope="module")
def vae():
    model = ConditionalVAE(6, np.random.default_rng(2), latent_dim=4)
    model.eval()  # dropout off: penalty/score must be deterministic here
    return model


class TestDifferentiableKde:
    def test_gradient_matches_finite_differences(self, reference, candidates):
        kde = DifferentiableKde().fit(reference)
        assert_grad_matches_fd(kde.penalty, candidates,
                               context="DifferentiableKde.penalty")

    def test_penalty_is_mean_of_scores(self, reference, candidates):
        kde = DifferentiableKde().fit(reference)
        assert kde.penalty(candidates).item() == pytest.approx(
            kde.score(candidates).mean())

    def test_denser_candidates_score_lower(self, reference):
        kde = DifferentiableKde().fit(reference)
        on_manifold = reference[:5]
        off_manifold = np.full((5, 6), 5.0)
        assert kde.penalty(on_manifold).item() < kde.penalty(off_manifold).item()

    def test_state_round_trip(self, reference, candidates):
        kde = DifferentiableKde(bandwidth_scale=1.5, max_reference=32).fit(reference)
        rebuilt = density_from_state(kde.get_state())
        assert isinstance(rebuilt, DifferentiableKde)
        np.testing.assert_array_equal(rebuilt.score(candidates),
                                      kde.score(candidates))
        assert rebuilt.fingerprint() == kde.fingerprint()

    def test_fingerprint_tracks_bandwidth(self, reference):
        narrow = DifferentiableKde(bandwidth_scale=0.5).fit(reference)
        wide = DifferentiableKde(bandwidth_scale=2.0).fit(reference)
        assert narrow.fingerprint() != wide.fingerprint()
        again = DifferentiableKde(bandwidth_scale=0.5).fit(reference)
        assert again.fingerprint() == narrow.fingerprint()

    def test_subsample_is_bounded_and_deterministic(self, reference):
        small = DifferentiableKde(max_reference=16).fit(reference)
        assert small.n_reference == 16
        again = DifferentiableKde(max_reference=16).fit(reference)
        np.testing.assert_array_equal(again.reference_, small.reference_)

    def test_validation(self, reference):
        with pytest.raises(ValueError, match="bandwidth_scale"):
            DifferentiableKde(bandwidth_scale=0.0)
        with pytest.raises(ValueError, match="max_reference"):
            DifferentiableKde(max_reference=0)
        with pytest.raises(ValueError, match="non-empty"):
            DifferentiableKde().fit(reference[:0])
        with pytest.raises(RuntimeError, match="not fitted"):
            DifferentiableKde().penalty(reference)


class TestLatentSoftMinDensity:
    def test_gradient_matches_finite_differences(self, vae, reference, candidates):
        latent = LatentSoftMinDensity(vae=vae, temperature=0.1).fit(reference)
        assert_grad_matches_fd(latent.penalty, candidates,
                               context="LatentSoftMinDensity.penalty")

    def test_penalty_is_mean_of_scores(self, vae, reference, candidates):
        latent = LatentSoftMinDensity(vae=vae).fit(reference)
        assert latent.penalty(candidates).item() == pytest.approx(
            latent.score(candidates).mean())

    def test_reference_rows_are_near_zero_cost(self, vae, reference):
        # a reference row's soft-min latent distance to itself is ~0
        latent = LatentSoftMinDensity(vae=vae, temperature=0.01).fit(reference)
        scores = latent.score(reference[:8])
        assert np.all(scores < 0.05)

    def test_training_flag_restored(self, vae, reference, candidates):
        latent = LatentSoftMinDensity(vae=vae).fit(reference)
        vae.train()
        try:
            latent.score(candidates)
            assert vae.training is True
        finally:
            vae.eval()

    def test_state_round_trip_reattaches_vae(self, vae, reference, candidates):
        latent = LatentSoftMinDensity(vae=vae, temperature=0.2).fit(reference)
        rebuilt = density_from_state(latent.get_state(), vae=vae)
        assert isinstance(rebuilt, LatentSoftMinDensity)
        assert rebuilt.temperature == 0.2
        np.testing.assert_array_equal(rebuilt.score(candidates),
                                      latent.score(candidates))

    def test_validation(self, vae, reference):
        with pytest.raises(ValueError, match="requires a vae"):
            LatentSoftMinDensity().fit(reference)
        with pytest.raises(ValueError, match="temperature"):
            LatentSoftMinDensity(vae=vae, temperature=0.0)
        with pytest.raises(RuntimeError, match="not fitted"):
            LatentSoftMinDensity(vae=vae).penalty(reference)


class TestBuildInlossDensity:
    def test_kde_kind(self):
        config = DensityLossConfig(kind="kde", bandwidth_scale=2.0,
                                   max_reference=32, seed=7)
        model = build_inloss_density(config)
        assert isinstance(model, DifferentiableKde)
        assert model.bandwidth_scale == 2.0
        assert model.max_reference == 32
        assert model.seed == 7

    def test_latent_kind(self, vae):
        config = DensityLossConfig(kind="latent", temperature=0.3)
        model = build_inloss_density(config, vae=vae, desired_class=0)
        assert isinstance(model, LatentSoftMinDensity)
        assert model.vae is vae
        assert model.temperature == 0.3
        assert model.desired_class == 0

    def test_unknown_kind_rejected(self):
        # DensityLossConfig validates eagerly, so an unknown kind can only
        # arrive via a foreign config object
        with pytest.raises(KeyError, match="unknown in-loss density"):
            build_inloss_density(types.SimpleNamespace(kind="nope"))

"""Tests for the ANN density backend: recall, conventions, state, wiring."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.density import (
    DEFAULT_TILE_BUDGET,
    DENSITY_BACKENDS,
    AnnIndex,
    GaussianKdeDensity,
    KnnDensity,
    LatentDensity,
    build_density,
    recall_at_k,
)

#: The measured contract: ANN neighbour sets must overlap the exact ones
#: at least this much on every registry dataset (the at-scale benchmark
#: asserts the same floor before timing anything).
RECALL_FLOOR = 0.9


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(0)
    return rng.normal(size=(400, 6))


class _StubVAE:
    """Minimal encode_array twin: a fixed linear map into latent space."""

    def __init__(self, d, latent_dim=3, seed=7):
        rng = np.random.default_rng(seed)
        self.w = rng.normal(size=(d, latent_dim))

    def encode_array(self, x, labels):
        mu = np.asarray(x) @ self.w + np.asarray(labels)[:, None]
        return mu, np.zeros_like(mu)


class TestAnnIndex:
    # kdd_census encodes to 144 one-hot dimensions, where coarse IVF
    # centroids separate poorly at this tiny reference size — the
    # ann_probes knob widens the scan to hold the floor (the defaults
    # target the at-scale populations the benchmark measures).
    @pytest.mark.parametrize("dataset,probes", [
        ("adult", None), ("kdd_census", 64), ("law_school", None)])
    def test_recall_floor_on_registry_datasets(self, dataset, probes):
        bundle = load_dataset(dataset, n_instances=1500, seed=0)
        reference = bundle.encoded
        rng = np.random.default_rng(1)
        queries = reference[rng.integers(0, len(reference), size=128)]
        queries = queries + rng.normal(0.0, 0.02, size=queries.shape)
        exact = KnnDensity(k_neighbors=10).fit(reference)
        ann = exact.with_backend("ann", ann_probes=probes)
        _, exact_idx = exact.query(queries, k=10, backend="exact")
        _, ann_idx = ann.query(queries, k=10)
        assert recall_at_k(exact_idx, ann_idx) >= RECALL_FLOOR

    def test_duplicate_points_score_zero(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(50, 4))
        reference = np.repeat(base, 12, axis=0)  # every point 12 times
        model = KnnDensity(k_neighbors=5, backend="ann").fit(reference)
        scores = model.score(base)
        # the float32 norm-expansion in the IVF scan leaves ~1e-3 noise
        # on exact-zero distances; what matters is no crash on massive
        # ties and scores pinned (approximately) at zero
        np.testing.assert_allclose(scores, 0.0, atol=1e-2)
        far = model.score(base + 50.0)
        assert np.all(far > 1.0)

    def test_constant_column_reference(self):
        rng = np.random.default_rng(3)
        reference = rng.normal(size=(300, 5))
        reference[:, 2] = 7.0  # degenerate coordinate
        exact = KnnDensity(k_neighbors=6).fit(reference)
        queries = reference[:32] + 0.01
        _, exact_idx = exact.query(queries, k=6, backend="exact")
        _, ann_idx = exact.query(queries, k=6, backend="ann")
        assert recall_at_k(exact_idx, ann_idx) >= RECALL_FLOOR

    def test_k_exceeding_reference_pads_like_ckdtree(self):
        reference = np.arange(8, dtype=float).reshape(4, 2)
        index = AnnIndex(seed=0).fit(reference)
        dist, idx = index.query(reference[:2], k=7)
        assert dist.shape == (2, 7) and idx.shape == (2, 7)
        # cKDTree convention: missing neighbours are inf at index n
        assert np.all(np.isinf(dist[:, 4:]))
        assert np.all(idx[:, 4:] == 4)
        assert np.all(np.isfinite(dist[:, :4]))

    def test_1d_query_and_k1_squeeze(self, reference):
        index = AnnIndex(seed=0).fit(reference)
        dist, idx = index.query(reference[3], k=4)
        assert dist.shape == (4,) and idx.shape == (4,)
        dist1, idx1 = index.query(reference[:5], k=1)
        assert dist1.shape == (5,) and idx1.shape == (5,)
        np.testing.assert_allclose(dist1, 0.0, atol=1e-9)

    def test_self_queries_find_themselves(self, reference):
        index = AnnIndex(seed=0).fit(reference)
        dist, idx = index.query(reference, k=1)
        np.testing.assert_array_equal(idx, np.arange(len(reference)))

    def test_recall_helper_bounds(self):
        exact = np.array([[0, 1, 2], [3, 4, 5]])
        assert recall_at_k(exact, exact) == 1.0
        assert recall_at_k(exact, exact[:, ::-1]) == 1.0  # order-free
        miss = np.array([[0, 1, 9], [9, 9, 9]])
        assert recall_at_k(exact, miss) == pytest.approx(2 / 6)


class TestBackendWiring:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown density backend"):
            KnnDensity(backend="faiss")
        assert DENSITY_BACKENDS == ("exact", "ann")

    def test_exact_state_has_no_backend_keys(self, reference):
        state = KnnDensity(k_neighbors=4).fit(reference).get_state()
        assert "backend" not in state
        assert not any(key.startswith("ann_") for key in state)

    def test_ann_state_roundtrip(self, reference):
        model = KnnDensity(k_neighbors=4, backend="ann", ann_seed=3)
        model = model.fit(reference)
        state = model.get_state()
        assert state["backend"] == "ann"
        clone = KnnDensity.from_state(state)
        assert clone.backend == "ann" and clone.ann_seed == 3
        np.testing.assert_array_equal(
            clone.score(reference[:10]), model.score(reference[:10]))

    def test_backend_changes_fingerprint(self, reference):
        # ANN answers are approximate, so a backend switch must never
        # serve cached exact results (or vice versa): the fingerprint
        # includes the backend exactly when it is non-exact
        exact = KnnDensity(k_neighbors=4).fit(reference)
        ann = exact.with_backend("ann")
        assert ann.fingerprint() != exact.fingerprint()

    def test_with_backend_exact_roundtrip(self, reference):
        model = KnnDensity(k_neighbors=4).fit(reference)
        back = model.with_backend("ann").with_backend("exact")
        assert back.backend == "exact"
        assert back.fingerprint() == model.fingerprint()
        probe = reference[:8] + 0.03
        np.testing.assert_array_equal(back.score(probe), model.score(probe))

    def test_with_backend_shares_reference(self, reference):
        exact = KnnDensity(k_neighbors=4).fit(reference)
        ann = exact.with_backend("ann")
        assert ann is not exact and ann.backend == "ann"
        assert ann.reference_ is exact.reference_
        assert ann.score(reference[:5]).shape == (5,)

    def test_build_density_backend(self, reference):
        model = build_density("knn", k_neighbors=4, backend="ann")
        assert model.backend == "ann"
        with pytest.raises(ValueError, match="backend"):
            build_density("kde", backend="ann")

    def test_latent_density_forwards_backend(self, reference):
        vae = _StubVAE(reference.shape[1])
        exact = LatentDensity(vae=vae, k_neighbors=4).fit(reference)
        ann = exact.with_backend("ann")
        assert ann.backend == "ann"
        probe = reference[:6] + 0.05
        exact_scores = exact.score(probe)
        ann_scores = ann.score(probe)
        assert ann_scores.shape == exact_scores.shape
        # latent reference is tiny here, so ANN should agree closely
        assert np.mean(np.isclose(ann_scores, exact_scores)) >= RECALL_FLOOR

    def test_face_runs_with_ann_backend(self):
        from repro.baselines import FACEExplainer
        from repro.models import BlackBoxClassifier, train_classifier

        bundle = load_dataset("adult", n_instances=900, seed=0)
        x_train, y_train = bundle.split("train")
        blackbox = BlackBoxClassifier(
            bundle.encoder.n_encoded, np.random.default_rng(0))
        train_classifier(blackbox, x_train, y_train, epochs=5,
                         rng=np.random.default_rng(0))
        face = FACEExplainer(bundle.encoder, blackbox, seed=0,
                             max_vertices=300, density_backend="ann")
        assert face.density_backend == "ann"
        face.fit(x_train, y_train)
        assert face._density.backend == "ann"
        x_test, _ = bundle.split("test")
        negatives = x_test[blackbox.predict(x_test) == 0][:4]
        cf = face.generate(negatives)
        assert cf.shape == negatives.shape


class TestTileBudget:
    def test_score_tiled_parity_under_tiny_budget(self, reference):
        sweep = np.random.default_rng(5).normal(size=(7, 11, 6))
        full = KnnDensity(k_neighbors=4).fit(reference)
        tiled = KnnDensity(k_neighbors=4, tile_budget=256).fit(reference)
        np.testing.assert_array_equal(
            tiled.score_tiled(sweep), full.score_tiled(sweep))

    def test_kde_chunked_parity(self, reference):
        sweep = np.random.default_rng(6).normal(size=(5, 9, 6))
        full = GaussianKdeDensity().fit(reference)
        tiled = GaussianKdeDensity(tile_budget=128).fit(reference)
        np.testing.assert_allclose(
            tiled.score_tiled(sweep), full.score_tiled(sweep), rtol=1e-12)

    def test_default_budget_exported(self, reference):
        assert DEFAULT_TILE_BUDGET == 1 << 24
        # even a degenerate one-element budget only shrinks the chunks
        sweep = np.random.default_rng(7).normal(size=(3, 4, 6))
        full = KnnDensity(k_neighbors=4).fit(reference)
        tiny = KnnDensity(k_neighbors=4, tile_budget=1).fit(reference)
        np.testing.assert_array_equal(
            tiny.score_tiled(sweep), full.score_tiled(sweep))

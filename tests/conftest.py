"""Root test configuration: make ``tests.helpers`` importable.

The suite runs with ``--import-mode=importlib`` and no ``__init__.py``
files; shared helper modules under ``tests/helpers/`` resolve as
namespace packages, which requires the repository root on ``sys.path``
regardless of how pytest was invoked.
"""

import pathlib
import sys

_REPO_ROOT = str(pathlib.Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

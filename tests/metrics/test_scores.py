"""Tests for validity, feasibility and sparsity scores."""

import numpy as np
import pytest

from repro.constraints import ConstraintSet, MonotonicIncreaseConstraint
from repro.data import load_dataset
from repro.metrics import (
    changed_features,
    feasibility_score,
    sparsity_score,
    validity_score,
)
from repro.models import BlackBoxClassifier, train_classifier


@pytest.fixture(scope="module")
def setup():
    bundle = load_dataset("adult", n_instances=1200, seed=0)
    x_train, y_train = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
    train_classifier(blackbox, x_train, y_train, epochs=10,
                     rng=np.random.default_rng(0))
    return bundle, blackbox, x_train


class TestValidity:
    def test_perfect_when_desired_matches_predictions(self, setup):
        bundle, blackbox, x_train = setup
        desired = blackbox.predict(x_train[:50])
        assert validity_score(blackbox, x_train[:50], desired) == 100.0

    def test_zero_when_desired_opposite(self, setup):
        bundle, blackbox, x_train = setup
        desired = 1 - blackbox.predict(x_train[:50])
        assert validity_score(blackbox, x_train[:50], desired) == 0.0

    def test_empty_input(self, setup):
        bundle, blackbox, x_train = setup
        assert validity_score(blackbox, x_train[:0], np.array([], dtype=int)) == 0.0


class TestFeasibility:
    def test_identity_cf_is_feasible(self, setup):
        bundle, _, x_train = setup
        constraints = ConstraintSet(
            [MonotonicIncreaseConstraint(bundle.encoder, "age")])
        assert feasibility_score(constraints, x_train[:30], x_train[:30].copy()) == 100.0

    def test_age_decrease_scores_zero(self, setup):
        bundle, _, x_train = setup
        constraints = ConstraintSet(
            [MonotonicIncreaseConstraint(bundle.encoder, "age")])
        x = x_train[:30]
        x_cf = x.copy()
        x_cf[:, bundle.encoder.column_of("age")] -= 0.1
        assert feasibility_score(constraints, x, x_cf) == 0.0

    def test_partial(self, setup):
        bundle, _, x_train = setup
        constraints = ConstraintSet(
            [MonotonicIncreaseConstraint(bundle.encoder, "age")])
        x = x_train[:10]
        x_cf = x.copy()
        x_cf[:5, bundle.encoder.column_of("age")] -= 0.1
        assert feasibility_score(constraints, x, x_cf) == 50.0


class TestSparsityAndChanges:
    def test_identity_has_zero_sparsity(self, setup):
        bundle, _, x_train = setup
        assert sparsity_score(x_train[:20], x_train[:20].copy(), bundle.encoder) == 0.0

    def test_counts_continuous_change(self, setup):
        bundle, _, x_train = setup
        x = x_train[:10]
        x_cf = x.copy()
        x_cf[:, bundle.encoder.column_of("age")] += 0.1
        assert sparsity_score(x, x_cf, bundle.encoder) == 1.0

    def test_ignores_subthreshold_drift(self, setup):
        bundle, _, x_train = setup
        x = x_train[:10]
        x_cf = x + 1e-4  # below the 0.005 tolerance everywhere
        counts = changed_features(x, x_cf, bundle.encoder)
        # categorical argmax and binary rounding are unaffected by 1e-4
        assert counts.max() == 0

    def test_counts_categorical_flip(self, setup):
        bundle, _, x_train = setup
        x = x_train[:10]
        x_cf = x.copy()
        block = bundle.encoder.feature_slices["education"]
        x_cf[:, block] = 0.0
        # move everyone to a fixed category different from the original argmax
        original = np.argmax(x[:, block], axis=1)
        target = (original + 1) % (block.stop - block.start)
        x_cf[np.arange(10), block.start + target] = 1.0
        assert sparsity_score(x, x_cf, bundle.encoder) == 1.0

    def test_counts_binary_flip(self, setup):
        bundle, _, x_train = setup
        x = x_train[:10]
        x_cf = x.copy()
        column = bundle.encoder.column_of("native_us")
        x_cf[:, column] = 1.0 - np.round(x[:, column])
        assert sparsity_score(x, x_cf, bundle.encoder) == 1.0

    def test_empty_input(self, setup):
        bundle, _, x_train = setup
        assert sparsity_score(x_train[:0], x_train[:0], bundle.encoder) == 0.0

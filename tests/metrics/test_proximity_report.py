"""Tests for proximity metrics and the MethodReport bundle."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.metrics import (
    MethodReport,
    ProximityStats,
    categorical_proximity,
    continuous_proximity,
    evaluate_counterfactuals,
)
from repro.models import BlackBoxClassifier, train_classifier


@pytest.fixture(scope="module")
def setup():
    bundle = load_dataset("adult", n_instances=1200, seed=0)
    x_train, y_train = bundle.split("train")
    blackbox = BlackBoxClassifier(bundle.encoder.n_encoded, np.random.default_rng(0))
    train_classifier(blackbox, x_train, y_train, epochs=10,
                     rng=np.random.default_rng(0))
    stats = ProximityStats(bundle.encoder).fit(x_train)
    return bundle, blackbox, x_train, stats


class TestProximityStats:
    def test_requires_fit(self, setup):
        bundle, _, _, _ = setup
        with pytest.raises(RuntimeError):
            ProximityStats(bundle.encoder).mad("age")

    def test_mads_positive(self, setup):
        bundle, _, _, stats = setup
        for spec in bundle.schema.continuous:
            assert stats.mad(spec.name) > 0

    def test_constant_column_falls_back_to_one(self, setup):
        bundle, _, x_train, _ = setup
        frozen = x_train.copy()
        frozen[:, bundle.encoder.column_of("age")] = 0.5
        stats = ProximityStats(bundle.encoder).fit(frozen)
        assert stats.mad("age") == 1.0


class TestContinuousProximity:
    def test_identity_is_zero(self, setup):
        bundle, _, x_train, stats = setup
        x = x_train[:20]
        assert continuous_proximity(x, x.copy(), bundle.encoder, stats) == 0.0

    def test_negative_and_monotone_in_distance(self, setup):
        bundle, _, x_train, stats = setup
        x = x_train[:20]
        near = x.copy()
        near[:, bundle.encoder.column_of("age")] += 0.05
        far = x.copy()
        far[:, bundle.encoder.column_of("age")] += 0.5
        p_near = continuous_proximity(x, near, bundle.encoder, stats)
        p_far = continuous_proximity(x, far, bundle.encoder, stats)
        assert p_near < 0 and p_far < p_near

    def test_empty(self, setup):
        bundle, _, x_train, stats = setup
        assert continuous_proximity(x_train[:0], x_train[:0],
                                    bundle.encoder, stats) == 0.0


class TestCategoricalProximity:
    def test_identity_is_zero(self, setup):
        bundle, _, x_train, _ = setup
        x = x_train[:20]
        assert categorical_proximity(x, x.copy(), bundle.encoder) == 0.0

    def test_counts_only_categorical(self, setup):
        bundle, _, x_train, _ = setup
        x = x_train[:10]
        x_cf = x.copy()
        # change a binary and a continuous feature: cat proximity unaffected
        x_cf[:, bundle.encoder.column_of("age")] += 0.3
        x_cf[:, bundle.encoder.column_of("native_us")] = \
            1 - np.round(x[:, bundle.encoder.column_of("native_us")])
        assert categorical_proximity(x, x_cf, bundle.encoder) == 0.0

    def test_one_flip_counts_minus_one(self, setup):
        bundle, _, x_train, _ = setup
        x = x_train[:10]
        x_cf = x.copy()
        block = bundle.encoder.feature_slices["occupation"]
        original = np.argmax(x[:, block], axis=1)
        x_cf[:, block] = 0.0
        width = block.stop - block.start
        x_cf[np.arange(10), block.start + (original + 1) % width] = 1.0
        assert categorical_proximity(x, x_cf, bundle.encoder) == -1.0


class TestEvaluateCounterfactuals:
    def test_full_report(self, setup):
        bundle, blackbox, x_train, stats = setup
        x = x_train[:30]
        x_cf = x.copy()
        x_cf[:, bundle.encoder.column_of("age")] += 0.05
        desired = blackbox.predict(x_cf)
        report = evaluate_counterfactuals(
            "probe", x, x_cf, desired, blackbox, bundle.encoder, stats=stats)
        assert isinstance(report, MethodReport)
        assert report.validity == 100.0
        assert report.feasibility_unary == 100.0
        assert report.feasibility_binary == 100.0
        assert report.sparsity == 1.0
        assert report.n_instances == 30

    def test_report_kinds_filter(self, setup):
        bundle, blackbox, x_train, stats = setup
        x = x_train[:10]
        report = evaluate_counterfactuals(
            "probe", x, x.copy(), np.zeros(10, dtype=int), blackbox,
            bundle.encoder, stats=stats, report_kinds=("unary",))
        assert report.feasibility_unary is not None
        assert report.feasibility_binary is None

    def test_needs_stats_or_train(self, setup):
        bundle, blackbox, x_train, _ = setup
        with pytest.raises(ValueError):
            evaluate_counterfactuals(
                "probe", x_train[:5], x_train[:5], np.zeros(5, dtype=int),
                blackbox, bundle.encoder)

    def test_robustness_columns_default_to_none(self, setup):
        bundle, blackbox, x_train, stats = setup
        report = evaluate_counterfactuals(
            "probe", x_train[:5], x_train[:5].copy(), np.zeros(5, dtype=int),
            blackbox, bundle.encoder, stats=stats)
        assert report.cross_model_validity is None
        assert report.robust_validity is None

    def test_robustness_columns_fill_from_scores(self, setup):
        bundle, blackbox, x_train, stats = setup
        report = evaluate_counterfactuals(
            "probe", x_train[:4], x_train[:4].copy(), np.zeros(4, dtype=int),
            blackbox, bundle.encoder, stats=stats,
            cross_model_scores=np.array([1.0, 0.5, 0.75, 0.25]),
            robust_flags=np.array([True, False, True, False]))
        assert report.cross_model_validity == pytest.approx(62.5)
        assert report.robust_validity == pytest.approx(50.0)

    def test_robustness_columns_empty_batch_is_zero(self, setup):
        bundle, blackbox, x_train, stats = setup
        report = evaluate_counterfactuals(
            "probe", x_train[:0], x_train[:0].copy(),
            np.zeros(0, dtype=int), blackbox, bundle.encoder, stats=stats,
            cross_model_scores=np.zeros(0), robust_flags=np.zeros(0, bool))
        assert report.cross_model_validity == 0.0
        assert report.robust_validity == 0.0

    def test_as_row_layout(self, setup):
        bundle, blackbox, x_train, stats = setup
        report = evaluate_counterfactuals(
            "probe", x_train[:5], x_train[:5].copy(), np.zeros(5, dtype=int),
            blackbox, bundle.encoder, stats=stats)
        row = report.as_row()
        assert row[0] == "probe"
        assert len(row) == 7

"""Tests for the binary implication constraint (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import OrdinalImplicationConstraint
from repro.data import DatasetSchema, FeatureSpec, FeatureType, TabularEncoder, TabularFrame
from repro.nn import Tensor

SCHEMA = DatasetSchema(
    name="toy",
    features=(
        FeatureSpec("age", FeatureType.CONTINUOUS, bounds=(18.0, 80.0)),
        FeatureSpec("education", FeatureType.CATEGORICAL,
                    categories=("hs", "bs", "ms", "phd")),
        FeatureSpec("tier", FeatureType.CONTINUOUS, bounds=(1.0, 6.0)),
    ),
    target="y",
)


def encoder():
    frame = TabularFrame({
        "age": np.array([18.0, 80.0]),
        "education": np.array(["hs", "phd"], dtype=object),
        "tier": np.array([1.0, 6.0]),
    })
    return TabularEncoder(SCHEMA).fit(frame)


def row(age, education, tier=0.5):
    """Encoded row: [age, onehot(education) x4, tier]."""
    onehot = {"hs": [1, 0, 0, 0], "bs": [0, 1, 0, 0],
              "ms": [0, 0, 1, 0], "phd": [0, 0, 0, 1]}[education]
    return [age] + onehot + [tier]


def cat_constraint(**kwargs):
    return OrdinalImplicationConstraint(encoder(), "education", "age", **kwargs)


def cont_constraint(**kwargs):
    return OrdinalImplicationConstraint(encoder(), "tier", "age", **kwargs)


class TestCategoricalCauseSatisfied:
    def test_education_up_age_up_ok(self):
        x = np.array([row(0.3, "hs")])
        x_cf = np.array([row(0.4, "ms")])
        assert cat_constraint().satisfied(x, x_cf).all()

    def test_education_up_age_same_violates(self):
        x = np.array([row(0.3, "hs")])
        x_cf = np.array([row(0.3, "ms")])
        assert not cat_constraint().satisfied(x, x_cf).any()

    def test_education_up_age_down_violates(self):
        x = np.array([row(0.3, "hs")])
        x_cf = np.array([row(0.2, "ms")])
        assert not cat_constraint().satisfied(x, x_cf).any()

    def test_education_same_age_same_ok(self):
        x = np.array([row(0.3, "bs")])
        assert cat_constraint().satisfied(x, x.copy()).all()

    def test_education_same_age_down_violates(self):
        x = np.array([row(0.3, "bs")])
        x_cf = np.array([row(0.2, "bs")])
        assert not cat_constraint().satisfied(x, x_cf).any()

    def test_education_down_vacuously_ok(self):
        # Eq. 2 only constrains "up" and "same" cases
        x = np.array([row(0.3, "ms")])
        x_cf = np.array([row(0.3, "hs")])
        assert cat_constraint().satisfied(x, x_cf).all()

    def test_batch_mixed(self):
        x = np.array([row(0.3, "hs"), row(0.3, "hs")])
        x_cf = np.array([row(0.5, "ms"), row(0.3, "ms")])
        np.testing.assert_array_equal(
            cat_constraint().satisfied(x, x_cf), [True, False])


class TestContinuousCauseSatisfied:
    def test_tier_up_age_up_ok(self):
        x = np.array([row(0.3, "hs", tier=0.2)])
        x_cf = np.array([row(0.5, "hs", tier=0.6)])
        assert cont_constraint().satisfied(x, x_cf).all()

    def test_tier_up_age_same_violates(self):
        x = np.array([row(0.3, "hs", tier=0.2)])
        x_cf = np.array([row(0.3, "hs", tier=0.6)])
        assert not cont_constraint().satisfied(x, x_cf).any()

    def test_tier_same_age_up_ok(self):
        x = np.array([row(0.3, "hs", tier=0.2)])
        x_cf = np.array([row(0.6, "hs", tier=0.2)])
        assert cont_constraint().satisfied(x, x_cf).all()


class TestPenalty:
    def test_zero_when_comfortably_satisfied(self):
        con = cat_constraint(slope=0.02)
        x = np.array([row(0.3, "hs")])
        x_cf = Tensor(np.array([row(0.9, "ms")]))
        assert con.penalty(x, x_cf).item() == 0.0

    def test_positive_when_education_up_age_flat(self):
        con = cat_constraint(slope=0.02)
        x = np.array([row(0.3, "hs")])
        x_cf = Tensor(np.array([row(0.3, "phd")]))
        assert con.penalty(x, x_cf).item() > 0.0

    def test_positive_when_age_decreases_education_same(self):
        con = cat_constraint()
        x = np.array([row(0.5, "bs")])
        x_cf = Tensor(np.array([row(0.2, "bs")]))
        assert con.penalty(x, x_cf).item() == pytest.approx(0.3)

    def test_margin_enforces_strictness(self):
        con = cat_constraint(slope=0.0, margin=0.1)
        x = np.array([row(0.3, "hs")])
        x_cf = Tensor(np.array([row(0.3, "phd")]))
        assert con.penalty(x, x_cf).item() > 0.05

    def test_gradient_direction_raises_effect(self):
        con = cat_constraint(slope=0.05)
        x = np.array([row(0.3, "hs")])
        x_cf = Tensor(np.array([row(0.3, "phd")]), requires_grad=True)
        con.penalty(x, x_cf).backward()
        assert x_cf.grad[0, 0] < 0  # increase age to reduce the penalty

    def test_penalty_on_soft_onehot_blocks(self):
        # During training the decoder emits soft probabilities, not one-hots.
        con = cat_constraint(slope=0.02)
        x = np.array([row(0.3, "hs")])
        soft = np.array([[0.3, 0.1, 0.2, 0.3, 0.4, 0.5]])
        out = con.penalty(x, Tensor(soft))
        assert out.item() >= 0.0

    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_zero_penalty_implies_satisfied(self, edu_before, edu_after,
                                            age_before, age_after):
        levels = ("hs", "bs", "ms", "phd")
        con = cat_constraint(slope=0.01, margin=0.005)
        x = np.array([row(age_before, levels[edu_before])])
        x_cf_arr = np.array([row(age_after, levels[edu_after])])
        penalty = con.penalty(x, Tensor(x_cf_arr)).item()
        if penalty <= 1e-9:
            # zero penalty must imply boolean satisfaction (soundness);
            # the converse need not hold because of the slope/margin.
            assert con.satisfied(x, x_cf_arr).all()


class TestConstruction:
    def test_effect_must_be_noncategorical(self):
        with pytest.raises(ValueError):
            OrdinalImplicationConstraint(encoder(), "education", "education")

    def test_name_mentions_features(self):
        assert "education" in cat_constraint().name
        assert "age" in cat_constraint().name

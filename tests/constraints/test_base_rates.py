"""Satisfaction-rate edge cases: 0-row batches and 2-D satisfaction masks.

``satisfaction_rate`` uses ``flags.size`` (not ``len(flags)``), so an
empty evaluation is vacuously satisfied regardless of mask dimensionality
and a 2-D per-column mask averages over every element.
"""

import numpy as np

from repro.constraints import ConstraintSet
from repro.constraints.base import Constraint


class _RowFlags(Constraint):
    name = "rows"

    def satisfied(self, x, x_cf):
        return np.asarray(x_cf)[:, 0] >= np.asarray(x)[:, 0]

    def penalty(self, x, x_cf):  # pragma: no cover - unused
        raise NotImplementedError


class _MatrixFlags(Constraint):
    """Audit-style constraint returning a per-column drift matrix."""

    name = "matrix"

    def satisfied(self, x, x_cf):
        return np.asarray(x_cf) >= np.asarray(x)

    def penalty(self, x, x_cf):  # pragma: no cover - unused
        raise NotImplementedError


class TestConstraintRate:
    def test_zero_rows_is_vacuously_satisfied(self):
        empty = np.zeros((0, 3))
        assert _RowFlags().satisfaction_rate(empty, empty) == 1.0
        assert _MatrixFlags().satisfaction_rate(empty, empty) == 1.0

    def test_two_dimensional_mask_averages_elements(self):
        x = np.zeros((2, 2))
        x_cf = np.array([[1.0, 1.0], [-1.0, 1.0]])
        # 3 of 4 elements satisfied
        assert _MatrixFlags().satisfaction_rate(x, x_cf) == 0.75

    def test_row_mask_unchanged(self):
        x = np.zeros((4, 2))
        x_cf = np.array([[1.0, 0], [1.0, 0], [-1.0, 0], [-1.0, 0]])
        assert _RowFlags().satisfaction_rate(x, x_cf) == 0.5


class TestConstraintSetRate:
    def test_zero_rows(self):
        empty = np.zeros((0, 3))
        group = ConstraintSet([_RowFlags()])
        assert group.satisfaction_rate(empty, empty) == 1.0
        assert group.satisfied(empty, empty).shape == (0,)
        assert group.satisfied_matrix(empty, empty).shape == (0, 1)

    def test_empty_set(self):
        x = np.zeros((3, 2))
        assert ConstraintSet(()).satisfaction_rate(x, x) == 1.0
        assert ConstraintSet(()).satisfied_matrix(x, x).shape == (3, 0)

    def test_matrix_columns_match_members(self):
        x = np.zeros((3, 2))
        x_cf = np.array([[1.0, 1.0], [-1.0, 1.0], [1.0, -1.0]])
        group = ConstraintSet([_RowFlags(), _RowFlags()])
        matrix = group.satisfied_matrix(x, x_cf)
        np.testing.assert_array_equal(matrix[:, 0], matrix[:, 1])
        np.testing.assert_array_equal(
            group.satisfied(x, x_cf), matrix.all(axis=1))

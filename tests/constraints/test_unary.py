"""Tests for the unary monotonic-increase constraint (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import MonotonicIncreaseConstraint
from repro.data import DatasetSchema, FeatureSpec, FeatureType, TabularEncoder, TabularFrame
from repro.nn import Tensor

SCHEMA = DatasetSchema(
    name="toy",
    features=(
        FeatureSpec("age", FeatureType.CONTINUOUS, bounds=(18.0, 80.0)),
        FeatureSpec("score", FeatureType.CONTINUOUS, bounds=(0.0, 1.0)),
    ),
    target="y",
)


def encoder():
    frame = TabularFrame({"age": np.array([18.0, 80.0]), "score": np.array([0.0, 1.0])})
    return TabularEncoder(SCHEMA).fit(frame)


def constraint():
    return MonotonicIncreaseConstraint(encoder(), "age")


class TestSatisfied:
    def test_increase_ok(self):
        x = np.array([[0.2, 0.5]])
        x_cf = np.array([[0.3, 0.5]])
        assert constraint().satisfied(x, x_cf).all()

    def test_equal_ok(self):
        x = np.array([[0.2, 0.5]])
        assert constraint().satisfied(x, x.copy()).all()

    def test_decrease_violates(self):
        x = np.array([[0.5, 0.5]])
        x_cf = np.array([[0.2, 0.5]])
        assert not constraint().satisfied(x, x_cf).any()

    def test_tolerance_allows_float_noise(self):
        x = np.array([[0.5, 0.5]])
        x_cf = np.array([[0.5 - 1e-9, 0.5]])
        assert constraint().satisfied(x, x_cf).all()

    def test_other_columns_ignored(self):
        x = np.array([[0.5, 0.9]])
        x_cf = np.array([[0.5, 0.1]])  # score dropped; age same
        assert constraint().satisfied(x, x_cf).all()

    def test_mixed_batch(self):
        x = np.array([[0.5, 0.5], [0.5, 0.5]])
        x_cf = np.array([[0.6, 0.5], [0.4, 0.5]])
        np.testing.assert_array_equal(constraint().satisfied(x, x_cf), [True, False])

    def test_satisfaction_rate(self):
        x = np.array([[0.5, 0.5], [0.5, 0.5]])
        x_cf = np.array([[0.6, 0.5], [0.4, 0.5]])
        assert constraint().satisfaction_rate(x, x_cf) == 0.5


class TestPenalty:
    def test_zero_when_satisfied(self):
        x = np.array([[0.2, 0.5]])
        x_cf = Tensor(np.array([[0.4, 0.5]]))
        assert constraint().penalty(x, x_cf).item() == 0.0

    def test_positive_when_violated(self):
        x = np.array([[0.5, 0.5]])
        x_cf = Tensor(np.array([[0.2, 0.5]]))
        assert constraint().penalty(x, x_cf).item() == pytest.approx(0.3)

    def test_gradient_pushes_value_up(self):
        x = np.array([[0.5, 0.5]])
        x_cf = Tensor(np.array([[0.2, 0.5]]), requires_grad=True)
        constraint().penalty(x, x_cf).backward()
        assert x_cf.grad[0, 0] < 0  # decreasing loss means raising x_cf age
        assert x_cf.grad[0, 1] == 0

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_penalty_zero_iff_satisfied(self, before, after):
        x = np.array([[before, 0.5]])
        x_cf_arr = np.array([[after, 0.5]])
        con = constraint()
        penalty = con.penalty(x, Tensor(x_cf_arr)).item()
        if con.satisfied(x, x_cf_arr).all():
            assert penalty <= 1e-6
        else:
            assert penalty > 0

    def test_rejects_categorical_feature(self):
        schema = DatasetSchema(
            name="toy2",
            features=(FeatureSpec("color", FeatureType.CATEGORICAL,
                                  categories=("r", "g")),),
            target="y",
        )
        frame = TabularFrame({"color": np.array(["r", "g"], dtype=object)})
        enc = TabularEncoder(schema).fit(frame)
        with pytest.raises(ValueError):
            MonotonicIncreaseConstraint(enc, "color")

"""Tests for immutable projection, the evaluation constraint and the catalog."""

import numpy as np
import pytest

from repro.constraints import (
    ConstraintSet,
    ImmutableProjector,
    ImmutablesRespected,
    MonotonicIncreaseConstraint,
    OrdinalImplicationConstraint,
    build_constraints,
    constraint_recipes,
)
from repro.data import load_dataset
from repro.nn import Tensor


def adult_encoder():
    return load_dataset("adult", n_instances=600, seed=0).encoder


class TestImmutableProjector:
    def test_mask_covers_race_and_gender(self):
        encoder = adult_encoder()
        projector = ImmutableProjector(encoder)
        assert projector.has_immutables
        expected = encoder.immutable_mask()
        np.testing.assert_array_equal(projector.mask, expected)

    def test_project_restores_immutables(self):
        encoder = adult_encoder()
        projector = ImmutableProjector(encoder)
        rng = np.random.default_rng(0)
        x = rng.random((5, encoder.n_encoded))
        x_cf = rng.random((5, encoder.n_encoded))
        projected = projector.project(x, x_cf)
        np.testing.assert_allclose(projected[:, projector.mask], x[:, projector.mask])
        mutable = ~projector.mask
        np.testing.assert_allclose(projected[:, mutable], x_cf[:, mutable])

    def test_project_does_not_mutate_input(self):
        encoder = adult_encoder()
        projector = ImmutableProjector(encoder)
        x = np.zeros((2, encoder.n_encoded))
        x_cf = np.ones((2, encoder.n_encoded))
        projector.project(x, x_cf)
        assert (x_cf == 1.0).all()

    def test_project_tensor_blocks_gradients_on_immutables(self):
        encoder = adult_encoder()
        projector = ImmutableProjector(encoder)
        x = np.zeros((3, encoder.n_encoded))
        x_cf = Tensor(np.ones((3, encoder.n_encoded)), requires_grad=True)
        projector.project_tensor(x, x_cf).sum().backward()
        assert (x_cf.grad[:, projector.mask] == 0).all()
        assert (x_cf.grad[:, ~projector.mask] == 1).all()


class TestImmutablesRespected:
    def test_detects_drift(self):
        encoder = adult_encoder()
        constraint = ImmutablesRespected(encoder)
        x = np.zeros((2, encoder.n_encoded))
        x_cf = x.copy()
        immutable_col = int(np.flatnonzero(constraint.mask)[0])
        x_cf[1, immutable_col] = 1.0
        np.testing.assert_array_equal(constraint.satisfied(x, x_cf), [True, False])

    def test_penalty_zero_without_drift(self):
        encoder = adult_encoder()
        constraint = ImmutablesRespected(encoder)
        x = np.zeros((2, encoder.n_encoded))
        assert constraint.penalty(x, Tensor(x.copy())).item() == 0.0


class TestConstraintSet:
    def test_and_semantics(self):
        encoder = adult_encoder()
        age_col = encoder.column_of("age")
        con = MonotonicIncreaseConstraint(encoder, "age")
        group = ConstraintSet([con, ImmutablesRespected(encoder)])
        x = np.full((2, encoder.n_encoded), 0.5)
        x_cf = x.copy()
        x_cf[0, age_col] = 0.2  # violates unary only
        flags = group.satisfied(x, x_cf)
        np.testing.assert_array_equal(flags, [False, True])
        assert group.satisfaction_rate(x, x_cf) == 0.5

    def test_empty_set_all_satisfied(self):
        group = ConstraintSet([])
        assert group.satisfaction_rate(np.zeros((3, 2)), np.ones((3, 2))) == 1.0

    def test_penalty_sums(self):
        encoder = adult_encoder()
        con = MonotonicIncreaseConstraint(encoder, "age")
        group = ConstraintSet([con, con])
        x = np.full((1, encoder.n_encoded), 0.5)
        x_cf = x.copy()
        x_cf[0, encoder.column_of("age")] = 0.2
        single = con.penalty(x, Tensor(x_cf)).item()
        double = group.penalty(x, Tensor(x_cf)).item()
        assert double == pytest.approx(2 * single)


class TestCatalog:
    @pytest.mark.parametrize("name,cause,effect", [
        ("adult", "education", "age"),
        ("kdd_census", "education", "age"),
        ("law_school", "tier", "lsat"),
    ])
    def test_recipes_reference_paper_attributes(self, name, cause, effect):
        recipes = constraint_recipes(name)
        binary_cls, binary_kwargs = recipes["binary"][0]
        assert binary_cls is OrdinalImplicationConstraint
        assert binary_kwargs["cause"] == cause
        assert binary_kwargs["effect"] == effect

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            constraint_recipes("mnist")

    def test_build_unary(self):
        encoder = adult_encoder()
        group = build_constraints(encoder, "unary")
        assert len(group) == 1
        assert isinstance(group.constraints[0], MonotonicIncreaseConstraint)

    def test_build_binary_includes_unary(self):
        encoder = adult_encoder()
        group = build_constraints(encoder, "binary")
        kinds = [type(c) for c in group]
        assert MonotonicIncreaseConstraint in kinds
        assert OrdinalImplicationConstraint in kinds

    def test_build_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            build_constraints(adult_encoder(), "ternary")

"""ConstraintMiner on degenerate inputs: constant columns, too few
levels, missing values and tiny frames must never crash (or warn)."""

import warnings

import numpy as np
import pytest

from repro.constraints import ConstraintMiner
from repro.data import (
    DatasetSchema,
    FeatureSpec,
    FeatureType,
    TabularEncoder,
    TabularFrame,
)


def build_miner(columns, features):
    frame = TabularFrame(columns)
    schema = DatasetSchema(name="toy", features=tuple(features), target="y")
    # encoder fitting on an all-missing column legitimately warns
    # (np.nanmin of an empty slice); only the *mining* must stay silent
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        encoder = TabularEncoder(schema).fit(frame)
    return ConstraintMiner(encoder), frame


def continuous(name):
    return FeatureSpec(name, FeatureType.CONTINUOUS, bounds=(0.0, 10.0))


def categorical(name, k):
    labels = tuple(f"{name}_{i}" for i in range(k))
    return FeatureSpec(name, FeatureType.CATEGORICAL, categories=labels)


@pytest.fixture(autouse=True)
def no_warnings():
    # degenerate data must be *silently* skipped, not spam
    # ConstantInputWarning / RuntimeWarning per candidate pair
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


class TestDegenerateInputs:
    def test_constant_continuous_cause_yields_nothing(self):
        rng = np.random.default_rng(0)
        miner, frame = build_miner(
            {"a": np.full(400, 3.0), "b": rng.uniform(0, 10, 400)},
            [continuous("a"), continuous("b")])
        assert miner.mine(frame) == []

    def test_constant_effect_yields_nothing(self):
        rng = np.random.default_rng(1)
        miner, frame = build_miner(
            {"a": rng.uniform(0, 10, 400), "b": np.full(400, 5.0)},
            [continuous("a"), continuous("b")])
        assert miner.mine(frame) == []

    def test_categorical_cause_below_min_levels_is_skipped(self):
        rng = np.random.default_rng(2)
        labels = np.array(["c_0", "c_1"], dtype=object)
        miner, frame = build_miner(
            {"c": labels[rng.integers(0, 2, 400)],
             "b": rng.uniform(0, 10, 400)},
            [categorical("c", 2), continuous("b")])
        assert miner.mine(frame) == []

    def test_all_missing_effect_yields_nothing(self):
        rng = np.random.default_rng(3)
        miner, frame = build_miner(
            {"a": rng.uniform(0, 10, 400), "b": np.full(400, np.nan)},
            [continuous("a"), continuous("b")])
        assert miner.mine(frame) == []

    def test_partially_missing_effect_mines_on_observed_rows(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 10, 2000)
        b = a + rng.uniform(0, 1, 2000)  # hard floor: b >= a
        b[rng.choice(2000, 200, replace=False)] = np.nan
        miner, frame = build_miner(
            {"a": a, "b": b}, [continuous("a"), continuous("b")])
        relations = miner.mine(frame)
        assert ("a", "b") in {(r.cause, r.effect) for r in relations}

    def test_missing_categorical_cause_labels_are_skipped(self):
        rng = np.random.default_rng(5)
        labels = np.array(["c_0", "c_1", "c_2", "c_3"], dtype=object)
        cause = labels[rng.integers(0, 4, 400)]
        cause[rng.choice(400, 40, replace=False)] = None
        miner, frame = build_miner(
            {"c": cause, "b": rng.uniform(0, 10, 400)},
            [categorical("c", 4), continuous("b")])
        miner.mine(frame)  # must not crash on the unknown label

    def test_tiny_frame_yields_nothing(self):
        rng = np.random.default_rng(6)
        miner, frame = build_miner(
            {"a": rng.uniform(0, 10, 8), "b": rng.uniform(0, 10, 8)},
            [continuous("a"), continuous("b")])
        assert miner.mine(frame) == []

    def test_single_row_frame_yields_nothing(self):
        miner, frame = build_miner(
            {"a": np.array([1.0]), "b": np.array([2.0])},
            [continuous("a"), continuous("b")])
        assert miner.mine(frame) == []

    def test_near_constant_cause_with_one_outlier(self):
        rng = np.random.default_rng(7)
        a = np.full(400, 2.0)
        a[0] = 9.0
        miner, frame = build_miner(
            {"a": a, "b": rng.uniform(0, 10, 400)},
            [continuous("a"), continuous("b")])
        assert miner.mine(frame) == []

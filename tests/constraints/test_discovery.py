"""Tests for automatic constraint discovery (the paper's future work)."""

import numpy as np
import pytest

from repro.constraints import ConstraintMiner, ConstraintSet, OrdinalImplicationConstraint
from repro.data import (
    DatasetSchema,
    FeatureSpec,
    FeatureType,
    TabularEncoder,
    TabularFrame,
    load_dataset,
)


@pytest.fixture(scope="module")
def adult_bundle():
    return load_dataset("adult", n_instances=8000, seed=0)


@pytest.fixture(scope="module")
def law_bundle():
    return load_dataset("law_school", n_instances=8000, seed=0)


class TestMiningOnBenchmarks:
    def test_rediscovers_education_age_on_adult(self, adult_bundle):
        miner = ConstraintMiner(adult_bundle.encoder)
        relations = miner.mine(adult_bundle.frame)
        pairs = {(r.cause, r.effect) for r in relations}
        assert ("education", "age") in pairs

    def test_rediscovers_tier_lsat_on_law(self, law_bundle):
        miner = ConstraintMiner(law_bundle.encoder)
        relations = miner.mine(law_bundle.frame)
        assert relations, "no relations mined"
        # the paper's hand-made binary constraint is the top discovery
        assert (relations[0].cause, relations[0].effect) == ("tier", "lsat")

    def test_max_relations_caps_output(self, adult_bundle):
        miner = ConstraintMiner(adult_bundle.encoder)
        assert len(miner.mine(adult_bundle.frame, max_relations=2)) <= 2

    def test_sorted_by_score(self, law_bundle):
        relations = ConstraintMiner(law_bundle.encoder).mine(law_bundle.frame)
        scores = [r.score for r in relations]
        assert scores == sorted(scores, reverse=True)

    def test_immutables_excluded(self, adult_bundle):
        relations = ConstraintMiner(adult_bundle.encoder).mine(adult_bundle.frame)
        for relation in relations:
            assert relation.cause not in ("race", "gender")
            assert relation.effect not in ("race", "gender")

    def test_describe_is_readable(self, law_bundle):
        relation = ConstraintMiner(law_bundle.encoder).mine(law_bundle.frame)[0]
        text = relation.describe()
        assert "tier" in text and "lsat" in text and "rho=" in text


class TestMiningMechanics:
    def build_encoder(self, frame, features):
        schema = DatasetSchema(name="toy", features=features, target="y")
        return TabularEncoder(schema).fit(frame)

    def test_independent_features_yield_nothing(self):
        rng = np.random.default_rng(0)
        n = 2000
        frame = TabularFrame({
            "a": rng.uniform(0, 1, n),
            "b": rng.uniform(0, 1, n),
        })
        features = (
            FeatureSpec("a", FeatureType.CONTINUOUS, bounds=(0.0, 1.0)),
            FeatureSpec("b", FeatureType.CONTINUOUS, bounds=(0.0, 1.0)),
        )
        miner = ConstraintMiner(self.build_encoder(frame, features))
        assert miner.mine(frame) == []

    def test_constructed_prerequisite_found(self):
        # effect has a hard floor rising with the cause level
        rng = np.random.default_rng(1)
        n = 3000
        level = rng.integers(0, 4, n)
        floor = 10.0 + 5.0 * level
        effect = floor + rng.exponential(8.0, n)
        labels = np.array(["l0", "l1", "l2", "l3"], dtype=object)[level]
        frame = TabularFrame({"cause": labels, "effect": effect})
        features = (
            FeatureSpec("cause", FeatureType.CATEGORICAL,
                        categories=("l0", "l1", "l2", "l3")),
            FeatureSpec("effect", FeatureType.CONTINUOUS, bounds=(0.0, 200.0)),
        )
        miner = ConstraintMiner(self.build_encoder(frame, features))
        relations = miner.mine(frame)
        assert [(r.cause, r.effect) for r in relations] == [("cause", "effect")]
        assert relations[0].floor_monotonicity == 1.0
        assert relations[0].suggested_slope > 0

    def test_binary_causes_skipped(self):
        rng = np.random.default_rng(2)
        n = 1000
        flag = rng.integers(0, 2, n).astype(float)
        frame = TabularFrame({"flag": flag, "value": flag * 10 + rng.normal(0, 1, n)})
        features = (
            FeatureSpec("flag", FeatureType.BINARY),
            FeatureSpec("value", FeatureType.CONTINUOUS, bounds=(-10.0, 30.0)),
        )
        miner = ConstraintMiner(self.build_encoder(frame, features))
        assert miner.mine(frame) == []


class TestToConstraints:
    def test_relations_become_executable_constraints(self, law_bundle):
        miner = ConstraintMiner(law_bundle.encoder)
        relations = miner.mine(law_bundle.frame, max_relations=2)
        constraint_set = miner.to_constraints(relations)
        assert isinstance(constraint_set, ConstraintSet)
        assert len(constraint_set) == 2
        assert all(isinstance(c, OrdinalImplicationConstraint)
                   for c in constraint_set)

    def test_mined_constraints_accept_identity(self, law_bundle):
        miner = ConstraintMiner(law_bundle.encoder)
        constraint_set = miner.to_constraints(
            miner.mine(law_bundle.frame, max_relations=3))
        x = law_bundle.encoded[:30]
        assert constraint_set.satisfaction_rate(x, x.copy()) == 1.0

    def test_mined_constraint_rejects_violation(self, law_bundle):
        miner = ConstraintMiner(law_bundle.encoder)
        relations = [r for r in miner.mine(law_bundle.frame)
                     if (r.cause, r.effect) == ("tier", "lsat")]
        constraint_set = miner.to_constraints(relations)
        x = law_bundle.encoded[:10].copy()
        x_cf = x.copy()
        tier_col = law_bundle.encoder.column_of("tier")
        x_cf[:, tier_col] = np.minimum(x_cf[:, tier_col] + 0.4, 1.0)  # tier up
        # lsat unchanged -> implication violated
        satisfied = constraint_set.satisfied(x, x_cf)
        assert not satisfied.all()

"""Harness integration: prepare_context warm-starting from the store."""

import numpy as np

from repro.experiments import prepare_context
from repro.experiments.runconfig import ExperimentScale
from repro.serve import ArtifactStore

#: Small enough that the store path's full-pipeline training stays fast.
_SCALE = ExperimentScale("tiny-harness", 500, 20, 3)


class TestPrepareContextWithStore:
    def test_store_path_matches_default_path(self, tmp_path):
        default = prepare_context("adult", scale=_SCALE, seed=0)
        store = ArtifactStore(tmp_path / "store")
        stored = prepare_context("adult", scale=_SCALE, seed=0, store=store)

        assert store.exists(store.default_name("adult", "unary", 0))
        assert np.array_equal(default.x_explain, stored.x_explain)
        assert np.array_equal(
            default.blackbox.predict(default.x_explain),
            stored.blackbox.predict(stored.x_explain),
        )
        assert default.blackbox_accuracy == stored.blackbox_accuracy

    def test_second_call_warm_starts(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = prepare_context("adult", scale=_SCALE, seed=0, store=store)
        second = prepare_context("adult", scale=_SCALE, seed=0, store=store)
        assert np.array_equal(
            first.blackbox.predict_logits(first.x_explain),
            second.blackbox.predict_logits(second.x_explain),
        )

"""Graceful artifact rollover: ``warm_start(on_stale="migrate")`` and the
batched cache-survivor migration across a model retrain."""

import json

import numpy as np
import pytest

from repro.serve import (
    ArtifactStore,
    ExplanationService,
    StaleArtifactError,
    train_pipeline,
)


@pytest.fixture(scope="module")
def rollover(tmp_path_factory, tiny_pipeline, tiny_settings, explain_rows):
    """A store whose artifact rolled from pipeline v1 to pipeline v2.

    Returns ``(store, v1_pipeline, v1_service, v1_fingerprint)`` with the
    v1 service's cache filled — and the store now holding the retrained
    v2 artifact under the same name.
    """
    scale, config = tiny_settings
    store = ArtifactStore(tmp_path_factory.mktemp("rollover") / "store")
    store.save(tiny_pipeline, name="tiny")
    v1_fingerprint = tiny_pipeline.fingerprint

    v1_service = ExplanationService.warm_start(
        store, "tiny", expected_fingerprint=v1_fingerprint)
    v1_service.explain_batch(explain_rows)
    assert len(v1_service.cache) == len(explain_rows)

    # the rollover: same artifact name, retrained pipeline (new seed)
    v2_pipeline = train_pipeline(
        "adult", scale=scale, seed=1, constraint_kind="unary", config=config)
    assert v2_pipeline.fingerprint != v1_fingerprint
    store.save(v2_pipeline, name="tiny")
    return store, tiny_pipeline, v1_service, v1_fingerprint


class TestStrictDefault:
    def test_stale_fingerprint_raises_by_default(self, rollover):
        store, _, _, v1_fingerprint = rollover
        with pytest.raises(StaleArtifactError) as info:
            ExplanationService.warm_start(
                store, "tiny", expected_fingerprint=v1_fingerprint)
        assert info.value.expected == v1_fingerprint

    def test_on_stale_validation(self, rollover):
        store, _, _, _ = rollover
        with pytest.raises(ValueError, match="on_stale"):
            ExplanationService.warm_start(store, "tiny", on_stale="shrug")


class TestMigrateOnStale:
    def test_round_trip_survives_the_fingerprint_change(self, rollover,
                                                        explain_rows):
        store, _, v1_service, v1_fingerprint = rollover
        service = ExplanationService.warm_start(
            store, "tiny", expected_fingerprint=v1_fingerprint,
            on_stale="migrate", migrate_from=v1_service)
        # the service answers with the artifact the store holds NOW
        assert service.fingerprint != v1_service.fingerprint
        result = service.explain_batch(explain_rows)
        assert len(result) == len(explain_rows)

    def test_migration_counters_partition_the_old_cache(self, rollover):
        store, _, v1_service, v1_fingerprint = rollover
        service = ExplanationService.warm_start(
            store, "tiny", expected_fingerprint=v1_fingerprint,
            on_stale="migrate", migrate_from=v1_service)
        counters = service.last_migration
        assert counters["examined"] == len(v1_service.cache)
        assert counters["survivors"] + counters["dropped"] == counters["examined"]
        assert len(service.cache) == counters["survivors"]

    def test_survivors_still_flip_the_new_model(self, rollover):
        store, _, v1_service, v1_fingerprint = rollover
        service = ExplanationService.warm_start(
            store, "tiny", expected_fingerprint=v1_fingerprint,
            on_stale="migrate", migrate_from=v1_service)
        # every re-inserted entry's counterfactual reaches its desired
        # class under the NEW model — that is the migration invariant
        for (_, desired, _), (x_cf, predicted, _) in service.cache.items():
            assert predicted == desired
            assert service.explainer.blackbox.predict(
                x_cf.reshape(1, -1))[0] == desired

    def test_migrate_without_expected_fingerprint_still_raises(self, rollover):
        # nothing to forgive: without a requested pipeline the staleness
        # is internal and must propagate even under on_stale="migrate"
        store, _, _, _ = rollover
        manifest_path = store.artifact_dir("tiny") / "manifest.json"
        original = manifest_path.read_text()
        manifest = json.loads(original)
        manifest["fingerprint"] = "gandalf"
        manifest_path.write_text(json.dumps(manifest))
        try:
            with pytest.raises(StaleArtifactError):
                ExplanationService.warm_start(store, "tiny", on_stale="migrate")
        finally:
            manifest_path.write_text(original)

    def test_internal_corruption_is_not_forgiven(self, rollover):
        # the artifact itself is inconsistent: migration must not mask it
        store, _, v1_service, v1_fingerprint = rollover
        manifest_path = store.artifact_dir("tiny") / "manifest.json"
        original = manifest_path.read_text()
        manifest = json.loads(original)
        manifest["fingerprint"] = "gandalf"
        manifest_path.write_text(json.dumps(manifest))
        try:
            with pytest.raises(StaleArtifactError):
                ExplanationService.warm_start(
                    store, "tiny", expected_fingerprint=v1_fingerprint,
                    on_stale="migrate", migrate_from=v1_service)
        finally:
            manifest_path.write_text(original)


class TestMigrateCacheDirect:
    def test_restart_carry_over_on_matching_pipeline(self, rollover,
                                                     explain_rows):
        # migrate_from composes with a successful strict load: carry a
        # previous process's cache across a restart with no rollover
        store, v1_pipeline, v1_service, _ = rollover
        fresh = ExplanationService(v1_pipeline)
        fresh.migrate_cache(v1_service)
        counters = fresh.last_migration
        assert counters["examined"] == len(v1_service.cache)
        # same model: exactly the VALID cached explanations survive
        # (migration re-attempts cached failures instead of carrying them)
        n_valid = sum(entry[1] == key[1]
                      for key, entry in v1_service.cache.items())
        assert counters["survivors"] == n_valid
        hits_before = fresh.cache.hits
        fresh.explain_batch(explain_rows)
        assert fresh.cache.hits == hits_before + counters["survivors"]

    def test_foreign_width_rows_are_skipped(self, rollover):
        store, v1_pipeline, v1_service, _ = rollover
        donor = ExplanationService(v1_pipeline)
        bad_row = np.zeros(3, dtype=np.float64)
        donor.cache.put(
            (bad_row.tobytes(), 1, donor.cache_fingerprint),
            (bad_row, 1, True))
        fresh = ExplanationService(v1_pipeline)
        counters = fresh.migrate_cache(donor)
        assert counters == {"examined": 0, "survivors": 0, "dropped": 0}

    def test_entries_under_stale_keys_are_ignored(self, rollover,
                                                  explain_rows):
        store, v1_pipeline, v1_service, _ = rollover
        donor = ExplanationService(v1_pipeline)
        donor.explain_batch(explain_rows[:4])
        # a leftover entry keyed under some older fingerprint must not
        # be re-validated as if it were current
        row = np.asarray(explain_rows[0], dtype=np.float64)
        donor.cache.put((row.tobytes(), 1, "stale-fingerprint"), (row, 1, True))
        fresh = ExplanationService(v1_pipeline)
        counters = fresh.migrate_cache(donor)
        assert counters["examined"] == 4

    def test_empty_cache_migrates_to_zero_counters(self, rollover):
        store, v1_pipeline, _, _ = rollover
        fresh = ExplanationService(v1_pipeline)
        counters = fresh.migrate_cache(ExplanationService(v1_pipeline))
        assert counters == {"examined": 0, "survivors": 0, "dropped": 0}
        assert fresh.last_migration == counters


class TestEnsembleRollover:
    def test_ensemble_overlay_survives_migration_path(self, rollover,
                                                      explain_rows):
        from repro.models import train_ensemble

        store, v1_pipeline, v1_service, v1_fingerprint = rollover
        v2 = store.load("tiny")  # warm-started artifacts carry no bundle
        x_train, y_train = v1_pipeline.bundle.split("train")
        ensemble = train_ensemble(
            x_train, y_train, n_members=2, seed=1, epochs=2,
            include=v2.blackbox)
        store.save_ensemble("tiny", ensemble)
        service = ExplanationService.warm_start(
            store, "tiny", expected_fingerprint=v1_fingerprint,
            on_stale="migrate", migrate_from=v1_service, ensemble="store")
        assert service.ensemble.fingerprint() == ensemble.fingerprint()
        # the migrated survivors were keyed under the ensemble-extended
        # composite fingerprint, so robust serving replays them
        assert len(service.cache) == service.last_migration["survivors"]
        result = service.explain_batch(explain_rows)
        assert len(result) == len(explain_rows)

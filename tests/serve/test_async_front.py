"""Tests for the coalescing asyncio front (repro.serve.scale)."""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    ArtifactStore,
    AsyncExplanationService,
    ExplanationService,
    PendingTicketError,
    WorkerPool,
)


@pytest.fixture(scope="module")
def store(tiny_pipeline, tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("async-store"))
    store.save(tiny_pipeline, name="tiny")
    return store


class TestAsyncFront:
    def test_explain_returns_result_dict(self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=0.001)
            result = await front.explain(explain_rows[0])
            await front.aclose()
            return result

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            result = asyncio.run(scenario(pool))
        assert result["x_cf"].shape == explain_rows[0].shape
        assert result["predicted"] in (0, 1)
        assert isinstance(result["valid"], bool)

    def test_concurrent_requests_coalesce_into_one_flush(
            self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=0.05)
            results = await front.explain_many(explain_rows[:8])
            stats = front.stats
            await front.aclose()
            return results, stats

        with WorkerPool(store, "tiny", n_replicas=2) as pool:
            results, stats = asyncio.run(scenario(pool))
        assert len(results) == 8
        assert stats["front"]["requests"] == 8
        assert stats["front"]["flushes"] == 1
        assert stats["front"]["rows_coalesced"] == 8
        assert stats["front"]["mean_batch_size"] == 8.0
        assert stats["front"]["queued"] == 0

    def test_single_replica_async_parity_with_sync_service(
            self, store, explain_rows):
        sync = ExplanationService.warm_start(store, "tiny", cache_size=0)
        tickets = [sync.submit(row) for row in explain_rows[:8]]
        sync.flush()
        reference = [ticket.result() for ticket in tickets]

        async def scenario(pool):
            front = AsyncExplanationService(
                pool, coalesce_window=0.05, max_batch=8)
            results = await front.explain_many(explain_rows[:8])
            await front.aclose()
            return results

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            results = asyncio.run(scenario(pool))
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got["x_cf"], want["x_cf"])
            assert got["predicted"] == want["predicted"]
            assert got["valid"] == want["valid"]

    def test_max_batch_forces_early_drain(self, store, explain_rows):
        async def scenario(pool):
            # window far beyond the test budget: only the max_batch
            # trigger can drain the queue in time
            front = AsyncExplanationService(
                pool, coalesce_window=30.0, max_batch=4)
            results = await asyncio.wait_for(
                front.explain_many(explain_rows[:4]), timeout=10.0)
            await front.aclose()
            return results

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            results = asyncio.run(scenario(pool))
        assert len(results) == 4

    def test_timeout_maps_to_pending_ticket_error(self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=30.0)
            with pytest.raises(PendingTicketError, match="coalesce"):
                await front.explain(explain_rows[0], timeout=0.01)
            await front.aclose()

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            asyncio.run(scenario(pool))

    def test_aclose_serves_queued_requests(self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=30.0)
            task = asyncio.ensure_future(front.explain(explain_rows[0]))
            await asyncio.sleep(0)  # let the request enqueue
            await front.aclose()  # drains — the request is served, not lost
            return await task

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            result = asyncio.run(scenario(pool))
        assert result["x_cf"].shape == explain_rows[0].shape

    def test_aclose_fails_stragglers_that_missed_the_drain(
            self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=30.0)
            # a request that lands after the final drain has no batch
            # left to join; aclose must fail it rather than hang it
            straggler = asyncio.get_running_loop().create_future()
            front._queue.append((explain_rows[0], None, straggler))
            await front.aclose()
            return straggler.exception()

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            error = asyncio.run(scenario(pool))
        assert isinstance(error, PendingTicketError)

    def test_desired_target_is_honoured(self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=0.001)
            result = await front.explain(explain_rows[0], desired=1)
            await front.aclose()
            return result

        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            result = asyncio.run(scenario(pool))
        assert result["desired"] == 1

    def test_sequential_requests_drain_independently(
            self, store, explain_rows):
        async def scenario(pool):
            front = AsyncExplanationService(pool, coalesce_window=0.001)
            first = await front.explain(explain_rows[0])
            second = await front.explain(explain_rows[1])
            stats = front.stats
            await front.aclose()
            return first, second, stats

        with WorkerPool(store, "tiny", n_replicas=2) as pool:
            first, second, stats = asyncio.run(scenario(pool))
        assert first["x_cf"].shape == second["x_cf"].shape
        assert stats["front"]["flushes"] == 2
        assert stats["pool"]["aggregate"]["rows_coalesced"] == 2

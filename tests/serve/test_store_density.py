"""Density state persistence and density-aware warm-start serving."""

import numpy as np
import pytest

from repro.density import KnnDensity, LatentDensity
from repro.serve import ArtifactStore, ExplanationService
from repro.serve.store import ArtifactError, StaleArtifactError


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    from repro.experiments.runconfig import ExperimentScale
    from repro.serve import train_pipeline

    scale = ExperimentScale("tiny", 900, 10, 4)
    pipeline = train_pipeline("adult", scale=scale, seed=0)
    store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
    store.save(pipeline, name="t")
    x_train, y_train = pipeline.bundle.split("train")
    desired_class = int(pipeline.bundle.schema.desired_class)
    reference = x_train[y_train == desired_class][:150]
    return store, pipeline, reference


class TestDensityPersistence:
    def test_roundtrip_bitwise(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        store.save_density("t", model)
        assert store.has_density("t")
        loaded = store.load_density("t")
        assert loaded.fingerprint() == model.fingerprint()
        probe = reference[:7] + 0.05
        np.testing.assert_array_equal(loaded.score(probe), model.score(probe))

    def test_latent_roundtrip_reattaches_pipeline_vae(self, trained):
        store, pipeline, reference = trained
        vae = pipeline.explainer.generator.vae
        model = LatentDensity(vae=vae, k_neighbors=5).fit(reference)
        store.save_density("t", model)
        loaded = store.load_density("t", vae=vae)
        probe = reference[:7]
        np.testing.assert_array_equal(loaded.score(probe), model.score(probe))

    def test_requires_existing_artifact(self, trained, tmp_path):
        _, _, reference = trained
        empty = ArtifactStore(tmp_path / "empty")
        with pytest.raises(ArtifactError, match="save the pipeline first"):
            empty.save_density("ghost", KnnDensity().fit(reference))

    def test_missing_density_state_raises(self, trained, tmp_path):
        store, pipeline, _ = trained
        bare = ArtifactStore(tmp_path / "bare")
        bare.save(pipeline, name="b")
        assert not bare.has_density("b")
        with pytest.raises(ArtifactError, match="no density state"):
            bare.load_density("b")

    def test_corrupted_npz_fails_checksum(self, trained, tmp_path):
        store, pipeline, reference = trained
        broken = ArtifactStore(tmp_path / "broken")
        broken.save(pipeline, name="b")
        broken.save_density("b", KnnDensity(k_neighbors=5).fit(reference))
        npz = broken.artifact_dir("b") / "density.npz"
        npz.write_bytes(npz.read_bytes()[:-8] + b"corrupted")
        with pytest.raises(ArtifactError, match="checksum"):
            broken.load_density("b")

    def test_fingerprint_mismatch_is_stale(self, trained, tmp_path):
        store, pipeline, reference = trained
        other = ArtifactStore(tmp_path / "other")
        other.save(pipeline, name="b")
        model = KnnDensity(k_neighbors=5).fit(reference)
        other.save_density("b", model)
        with pytest.raises(StaleArtifactError, match="does not match"):
            other.load_density("b", expected_fingerprint="deadbeefdeadbeef")


class TestDensityAwareServing:
    def test_warm_start_from_store_state(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        store.save_density("t", model)
        service = ExplanationService.warm_start(store, "t", density="store")
        assert service.density is not None
        assert service.density.fingerprint() == model.fingerprint()
        x_test, _ = pipeline.bundle.split("test")
        result = service.explain_batch(x_test[:6])
        assert result.x_cf.shape == (6, x_test.shape[1])

    def test_cache_key_carries_density_fingerprint_and_weight(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        plain = ExplanationService(pipeline)
        dense = ExplanationService(pipeline, density=model)
        assert plain.cache_fingerprint.endswith(":none:none:none")
        assert dense.cache_fingerprint.endswith(
            f":{model.fingerprint()}@w1.0:none:none")
        assert plain.cache_fingerprint != dense.cache_fingerprint

    def test_repointing_density_refreshes_fingerprint_and_runner(self, trained):
        store, pipeline, reference = trained
        first = KnnDensity(k_neighbors=5).fit(reference)
        second = KnnDensity(k_neighbors=7).fit(reference)
        service = ExplanationService(pipeline, density=first)
        runner_before = service.runner
        key_before = service.cache_fingerprint
        service.density = second
        assert service.cache_fingerprint != key_before
        assert service.runner is not runner_before
        assert service.runner.density is second

    def test_repointing_density_weight_refreshes_key_and_runner(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        service = ExplanationService(pipeline, density=model, density_weight=1.0)
        runner_before = service.runner
        key_before = service.cache_fingerprint
        service.density_weight = 4.0
        assert service.cache_fingerprint != key_before
        assert service.runner is not runner_before
        assert service.runner.density_weight == 4.0

    def test_density_batches_select_by_figure3_policy(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        x_test, _ = pipeline.bundle.split("test")
        rows = x_test[:6]
        plain = ExplanationService(pipeline).explain_batch(rows)
        heavy = ExplanationService(
            pipeline, density=model, density_weight=100.0).explain_batch(rows)
        assert (model.score(heavy.x_cf).mean()
                <= model.score(plain.x_cf).mean() + 1e-9)

    def test_flush_routes_through_density_runner(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        service = ExplanationService(pipeline, density=model)
        x_test, _ = pipeline.bundle.split("test")
        ticket = service.submit(x_test[0])
        service.flush()
        resolved = ticket.result()
        assert 0 <= resolved["chosen"] < service.density_candidates
        assert isinstance(resolved["valid"], bool)


class TestWarmStartBackend:
    def test_warm_start_rebinds_density_to_ann(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        store.save_overlay("t", "density", model)
        service = ExplanationService.warm_start(
            store, "t", overlays={"density": "store"}, density_backend="ann")
        assert service.density.backend == "ann"
        # the persisted state is backend-agnostic: same reference rows
        np.testing.assert_array_equal(service.density.reference_, reference)
        x_test, _ = pipeline.bundle.split("test")
        result = service.explain_batch(x_test[:4])
        assert result.x_cf.shape == (4, x_test.shape[1])

    def test_backend_without_density_overlay_rejected(self, trained):
        store, pipeline, _ = trained
        with pytest.raises(ValueError, match="density overlay"):
            ExplanationService.warm_start(store, "t", density_backend="ann")

    def test_ann_rebind_changes_cache_fingerprint(self, trained):
        store, pipeline, reference = trained
        model = KnnDensity(k_neighbors=5).fit(reference)
        store.save_overlay("t", "density", model)
        exact = ExplanationService.warm_start(
            store, "t", overlays={"density": "store"})
        ann = ExplanationService.warm_start(
            store, "t", overlays={"density": "store"}, density_backend="ann")
        assert exact.cache_fingerprint != ann.cache_fingerprint

"""Tests for consistent-hash request routing (repro.serve.routing)."""

import numpy as np
import pytest

from repro.serve import ConsistentHashRing, request_key


def _keys(n, width=8, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.random((n, width))
    return [request_key("fp", row, 0) for row in rows]


class TestRequestKey:
    def test_deterministic_for_identical_requests(self):
        row = np.linspace(0.0, 1.0, 7)
        assert request_key("fp", row, 1) == request_key("fp", row.copy(), 1)

    def test_distinguishes_fingerprint_desired_and_row(self):
        row = np.linspace(0.0, 1.0, 7)
        other = row.copy()
        other[3] += 1e-9
        base = request_key("fp", row, 1)
        assert request_key("fp2", row, 1) != base
        assert request_key("fp", row, 0) != base
        assert request_key("fp", other, 1) != base

    def test_flip_differs_from_explicit_class(self):
        row = np.linspace(0.0, 1.0, 7)
        assert request_key("fp", row, None) != request_key("fp", row, 0)
        assert request_key("fp", row, None) != request_key("fp", row, 1)

    def test_accepts_non_contiguous_rows(self):
        matrix = np.random.default_rng(3).random((4, 10))
        sliced = matrix[:, ::2]  # non-contiguous view
        assert (request_key("fp", sliced[0], 0)
                == request_key("fp", np.ascontiguousarray(sliced[0]), 0))


class TestConsistentHashRing:
    def test_rejects_empty_and_duplicate_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            ConsistentHashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            ConsistentHashRing([0, 1, 0])
        with pytest.raises(ValueError, match="points"):
            ConsistentHashRing([0, 1], points=0)

    def test_same_key_same_node(self):
        ring = ConsistentHashRing(range(4))
        for key in _keys(32):
            assert ring.node_for(key) == ring.node_for(key)

    def test_every_node_receives_traffic(self):
        ring = ConsistentHashRing(range(4), points=64)
        distribution = ring.distribution(_keys(512))
        assert set(distribution) == {0, 1, 2, 3}
        assert all(count > 0 for count in distribution.values())
        assert sum(distribution.values()) == 512

    def test_distribution_roughly_balanced(self):
        ring = ConsistentHashRing(range(4), points=128)
        distribution = ring.distribution(_keys(2000))
        # virtual nodes keep shards within a loose band of the mean
        assert max(distribution.values()) < 4 * min(distribution.values())

    def test_resize_moves_bounded_fraction_of_keys(self):
        keys = _keys(2000)
        before = ConsistentHashRing(range(4), points=64)
        after = ConsistentHashRing(range(5), points=64)
        moved = sum(before.node_for(k) != after.node_for(k) for k in keys)
        # the classic bound is ~1/(N+1) = 20%; allow headroom for hash noise
        assert moved / len(keys) < 0.35

    def test_len_counts_physical_nodes(self):
        assert len(ConsistentHashRing(["a", "b", "c"], points=16)) == 3

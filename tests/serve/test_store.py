"""Artifact-store tests: round-trip fidelity and staleness rejection."""

import json

import numpy as np
import pytest

from repro.serve import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactStore,
    ExplanationService,
    StaleArtifactError,
    TrainedPipeline,
)
from repro.serve.store import _file_sha256


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture()
def saved(store, tiny_pipeline):
    store.save(tiny_pipeline, name="tiny")
    return store


class TestRoundTrip:
    def test_predict_bit_identical(self, saved, tiny_pipeline, explain_rows):
        loaded = saved.load("tiny")
        original = tiny_pipeline.explainer.blackbox.predict_logits(explain_rows)
        restored = loaded.explainer.blackbox.predict_logits(explain_rows)
        assert np.array_equal(original, restored)

    def test_generate_bit_identical(self, saved, tiny_pipeline, explain_rows):
        desired = np.ones(len(explain_rows), dtype=int)
        original = tiny_pipeline.explainer.generator.generate(explain_rows, desired)
        restored = saved.load("tiny").explainer.generator.generate(
            explain_rows, desired
        )
        assert np.array_equal(original, restored)

    def test_explain_bit_identical(self, saved, tiny_pipeline, explain_rows):
        original = tiny_pipeline.explainer.explain(explain_rows)
        restored = saved.load("tiny").explainer.explain(explain_rows)
        assert np.array_equal(original.x_cf, restored.x_cf)
        assert np.array_equal(original.valid, restored.valid)
        assert np.array_equal(original.feasible, restored.feasible)

    def test_candidates_bit_identical(self, saved, tiny_pipeline, explain_rows):
        from repro.core import generate_candidates

        original = generate_candidates(
            tiny_pipeline.explainer,
            explain_rows[:4],
            n_candidates=5,
            rng=np.random.default_rng(3),
        )
        restored = generate_candidates(
            saved.load("tiny").explainer,
            explain_rows[:4],
            n_candidates=5,
            rng=np.random.default_rng(3),
        )
        for a, b in zip(original, restored):
            assert np.array_equal(a.candidates, b.candidates)
            assert np.array_equal(a.valid, b.valid)
            assert np.array_equal(a.feasible, b.feasible)

    def test_loaded_provenance(self, saved, tiny_pipeline):
        loaded = saved.load("tiny")
        assert loaded.dataset == "adult"
        assert loaded.seed == 0
        assert loaded.constraint_kind == "unary"
        assert loaded.bundle is None
        assert loaded.fingerprint == tiny_pipeline.fingerprint
        assert loaded.blackbox_accuracy == tiny_pipeline.blackbox_accuracy


class TestManifest:
    def test_contents(self, saved, tiny_pipeline):
        manifest = saved.manifest("tiny")
        assert manifest["format_version"] == ARTIFACT_FORMAT_VERSION
        assert manifest["fingerprint"] == tiny_pipeline.fingerprint
        assert set(manifest["checksums"]) == {"blackbox.npz", "cfvae.npz"}
        assert manifest["encoder"]["schema"] == "adult"

    def test_names_and_exists(self, saved):
        assert saved.names() == ["tiny"]
        assert saved.exists("tiny")
        assert not saved.exists("other")

    def test_fresh(self, saved, tiny_pipeline):
        assert saved.fresh("tiny", tiny_pipeline.fingerprint)
        assert not saved.fresh("tiny", "0" * 64)
        assert not saved.fresh("missing", tiny_pipeline.fingerprint)

    def test_default_name(self):
        assert ArtifactStore.default_name("adult", "unary", 3) == "adult-unary-seed3"


class TestRejection:
    def test_missing_artifact(self, store):
        with pytest.raises(ArtifactError, match="no artifact"):
            store.load("nope")

    def test_corrupted_weights(self, saved):
        path = saved.artifact_dir("tiny") / "cfvae.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum"):
            saved.load("tiny")

    def test_missing_weights_file(self, saved):
        (saved.artifact_dir("tiny") / "blackbox.npz").unlink()
        with pytest.raises(ArtifactError, match="missing blackbox.npz"):
            saved.load("tiny")

    def test_corrupted_manifest(self, saved):
        path = saved.artifact_dir("tiny") / "manifest.json"
        path.write_text(path.read_text()[:40])
        with pytest.raises(ArtifactError, match="corrupted"):
            saved.load("tiny")

    def test_stale_fingerprint(self, saved):
        path = saved.artifact_dir("tiny") / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["seed"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(StaleArtifactError, match="stale"):
            saved.load("tiny")

    def test_stale_format_version(self, saved):
        path = saved.artifact_dir("tiny") / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(StaleArtifactError, match="format_version"):
            saved.load("tiny")

    def test_expected_fingerprint_mismatch(self, saved):
        with pytest.raises(StaleArtifactError, match="requested"):
            saved.load("tiny", expected_fingerprint="f" * 64)

    def test_refuses_unfitted_pipeline(self, store, tiny_pipeline):
        from repro.core import FeasibleCFExplainer

        unfitted = TrainedPipeline(
            explainer=FeasibleCFExplainer(
                tiny_pipeline.encoder, blackbox=tiny_pipeline.blackbox
            ),
            dataset="adult",
            n_instances=600,
            seed=0,
            constraint_kind="unary",
            blackbox_epochs=4,
            blackbox_accuracy=0.0,
        )
        with pytest.raises(ArtifactError, match="not fitted"):
            store.save(unfitted, name="broken")

    def test_refuses_custom_constraints(self, store, tiny_pipeline):
        custom = TrainedPipeline(
            explainer=tiny_pipeline.explainer,
            dataset="adult",
            n_instances=600,
            seed=0,
            constraint_kind="custom",
            blackbox_epochs=4,
            blackbox_accuracy=0.0,
        )
        with pytest.raises(ArtifactError, match="custom"):
            store.save(custom, name="broken")


class TestEnsure:
    def test_trains_then_hits_cache(self, store, tiny_settings):
        scale, config = tiny_settings
        pipeline, cached = store.ensure("adult", scale=scale, seed=0, config=config)
        assert not cached
        again, cached = store.ensure("adult", scale=scale, seed=0, config=config)
        assert cached
        rows = pipeline.bundle.split("test")[0][:8]
        assert np.array_equal(
            pipeline.explainer.explain(rows).x_cf,
            again.explainer.explain(rows).x_cf,
        )

    def test_changed_blackbox_epochs_is_not_fresh(self, store, tiny_settings):
        from repro.experiments.runconfig import ExperimentScale

        scale, config = tiny_settings
        store.ensure("adult", scale=scale, seed=0, config=config)
        longer = ExperimentScale(
            "tiny-long", scale.max_instances, scale.n_explain,
            scale.blackbox_epochs + 2)
        _, cached = store.ensure("adult", scale=longer, seed=0, config=config)
        assert not cached

    def test_stale_artifact_is_retrained(self, store, tiny_settings):
        scale, config = tiny_settings
        store.ensure("adult", scale=scale, seed=0, config=config)
        name = store.default_name("adult", "unary", 0)
        path = store.artifact_dir(name) / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["fingerprint"] = "0" * 64
        path.write_text(json.dumps(manifest))
        pipeline, cached = store.ensure("adult", scale=scale, seed=0, config=config)
        assert not cached
        assert store.fresh(name, pipeline.fingerprint)

    def test_warm_start_service_from_ensure(self, store, explain_rows, tiny_settings):
        scale, config = tiny_settings
        pipeline, _ = store.ensure("adult", scale=scale, seed=0, config=config)
        name = store.default_name("adult", "unary", 0)
        service = ExplanationService.warm_start(
            store, name, expected_fingerprint=pipeline.fingerprint
        )
        result = service.explain_batch(explain_rows)
        assert np.array_equal(
            result.x_cf, pipeline.explainer.explain(explain_rows).x_cf
        )


def test_fingerprint_matches_recomputation(tiny_pipeline, tiny_settings):
    from repro.data import dataset_schema
    from repro.serve import pipeline_fingerprint

    scale, config = tiny_settings
    recomputed = pipeline_fingerprint(
        "adult",
        scale.instances_for("adult"),
        0,
        "unary",
        config,
        dataset_schema("adult"),
        scale.blackbox_epochs,
    )
    assert tiny_pipeline.fingerprint == recomputed


def test_checksum_helper(tmp_path):
    path = tmp_path / "blob"
    path.write_bytes(b"abc")
    assert _file_sha256(path) == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )

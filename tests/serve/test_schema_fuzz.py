"""Randomized schema-fuzz: malformed requests must raise SchemaMismatchError.

Seeded ``np.random.Generator`` fuzzing of the batch surfaces —
``EngineRunner.run``, ``ExplanationService.explain_batch`` (plain and
ensemble-hosting) and ``CausalModel.repair_batch`` — with wrong-width,
wrong-dtype and NaN/inf-bearing inputs.  Every case must fail with
:class:`SchemaMismatchError` (the schema-contract error, a ``ValueError``
subclass), never with a raw numpy broadcasting/conversion message from
deep inside a matmul.  A second fuzzer corrupts persisted ensemble
artifacts on disk and pins every failure to the store's
``ArtifactError`` family.
"""

import json

import numpy as np
import pytest

from repro.causal import ScmCausalModel
from repro.engine import CoreCFStrategy, EngineRunner
from repro.serve import ArtifactError, ArtifactStore, ExplanationService
from repro.utils.validation import SchemaMismatchError

N_TRIALS = 25
SEED = 20260728


def corrupt_rows(rng, width):
    """One randomized malformed request matrix per call."""
    n = int(rng.integers(1, 7))
    mode = rng.choice(["narrow", "wide", "object", "strings", "nan", "inf"])
    if mode == "narrow":
        wrong = int(rng.integers(1, width))
        return rng.random((n, wrong)), "narrow"
    if mode == "wide":
        wrong = int(rng.integers(width + 1, width * 2 + 2))
        return rng.random((n, wrong)), "wide"
    if mode == "object":
        rows = rng.random((n, width)).astype(object)
        rows[rng.integers(0, n), rng.integers(0, width)] = {"not": "a number"}
        return rows, "object"
    if mode == "strings":
        rows = rng.random((n, width)).astype(object)
        rows[rng.integers(0, n), rng.integers(0, width)] = "mithril"
        return rows, "strings"
    rows = rng.random((n, width))
    bad = np.nan if mode == "nan" else np.inf
    rows[rng.integers(0, n), rng.integers(0, width)] = bad
    return rows, mode


@pytest.fixture(scope="module")
def surfaces(tiny_pipeline):
    runner = EngineRunner(tiny_pipeline.encoder, tiny_pipeline.blackbox)
    strategy = CoreCFStrategy(tiny_pipeline.explainer, n_candidates=1)
    service = ExplanationService(tiny_pipeline)
    causal = ScmCausalModel(tiny_pipeline.encoder)
    return tiny_pipeline, runner, strategy, service, causal


def test_engine_runner_rejects_fuzzed_rows(surfaces):
    pipeline, runner, strategy, _, _ = surfaces
    rng = np.random.default_rng(SEED)
    for _ in range(N_TRIALS):
        rows, mode = corrupt_rows(rng, pipeline.encoder.n_encoded)
        with pytest.raises(SchemaMismatchError):
            runner.run(strategy, rows)


def test_service_explain_batch_rejects_fuzzed_rows(surfaces):
    pipeline, _, _, service, _ = surfaces
    rng = np.random.default_rng(SEED + 1)
    for _ in range(N_TRIALS):
        rows, mode = corrupt_rows(rng, pipeline.encoder.n_encoded)
        with pytest.raises(SchemaMismatchError):
            service.explain_batch(rows)


def test_repair_batch_rejects_fuzzed_inputs(surfaces):
    pipeline, _, _, _, causal = surfaces
    width = pipeline.encoder.n_encoded
    x_good = pipeline.bundle.encoded[:3]
    sweep_good = np.repeat(x_good[:, None, :], 2, axis=1)
    rng = np.random.default_rng(SEED + 2)
    for _ in range(N_TRIALS):
        rows, mode = corrupt_rows(rng, width)
        # corrupted inputs with well-formed candidates
        with pytest.raises(SchemaMismatchError):
            causal.repair_batch(rows, np.repeat(
                np.zeros((len(rows), 1, width)), 2, axis=1))
        # well-formed inputs with the corruption moved into the sweep
        bad_sweep = np.asarray(rows, dtype=object)[:, None, :]
        with pytest.raises((SchemaMismatchError, ValueError)):
            causal.repair_batch(x_good[:len(rows)], bad_sweep)
    # targeted sweep corruption at fixed shapes: NaN cells and wrong width
    nan_sweep = sweep_good.copy()
    nan_sweep[1, 0, 2] = np.nan
    with pytest.raises(SchemaMismatchError):
        causal.repair_batch(x_good, nan_sweep)
    with pytest.raises(SchemaMismatchError):
        causal.repair_batch(x_good, sweep_good[:, :, :-1])


def test_wrong_ndim_stays_a_plain_shape_error(surfaces):
    # an API-shape mistake (1-D row, wrong tensor rank) is NOT schema
    # drift: it raises ValueError but never SchemaMismatchError
    pipeline, _, _, service, causal = surfaces
    row_1d = pipeline.bundle.encoded[0]
    with pytest.raises(ValueError) as excinfo:
        service.explain_batch(row_1d)
    assert not isinstance(excinfo.value, SchemaMismatchError)
    x = pipeline.bundle.encoded[:3]
    with pytest.raises(ValueError) as excinfo:
        causal.repair_batch(x, x)  # 2-D where a 3-D sweep is required
    assert not isinstance(excinfo.value, SchemaMismatchError)


def test_robust_service_rejects_fuzzed_rows(surfaces):
    # the ensemble-hosting serving path validates before any K-model
    # scoring: the fused GEMM must never see a malformed batch
    from repro.models import train_ensemble

    pipeline, _, _, _, _ = surfaces
    x_train, y_train = pipeline.bundle.split("train")
    ensemble = train_ensemble(x_train, y_train, n_members=2, seed=0, epochs=1)
    service = ExplanationService(pipeline, ensemble=ensemble)
    rng = np.random.default_rng(SEED + 4)
    for _ in range(N_TRIALS):
        rows, mode = corrupt_rows(rng, pipeline.encoder.n_encoded)
        with pytest.raises(SchemaMismatchError):
            service.explain_batch(rows)


def corrupt_ensemble_artifact(rng, target):
    """Apply one randomized corruption to a saved ensemble overlay."""
    npz_path = target / "ensemble.npz"
    meta_path = target / "ensemble.json"
    mode = rng.choice(["npz_garbage", "npz_truncate", "npz_missing",
                       "meta_garbage", "meta_version", "meta_state"])
    if mode == "npz_garbage":
        npz_path.write_bytes(rng.bytes(int(rng.integers(1, 64))))
    elif mode == "npz_truncate":
        npz_path.write_bytes(npz_path.read_bytes()[: int(rng.integers(0, 40))])
    elif mode == "npz_missing":
        npz_path.unlink()
    elif mode == "meta_garbage":
        meta_path.write_text("{mithril" + "}" * int(rng.integers(0, 3)))
    elif mode == "meta_version":
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = int(rng.integers(100, 1000))
        meta_path.write_text(json.dumps(meta))
    else:
        meta = json.loads(meta_path.read_text())
        meta["state"]["seed"] = int(rng.integers(1000, 2000))
        meta_path.write_text(json.dumps(meta))
    return mode


def test_corrupted_ensemble_artifacts_fail_structured(surfaces, tmp_path):
    # every on-disk corruption surfaces as the store's error family
    # (StaleArtifactError included), never a raw numpy/zipfile/KeyError
    from repro.models import train_ensemble

    pipeline, _, _, _, _ = surfaces
    x_train, y_train = pipeline.bundle.split("train")
    ensemble = train_ensemble(x_train, y_train, n_members=2, seed=0, epochs=1)
    rng = np.random.default_rng(SEED + 5)
    for trial in range(N_TRIALS):
        store = ArtifactStore(tmp_path / f"fuzz{trial}")
        store.save(pipeline, name="tiny")
        store.save_ensemble("tiny", ensemble)
        corrupt_ensemble_artifact(rng, store.artifact_dir("tiny"))
        with pytest.raises(ArtifactError):
            store.load_ensemble("tiny")


def test_fuzz_never_mutates_service_state(surfaces):
    # a rejected request must not count as served traffic or poison caches
    pipeline, _, _, service, _ = surfaces
    rng = np.random.default_rng(SEED + 3)
    before = dict(service.stats)
    for _ in range(N_TRIALS):
        rows, _ = corrupt_rows(rng, pipeline.encoder.n_encoded)
        with pytest.raises(SchemaMismatchError):
            service.explain_batch(rows)
    assert dict(service.stats) == before

"""Memory-mapped overlay arrays: sidecar split, no-copy loads, checksums."""

import numpy as np
import pytest

from repro.serve import ArtifactStore
from repro.serve.store import MMAP_THRESHOLD, ArtifactError


def _backing_memmap(array):
    """Walk the .base chain to the np.memmap a view is backed by."""
    node = array
    while node is not None:
        if isinstance(node, np.memmap):
            return node
        node = getattr(node, "base", None)
    return None


@pytest.fixture(scope="module")
def saved(tiny_pipeline, tmp_path_factory):
    """Artifact + density overlay in a store with a 1-byte mmap threshold."""
    from repro.density import KnnDensity

    store = ArtifactStore(tmp_path_factory.mktemp("mmap"), mmap_threshold=1)
    store.save(tiny_pipeline, name="t")
    x_train, y_train = tiny_pipeline.bundle.split("train")
    desired_class = int(tiny_pipeline.bundle.schema.desired_class)
    reference = x_train[y_train == desired_class][:150]
    model = KnnDensity(k_neighbors=5).fit(reference)
    store.save_overlay("t", "density", model)
    return store, model, reference


class TestMmapSidecars:
    def test_default_threshold_is_one_mib(self, tmp_path):
        assert MMAP_THRESHOLD == 1 << 20
        assert ArtifactStore(tmp_path).mmap_threshold == MMAP_THRESHOLD

    def test_large_arrays_split_into_npy_sidecars(self, saved):
        store, model, _ = saved
        target = store.artifact_dir("t")
        assert (target / "density.reference.npy").is_file()
        meta = (target / "density.json").read_text()
        assert "density.reference.npy" in meta

    def test_loaded_reference_is_memory_mapped_no_copy(self, saved):
        store, model, reference = saved
        loaded = store.load_overlay("t", "density")
        backing = _backing_memmap(loaded.reference_)
        assert backing is not None and backing.mode == "r"
        np.testing.assert_array_equal(np.asarray(loaded.reference_), reference)

    def test_mmap_loaded_model_scores_bit_identically(self, saved):
        store, model, reference = saved
        loaded = store.load_overlay("t", "density")
        assert loaded.fingerprint() == model.fingerprint()
        probe = reference[:9] + 0.05
        np.testing.assert_array_equal(loaded.score(probe), model.score(probe))

    def test_sidecar_corruption_raises(self, tiny_pipeline, tmp_path):
        from repro.density import KnnDensity

        store = ArtifactStore(tmp_path, mmap_threshold=1)
        store.save(tiny_pipeline, name="t")
        x_train, _ = tiny_pipeline.bundle.split("train")
        model = KnnDensity(k_neighbors=4).fit(x_train[:80])
        store.save_overlay("t", "density", model)
        sidecar = store.artifact_dir("t") / "density.reference.npy"
        tampered = np.load(sidecar)
        tampered[0, 0] += 1.0
        np.save(sidecar, tampered)
        with pytest.raises(ArtifactError, match="checksum"):
            store.load_overlay("t", "density")

    def test_missing_sidecar_raises(self, tiny_pipeline, tmp_path):
        from repro.density import KnnDensity

        store = ArtifactStore(tmp_path, mmap_threshold=1)
        store.save(tiny_pipeline, name="t")
        x_train, _ = tiny_pipeline.bundle.split("train")
        store.save_overlay("t", "density", KnnDensity(k_neighbors=4).fit(x_train[:80]))
        (store.artifact_dir("t") / "density.reference.npy").unlink()
        with pytest.raises(ArtifactError, match="missing"):
            store.load_overlay("t", "density")

    def test_resave_removes_stale_sidecars(self, tiny_pipeline, tmp_path):
        from repro.density import KnnDensity

        store = ArtifactStore(tmp_path, mmap_threshold=1)
        store.save(tiny_pipeline, name="t")
        x_train, _ = tiny_pipeline.bundle.split("train")
        store.save_overlay("t", "density", KnnDensity(k_neighbors=4).fit(x_train[:80]))
        # second save in an all-in-npz store must drop the old sidecar
        store.mmap_threshold = 1 << 30
        store.save_overlay("t", "density", KnnDensity(k_neighbors=4).fit(x_train[:80]))
        assert not (store.artifact_dir("t") / "density.reference.npy").exists()
        loaded = store.load_overlay("t", "density")
        assert _backing_memmap(loaded.reference_) is None

    def test_pre_split_overlays_still_load(self, tiny_pipeline, tmp_path):
        """An overlay saved with everything in the npz (the pre-mmap
        format has no mmap_arrays entry) loads unchanged."""
        from repro.density import KnnDensity

        store = ArtifactStore(tmp_path, mmap_threshold=1 << 40)
        store.save(tiny_pipeline, name="t")
        x_train, _ = tiny_pipeline.bundle.split("train")
        model = KnnDensity(k_neighbors=4).fit(x_train[:80])
        store.save_overlay("t", "density", model)
        assert not list(store.artifact_dir("t").glob("density.*.npy"))
        loaded = store.load_overlay("t", "density")
        assert loaded.fingerprint() == model.fingerprint()

"""Unified warm_start overlay spec and the compiled-plan serving engine."""

import numpy as np
import pytest

from repro.density import KnnDensity
from repro.serve import ArtifactStore, ExplanationService


@pytest.fixture(scope="module")
def stored(tiny_pipeline, tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("service-plan"))
    store.save(tiny_pipeline, name="t")
    x_train, y_train = tiny_pipeline.bundle.split("train")
    desired_class = int(tiny_pipeline.bundle.schema.desired_class)
    density = KnnDensity(k_neighbors=5).fit(
        x_train[y_train == desired_class][:150])
    store.save_overlay("t", "density", density)
    return store, density


class TestWarmStartOverlays:
    def test_overlays_spec_loads_from_store(self, stored):
        store, density = stored
        service = ExplanationService.warm_start(
            store, "t", overlays={"density": "store"})
        assert service.density is not None
        assert service.density.fingerprint() == density.fingerprint()

    def test_overlays_spec_accepts_fitted_models(self, stored):
        store, density = stored
        service = ExplanationService.warm_start(
            store, "t", overlays={"density": density})
        assert service.density is density

    def test_legacy_kwargs_warn_and_match_the_spec(self, stored):
        store, density = stored
        with pytest.warns(DeprecationWarning, match="overlays="):
            legacy = ExplanationService.warm_start(store, "t", density="store")
        unified = ExplanationService.warm_start(
            store, "t", overlays={"density": "store"})
        assert legacy.density.fingerprint() == unified.density.fingerprint()
        assert legacy.cache_fingerprint == unified.cache_fingerprint

    def test_conflicting_kind_rejected(self, stored):
        store, density = stored
        with pytest.raises(ValueError, match="both"):
            ExplanationService.warm_start(
                store, "t", density=density, overlays={"density": "store"})

    def test_unknown_overlay_kind_rejected(self, stored):
        store, _ = stored
        with pytest.raises(ValueError, match="unknown overlay kinds"):
            ExplanationService.warm_start(
                store, "t", overlays={"hologram": "store"})


class TestPlanEngine:
    def test_rejects_unknown_engine(self, tiny_pipeline):
        with pytest.raises(ValueError, match="engine"):
            ExplanationService(tiny_pipeline, engine="warp")

    def test_staged_engine_has_no_plan(self, tiny_pipeline):
        service = ExplanationService(tiny_pipeline)
        assert service.plan is None
        assert service.engine_fingerprint == "staged"

    def test_plan_engine_serves_staged_results(self, tiny_pipeline,
                                               explain_rows):
        staged = ExplanationService(tiny_pipeline)
        compiled = ExplanationService(tiny_pipeline, engine="plan")
        a = staged.explain_batch(explain_rows)
        b = compiled.explain_batch(explain_rows)
        np.testing.assert_array_equal(b.x_cf, a.x_cf)
        np.testing.assert_array_equal(b.valid, a.valid)
        np.testing.assert_array_equal(b.feasible, a.feasible)

    def test_plan_engine_fingerprint_partitions_the_cache(self,
                                                          tiny_pipeline):
        staged = ExplanationService(tiny_pipeline)
        compiled = ExplanationService(tiny_pipeline, engine="plan")
        assert compiled.engine_fingerprint.startswith("plan-")
        assert compiled.plan is not None
        assert (compiled.engine_fingerprint
                == f"plan-{compiled.plan.fingerprint()}")
        assert staged.cache_fingerprint != compiled.cache_fingerprint
        # only the engine component differs
        assert (staged.cache_fingerprint.split(":")[2:]
                == compiled.cache_fingerprint.split(":")[2:])

    def test_backend_switch_invalidates_the_key(self, tiny_pipeline):
        numpy_service = ExplanationService(tiny_pipeline, engine="plan")
        tiled = ExplanationService(
            tiny_pipeline, engine="plan", plan_backend="float32")
        assert (numpy_service.cache_fingerprint
                != tiled.cache_fingerprint)

    def test_plan_recompiles_when_the_runner_rebuilds(self, tiny_pipeline,
                                                      stored):
        _, density = stored
        service = ExplanationService(tiny_pipeline, engine="plan")
        first = service.plan
        assert service.plan is first  # stable while config is stable
        service.density = density
        second = service.plan
        assert second is not first
        assert second.runner.density is density

    def test_plan_engine_flush_serves_submitted_rows(self, tiny_pipeline,
                                                     explain_rows):
        # the plan engine routes flushed tickets through the compiled
        # core chain (m=1 decode), which must answer exactly what the
        # staged batch path answers for the same row
        staged = ExplanationService(tiny_pipeline)
        compiled = ExplanationService(tiny_pipeline, engine="plan")
        batch = staged.explain_batch(explain_rows[:1])
        ticket = compiled.submit(explain_rows[0])
        compiled.flush()
        resolved = ticket.result()
        np.testing.assert_array_equal(resolved["x_cf"], batch.x_cf[0])
        assert resolved["valid"] == bool(batch.valid[0])

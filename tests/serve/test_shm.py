"""Tests for shared-memory model weights (repro.serve.shm)."""

import numpy as np
import pytest

from repro.serve import SharedWeights, attach_pipeline, pipeline_weight_arrays
from repro.serve.shm import BLACKBOX_PREFIX, attach_module


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(7)
    return {
        "w1": rng.random((5, 3)),
        "b1": rng.random(3),
        "w2": rng.random((3, 1)).astype(np.float32),
    }


class TestSharedWeights:
    def test_publish_round_trips_every_array(self, arrays):
        with SharedWeights.publish(arrays) as shared:
            assert shared.keys() == sorted(arrays)
            for key, value in arrays.items():
                view = shared.view(key)
                np.testing.assert_array_equal(view, value)
                assert view.dtype == value.dtype

    def test_views_are_read_only_and_zero_copy(self, arrays):
        with SharedWeights.publish(arrays) as shared:
            view = shared.view("w1")
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 99.0
            assert shared.owns_buffer_of(view)
            assert not shared.owns_buffer_of(arrays["w1"])

    def test_attach_maps_the_same_segment(self, arrays):
        with SharedWeights.publish(arrays) as shared:
            spec = shared.spec()
            attached = SharedWeights.attach(spec)
            try:
                for key, value in arrays.items():
                    np.testing.assert_array_equal(attached.view(key), value)
                # one physical copy: publisher writes are not possible
                # (views are read-only) but both handles map one buffer
                assert attached.nbytes == shared.nbytes
            finally:
                attached.close()

    def test_spec_is_plain_picklable_data(self, arrays):
        import pickle

        with SharedWeights.publish(arrays) as shared:
            spec = pickle.loads(pickle.dumps(shared.spec()))
            attached = SharedWeights.attach(spec)
            try:
                np.testing.assert_array_equal(
                    attached.view("b1"), arrays["b1"])
            finally:
                attached.close()

    def test_views_prefix_filter_strips_prefix(self, arrays):
        prefixed = {f"m/{key}": value for key, value in arrays.items()}
        with SharedWeights.publish(prefixed) as shared:
            views = shared.views("m/")
            assert set(views) == set(arrays)

    def test_close_is_idempotent(self, arrays):
        shared = SharedWeights.publish(arrays)
        shared.close()
        shared.close()


class TestAttachPipeline:
    def test_pipeline_serves_bit_identical_from_shared_views(
            self, tiny_pipeline, explain_rows):
        blackbox = tiny_pipeline.explainer.blackbox
        vae = tiny_pipeline.explainer.generator.vae
        originals = {
            "blackbox": {name: tensor.data for name, tensor
                         in blackbox.named_parameters(include_frozen=True)},
            "vae": {name: tensor.data for name, tensor
                    in vae.named_parameters(include_frozen=True)},
        }
        before = blackbox.predict(explain_rows)
        generated = tiny_pipeline.explainer.generator.generate(
            explain_rows, 1 - before)

        shared = SharedWeights.publish(
            pipeline_weight_arrays(tiny_pipeline))
        try:
            attach_pipeline(tiny_pipeline, shared)
            for name, tensor in blackbox.named_parameters(
                    include_frozen=True):
                assert shared.owns_buffer_of(tensor.data), name
            np.testing.assert_array_equal(
                blackbox.predict(explain_rows), before)
            np.testing.assert_array_equal(
                tiny_pipeline.explainer.generator.generate(
                    explain_rows, 1 - before),
                generated)
        finally:
            # the fixture is session-scoped: rebind the private arrays
            # back so later tests see an unshared pipeline
            for name, tensor in blackbox.named_parameters(
                    include_frozen=True):
                tensor.data = originals["blackbox"][name]
            for name, tensor in vae.named_parameters(include_frozen=True):
                tensor.data = originals["vae"][name]
            shared.close()

    def test_attach_module_rejects_key_drift(self, tiny_pipeline):
        blackbox = tiny_pipeline.explainer.blackbox
        arrays = {
            BLACKBOX_PREFIX + key: value
            for key, value in blackbox.state_dict().items()
        }
        renamed = dict(arrays)
        first = sorted(renamed)[0]
        renamed[first + "_drifted"] = renamed.pop(first)
        with SharedWeights.publish(renamed) as shared:
            with pytest.raises(KeyError, match="do not match"):
                attach_module(blackbox, shared, BLACKBOX_PREFIX)

    def test_attach_module_rejects_shape_drift(self, tiny_pipeline):
        blackbox = tiny_pipeline.explainer.blackbox
        arrays = {
            BLACKBOX_PREFIX + key: value
            for key, value in blackbox.state_dict().items()
        }
        first = sorted(arrays)[0]
        arrays[first] = np.zeros(np.asarray(arrays[first]).size + 1)
        with SharedWeights.publish(arrays) as shared:
            with pytest.raises(ValueError, match="shape mismatch"):
                attach_module(blackbox, shared, BLACKBOX_PREFIX)

    def test_overlay_arrays_join_the_segment(self, tiny_pipeline):
        from repro.density import KnnDensity

        x_train, _ = tiny_pipeline.bundle.split("train")
        density = KnnDensity(k_neighbors=5).fit(x_train[:64])
        arrays = pipeline_weight_arrays(
            tiny_pipeline, overlays={"density": density, "causal": None})
        overlay_keys = [key for key in arrays
                        if key.startswith("overlay:density/")]
        assert overlay_keys
        with SharedWeights.publish(arrays) as shared:
            for key in overlay_keys:
                np.testing.assert_array_equal(
                    shared.view(key), arrays[key])

"""The shared Persistable contract and the extracted fingerprint recipe.

Density, causal and ensemble models each hand-rolled the same
state-hashing algorithm before :mod:`repro.serve.persist` unified it;
these tests pin the extracted :func:`fingerprint_state` byte-identical
to that historical recipe (so every sidecar fingerprint persisted by
older code still validates) and check the three model families satisfy
the structural :class:`Persistable` protocol.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.serve import Persistable, fingerprint_state


def historical_fingerprint(state, excludes=()):
    """The per-layer algorithm as it existed before the extraction."""
    payload = {}
    for key, value in state.items():
        if key in excludes:
            continue
        if isinstance(value, np.ndarray):
            payload[key] = hashlib.sha256(
                np.ascontiguousarray(value).tobytes()).hexdigest()
        else:
            payload[key] = value
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@pytest.fixture(scope="module")
def models(tiny_pipeline):
    """One fitted model per overlay family, on the shared tiny pipeline."""
    from repro.causal import fit_causal
    from repro.density import KnnDensity
    from repro.models import train_ensemble

    x_train, y_train = tiny_pipeline.bundle.split("train")
    desired_class = int(tiny_pipeline.bundle.schema.desired_class)
    density = KnnDensity(k_neighbors=5).fit(
        x_train[y_train == desired_class][:120])
    causal = fit_causal("scm", tiny_pipeline.encoder, x_train)
    ensemble = train_ensemble(
        x_train, y_train, n_members=2, epochs=1,
        include=tiny_pipeline.blackbox)
    return density, causal, ensemble


class TestFingerprintState:
    def test_matches_the_historical_recipe(self):
        state = {
            "kind": "probe",
            "reference": np.arange(12, dtype=np.float64).reshape(3, 4),
            "k_neighbors": 5,
            "bandwidth": 0.25,
            "transient": np.ones(3),
        }
        assert fingerprint_state(state) == historical_fingerprint(state)
        assert fingerprint_state(
            state, excludes=("transient",)) == historical_fingerprint(
            state, excludes=("transient",))

    def test_excludes_change_nothing_but_the_excluded(self):
        state = {"a": np.zeros(4), "b": 1}
        assert fingerprint_state(state, excludes=("b",)) != fingerprint_state(state)
        without = {"a": np.zeros(4)}
        assert fingerprint_state(state, excludes=("b",)) == fingerprint_state(without)

    def test_array_content_not_identity(self):
        a = {"w": np.arange(6, dtype=np.float64)}
        b = {"w": np.arange(6, dtype=np.float64).copy()}
        assert fingerprint_state(a) == fingerprint_state(b)
        c = {"w": np.arange(6, dtype=np.float64)[::-1].copy()}
        assert fingerprint_state(a) != fingerprint_state(c)

    def test_noncontiguous_arrays_hash_by_content(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        strided = {"w": base[:, ::2]}
        contiguous = {"w": np.ascontiguousarray(base[:, ::2])}
        assert fingerprint_state(strided) == fingerprint_state(contiguous)

    def test_model_fingerprints_delegate_to_the_shared_recipe(self, models):
        density, causal, ensemble = models
        assert density.fingerprint() == historical_fingerprint(
            density.get_state(), density.fingerprint_excludes)
        assert causal.fingerprint() == historical_fingerprint(
            causal._fingerprint_state(), causal.fingerprint_excludes)
        assert ensemble.fingerprint() == historical_fingerprint(
            ensemble.get_state(), ensemble.fingerprint_excludes)


class TestPersistableProtocol:
    def test_all_three_families_satisfy_it(self, models):
        for model in models:
            assert isinstance(model, Persistable)

    def test_structural_not_nominal(self):
        class _Conforming:
            def get_state(self):
                return {}

            @classmethod
            def from_state(cls, state):
                return cls()

            def fingerprint(self):
                return fingerprint_state({})

        class _Missing:
            def get_state(self):
                return {}

        assert isinstance(_Conforming(), Persistable)
        assert not isinstance(_Missing(), Persistable)

"""ExplanationService tests: cache correctness, micro-batching, parity."""

import numpy as np
import pytest

from repro.serve import ArtifactStore, ExplanationService


@pytest.fixture()
def service(tiny_pipeline):
    return ExplanationService(tiny_pipeline, cache_size=256)


class TestWarmStartParity:
    def test_matches_one_shot_pipeline(self, tiny_pipeline, explain_rows, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(tiny_pipeline, name="p")
        service = ExplanationService.warm_start(store, "p")
        warm = service.explain_batch(explain_rows)
        one_shot = tiny_pipeline.explainer.explain(explain_rows)
        assert np.array_equal(warm.x_cf, one_shot.x_cf)
        assert np.array_equal(warm.desired, one_shot.desired)
        assert np.array_equal(warm.valid, one_shot.valid)
        assert np.array_equal(warm.feasible, one_shot.feasible)


class TestResultCache:
    def test_repeat_batch_served_from_cache(self, service, explain_rows):
        first = service.explain_batch(explain_rows)
        assert service.cache.stats["misses"] == len(explain_rows)
        second = service.explain_batch(explain_rows)
        assert service.cache.stats["hits"] == len(explain_rows)
        assert np.array_equal(first.x_cf, second.x_cf)
        assert np.array_equal(first.valid, second.valid)
        assert np.array_equal(first.feasible, second.feasible)

    def test_interleaved_batches_are_consistent(self, service, explain_rows):
        full = service.explain_batch(explain_rows)
        shuffled = np.random.default_rng(0).permutation(len(explain_rows))
        partial = service.explain_batch(explain_rows[shuffled])
        assert np.array_equal(partial.x_cf, full.x_cf[shuffled])

    def test_mixed_hit_miss_batch(self, service, explain_rows):
        warm_half = service.explain_batch(explain_rows[:12])
        hits_before = service.cache.stats["hits"]
        mixed = service.explain_batch(explain_rows)
        assert service.cache.stats["hits"] == hits_before + 12
        assert np.array_equal(mixed.x_cf[:12], warm_half.x_cf)
        fresh = ExplanationService(service.pipeline, cache_size=0)
        np.testing.assert_allclose(
            mixed.x_cf, fresh.explain_batch(explain_rows).x_cf, rtol=1e-10
        )

    def test_desired_is_part_of_the_key(self, service, explain_rows):
        rows = explain_rows[:6]
        to_one = service.explain_batch(rows, desired=np.ones(6, dtype=int))
        to_zero = service.explain_batch(rows, desired=np.zeros(6, dtype=int))
        assert service.cache.stats["misses"] == 12
        assert not np.array_equal(to_one.x_cf, to_zero.x_cf)

    def test_eviction_under_small_capacity(self, tiny_pipeline, explain_rows):
        service = ExplanationService(tiny_pipeline, cache_size=4)
        service.explain_batch(explain_rows[:8])
        assert service.cache.stats["size"] == 4
        assert service.cache.stats["evictions"] == 4

    def test_cache_disabled(self, tiny_pipeline, explain_rows):
        service = ExplanationService(tiny_pipeline, cache_size=0)
        service.explain_batch(explain_rows[:4])
        service.explain_batch(explain_rows[:4])
        assert service.cache.stats["size"] == 0
        assert service.cache.stats["hits"] == 0

    def test_desired_length_mismatch(self, service, explain_rows):
        with pytest.raises(ValueError, match="counts differ"):
            service.explain_batch(explain_rows[:4], desired=[1, 0])


class TestMicroBatching:
    def test_flush_resolves_all_tickets_in_one_sweep(self, service, explain_rows):
        tickets = [service.submit(row) for row in explain_rows[:6]]
        assert service.pending == 6
        assert not tickets[0].ready
        resolved = service.flush(n_candidates=5, rng=np.random.default_rng(11))
        assert resolved == tickets
        assert service.pending == 0
        assert service.stats["flushes"] == 1
        assert service.stats["rows_coalesced"] == 6
        for ticket in tickets:
            result = ticket.result()
            assert result["x_cf"].shape == explain_rows[0].shape
            assert 0 <= result["chosen"] < 5

    def test_flush_matches_direct_candidate_sweep(self, service, explain_rows):
        from repro.core import generate_candidates
        from repro.serve.service import _pick_candidate

        rows = explain_rows[:4]
        tickets = [service.submit(row) for row in rows]
        service.flush(n_candidates=6, rng=np.random.default_rng(3))

        desired = 1 - service.explainer.blackbox.predict(rows)
        candidate_sets = generate_candidates(
            service.explainer,
            rows,
            n_candidates=6,
            desired=desired,
            rng=np.random.default_rng(3),
        )
        for ticket, candidate_set in zip(tickets, candidate_sets):
            index = _pick_candidate(candidate_set)
            assert np.array_equal(
                ticket.result()["x_cf"], candidate_set.candidates[index]
            )

    def test_explicit_desired_ticket(self, service, explain_rows):
        ticket = service.submit(explain_rows[0], desired=1)
        service.flush(rng=np.random.default_rng(0))
        assert ticket.result()["desired"] == 1

    def test_unresolved_ticket_raises(self, service, explain_rows):
        ticket = service.submit(explain_rows[0])
        with pytest.raises(RuntimeError, match="not resolved"):
            ticket.result()
        service.flush()

    def test_flush_with_nothing_pending(self, service):
        assert service.flush() == []
        assert service.stats["flushes"] == 0


class TestStats:
    def test_counters_accumulate(self, service, explain_rows):
        service.explain_batch(explain_rows[:8])
        service.explain_batch(explain_rows[:8])
        stats = service.stats
        assert stats["batches_served"] == 2
        assert stats["rows_served"] == 16
        assert stats["cache_hits"] == 8
        assert stats["cache_misses"] == 8

    def test_service_exposes_pipeline_metadata(self, service):
        assert service.dataset == "adult"
        assert service.encoder is service.explainer.encoder
        assert len(service.fingerprint) == 64

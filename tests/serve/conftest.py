"""Shared fixtures for the serving-subsystem tests.

One tiny pipeline is trained per test session; every store/service test
reuses it (saving is cheap, training is not).
"""

import pytest

from repro.core import CFTrainingConfig
from repro.experiments.runconfig import ExperimentScale
from repro.serve import train_pipeline

#: Miniature but real: the full train -> blackbox -> CF-VAE path on a
#: few hundred rows, small enough to train in well under a second.
TINY_SCALE = ExperimentScale("tiny", 600, 30, 4)

TINY_CONFIG = CFTrainingConfig(
    learning_rate=3e-3,
    batch_size=64,
    epochs=2,
    warmstart_epochs=2,
)


@pytest.fixture(scope="session")
def tiny_settings():
    """(scale, config) pair the shared pipeline was trained with."""
    return TINY_SCALE, TINY_CONFIG


@pytest.fixture(scope="session")
def tiny_pipeline():
    return train_pipeline(
        "adult",
        scale=TINY_SCALE,
        seed=0,
        constraint_kind="unary",
        config=TINY_CONFIG,
    )


@pytest.fixture(scope="session")
def explain_rows(tiny_pipeline):
    x_test, _ = tiny_pipeline.bundle.split("test")
    return x_test[:24]

"""Generic overlay registry: one save/load/has surface for every kind.

The per-kind store triples (``save_density`` / ``save_causal`` /
``save_ensemble`` and their load/has siblings) collapsed into
``save_overlay(name, kind, model)`` dispatching through registered
:class:`OverlayKind` entries.  These tests cover the generic surface,
the kind registry, and the deprecation contract of all nine legacy
wrappers (still working, each warning once per call).
"""

import numpy as np
import pytest

from repro.serve import (
    ArtifactStore,
    OverlayKind,
    overlay_kinds,
    register_overlay_kind,
)
from repro.serve.store import _OVERLAY_KINDS


@pytest.fixture(scope="module")
def saved(tiny_pipeline, tmp_path_factory):
    """A stored artifact plus one fitted model per overlay kind."""
    from repro.causal import fit_causal
    from repro.density import KnnDensity
    from repro.models import train_ensemble

    store = ArtifactStore(tmp_path_factory.mktemp("overlays"))
    store.save(tiny_pipeline, name="t")
    x_train, y_train = tiny_pipeline.bundle.split("train")
    desired_class = int(tiny_pipeline.bundle.schema.desired_class)
    models = {
        "density": KnnDensity(k_neighbors=5).fit(
            x_train[y_train == desired_class][:120]),
        "causal": fit_causal("scm", tiny_pipeline.encoder, x_train),
        "ensemble": train_ensemble(
            x_train, y_train, n_members=2, epochs=1,
            include=tiny_pipeline.blackbox),
    }
    return store, models


class TestGenericSurface:
    def test_registry_lists_the_three_builtin_kinds(self):
        assert overlay_kinds() == ("causal", "density", "ensemble")

    @pytest.mark.parametrize("kind", ("density", "causal", "ensemble"))
    def test_roundtrip_every_kind(self, saved, tiny_pipeline, kind):
        store, models = saved
        assert not store.has_overlay("t", kind)
        store.save_overlay("t", kind, models[kind])
        assert store.has_overlay("t", kind)
        loaded = store.load_overlay(
            "t", kind, encoder=tiny_pipeline.encoder)
        assert loaded.fingerprint() == models[kind].fingerprint()

    def test_unknown_kind_lists_known(self, saved):
        store, models = saved
        with pytest.raises(KeyError, match="unknown overlay kind"):
            store.save_overlay("t", "hologram", models["density"])
        with pytest.raises(KeyError, match="unknown overlay kind"):
            store.has_overlay("t", "hologram")
        with pytest.raises(KeyError, match="unknown overlay kind"):
            store.load_overlay("t", "hologram")

    def test_register_rejects_duplicates(self):
        kind = OverlayKind("density", "density.npz", "density.json", None)
        with pytest.raises(ValueError, match="already registered"):
            register_overlay_kind(kind)

    def test_register_custom_kind_dispatches(self, saved):
        store, models = saved

        def rebuild(store, name, state, vae=None, encoder=None):
            from repro.density import density_from_state

            return density_from_state(state, vae=vae)

        try:
            register_overlay_kind(
                OverlayKind("shadow", "shadow.npz", "shadow.json", rebuild))
            store.save_overlay("t", "shadow", models["density"])
            assert (store.artifact_dir("t") / "shadow.npz").is_file()
            loaded = store.load_overlay("t", "shadow")
            probe = models["density"].reference_[:5]
            np.testing.assert_array_equal(
                loaded.score(probe), models["density"].score(probe))
        finally:
            _OVERLAY_KINDS.pop("shadow", None)


class TestDeprecatedWrappers:
    """All nine legacy methods still work and warn."""

    def test_density_wrappers(self, saved):
        store, models = saved
        with pytest.warns(DeprecationWarning, match="save_overlay"):
            store.save_density("t", models["density"])
        with pytest.warns(DeprecationWarning, match="has_overlay"):
            assert store.has_density("t")
        with pytest.warns(DeprecationWarning, match="load_overlay"):
            loaded = store.load_density("t")
        assert loaded.fingerprint() == models["density"].fingerprint()

    def test_causal_wrappers(self, saved, tiny_pipeline):
        store, models = saved
        with pytest.warns(DeprecationWarning, match="save_overlay"):
            store.save_causal("t", models["causal"])
        with pytest.warns(DeprecationWarning, match="has_overlay"):
            assert store.has_causal("t")
        with pytest.warns(DeprecationWarning, match="load_overlay"):
            loaded = store.load_causal("t", encoder=tiny_pipeline.encoder)
        assert loaded.fingerprint() == models["causal"].fingerprint()

    def test_ensemble_wrappers(self, saved):
        store, models = saved
        with pytest.warns(DeprecationWarning, match="save_overlay"):
            store.save_ensemble("t", models["ensemble"])
        with pytest.warns(DeprecationWarning, match="has_overlay"):
            assert store.has_ensemble("t")
        with pytest.warns(DeprecationWarning, match="load_overlay"):
            loaded = store.load_ensemble("t")
        assert loaded.fingerprint() == models["ensemble"].fingerprint()

    def test_wrappers_match_generic_results(self, saved):
        store, models = saved
        store.save_overlay("t", "density", models["density"])
        with pytest.warns(DeprecationWarning):
            legacy = store.load_density("t")
        generic = store.load_overlay("t", "density")
        probe = models["density"].reference_[:7] + 0.05
        np.testing.assert_array_equal(
            legacy.score(probe), generic.score(probe))

"""Ensemble state persistence, ensemble-aware serving and the structured
``StaleArtifactError`` contract (``expected``/``found`` at every site)."""

import json

import numpy as np
import pytest

from repro.models import train_ensemble
from repro.serve import (
    ArtifactError,
    ArtifactStore,
    ExplanationService,
    StaleArtifactError,
)


@pytest.fixture()
def saved(tmp_path, tiny_pipeline):
    store = ArtifactStore(tmp_path / "store")
    store.save(tiny_pipeline, name="tiny")
    return store, tiny_pipeline


@pytest.fixture(scope="module")
def tiny_ensemble(tiny_pipeline):
    x_train, y_train = tiny_pipeline.bundle.split("train")
    return train_ensemble(
        x_train, y_train, n_members=3, seed=0, epochs=3,
        include=tiny_pipeline.blackbox)


class TestEnsembleOverlay:
    def test_round_trip_preserves_fingerprint_and_scores(self, saved, tiny_ensemble):
        store, pipeline = saved
        assert not store.has_ensemble("tiny")
        store.save_ensemble("tiny", tiny_ensemble)
        assert store.has_ensemble("tiny")

        loaded = store.load_ensemble("tiny")
        assert loaded.fingerprint() == tiny_ensemble.fingerprint()
        assert loaded.n_members == tiny_ensemble.n_members
        x = pipeline.bundle.encoded[:12]
        np.testing.assert_array_equal(
            loaded.predict_logits_all(x), tiny_ensemble.predict_logits_all(x))

    def test_save_requires_existing_artifact(self, tmp_path, tiny_ensemble):
        store = ArtifactStore(tmp_path / "empty")
        with pytest.raises(ArtifactError, match="save the pipeline first"):
            store.save_ensemble("ghost", tiny_ensemble)

    def test_load_missing_overlay_raises(self, saved):
        store, _ = saved
        with pytest.raises(ArtifactError, match="no ensemble state"):
            store.load_ensemble("tiny")

    def test_corrupted_npz_fails_checksum(self, saved, tiny_ensemble):
        store, _ = saved
        store.save_ensemble("tiny", tiny_ensemble)
        (store.artifact_dir("tiny") / "ensemble.npz").write_bytes(b"gandalf")
        with pytest.raises(ArtifactError, match="checksum"):
            store.load_ensemble("tiny")

    def test_tampered_state_is_stale(self, saved, tiny_ensemble):
        store, _ = saved
        store.save_ensemble("tiny", tiny_ensemble)
        meta_path = store.artifact_dir("tiny") / "ensemble.json"
        meta = json.loads(meta_path.read_text())
        meta["state"]["seed"] = 777  # drifted knob, stale fingerprint
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StaleArtifactError, match="stale"):
            store.load_ensemble("tiny")

    def test_wrong_format_version_is_stale(self, saved, tiny_ensemble):
        store, _ = saved
        store.save_ensemble("tiny", tiny_ensemble)
        meta_path = store.artifact_dir("tiny") / "ensemble.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StaleArtifactError, match="format_version"):
            store.load_ensemble("tiny")

    def test_expected_fingerprint_mismatch_is_stale(self, saved, tiny_ensemble):
        store, _ = saved
        store.save_ensemble("tiny", tiny_ensemble)
        with pytest.raises(StaleArtifactError, match="does not match"):
            store.load_ensemble("tiny", expected_fingerprint="bogus")


class TestStructuredStaleErrors:
    """Every StaleArtifactError raise site fills ``expected``/``found``."""

    def test_pipeline_requested_fingerprint_mismatch(self, saved):
        store, _ = saved
        with pytest.raises(StaleArtifactError) as info:
            store.load("tiny", expected_fingerprint="bogus")
        assert info.value.expected == "bogus"
        assert info.value.found is not None
        assert info.value.found != "bogus"
        # the message spells out the full pair for rollover logs
        assert "expected bogus" in str(info.value)
        assert f"found {info.value.found}" in str(info.value)

    def test_pipeline_format_version_mismatch(self, saved):
        from repro.serve.store import ARTIFACT_FORMAT_VERSION

        store, _ = saved
        manifest_path = store.artifact_dir("tiny") / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StaleArtifactError) as info:
            store.load("tiny")
        assert info.value.expected == ARTIFACT_FORMAT_VERSION
        assert info.value.found == 99

    def test_pipeline_recomputed_fingerprint_mismatch(self, saved):
        store, _ = saved
        manifest_path = store.artifact_dir("tiny") / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        stored = manifest["fingerprint"]
        manifest["fingerprint"] = "gandalf"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StaleArtifactError) as info:
            store.load("tiny")
        assert info.value.found == "gandalf"
        assert info.value.expected == stored

    def test_overlay_sites_fill_the_attributes(self, saved, tiny_ensemble):
        from repro.serve.store import ARTIFACT_FORMAT_VERSION

        store, _ = saved
        store.save_ensemble("tiny", tiny_ensemble)
        with pytest.raises(StaleArtifactError) as info:
            store.load_ensemble("tiny", expected_fingerprint="bogus")
        assert info.value.expected == "bogus"
        assert info.value.found == tiny_ensemble.fingerprint()

        meta_path = store.artifact_dir("tiny") / "ensemble.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StaleArtifactError) as info:
            store.load_ensemble("tiny")
        assert info.value.expected == ARTIFACT_FORMAT_VERSION
        assert info.value.found == 99

    def test_plain_artifact_errors_carry_no_pair(self, saved):
        store, _ = saved
        with pytest.raises(ArtifactError) as info:
            store.load("ghost")
        assert not isinstance(info.value, StaleArtifactError)


class TestEnsembleAwareServing:
    def test_warm_start_from_store_serves_with_cross_model_scores(
            self, saved, tiny_ensemble, explain_rows):
        store, pipeline = saved
        store.save_ensemble("tiny", tiny_ensemble)
        service = ExplanationService.warm_start(store, "tiny", ensemble="store")
        assert service.ensemble.fingerprint() == tiny_ensemble.fingerprint()
        result = service.explain_batch(explain_rows)
        assert len(result) == len(explain_rows)

    def test_served_output_matches_direct_runner(self, saved, tiny_ensemble,
                                                 explain_rows):
        from repro.engine import CoreCFStrategy, EngineRunner

        store, pipeline = saved
        service = ExplanationService(pipeline, ensemble=tiny_ensemble)
        served = service.explain_batch(explain_rows)
        runner = EngineRunner(
            pipeline.encoder, pipeline.blackbox, ensemble=tiny_ensemble)
        direct = runner.run(
            CoreCFStrategy(pipeline.explainer, n_candidates=1),
            explain_rows, served.desired)
        np.testing.assert_array_equal(served.x_cf, direct.x_cf)

    def test_cache_key_carries_ensemble_fingerprint_and_quorum(
            self, saved, tiny_ensemble):
        store, pipeline = saved
        plain = ExplanationService(pipeline)
        robust = ExplanationService(pipeline, ensemble=tiny_ensemble)
        assert plain.cache_fingerprint.endswith(":none")
        assert robust.cache_fingerprint.endswith(
            f":{tiny_ensemble.fingerprint()}@q0.5")
        stricter = ExplanationService(
            pipeline, ensemble=tiny_ensemble, robust_quorum=1.0)
        assert stricter.cache_fingerprint != robust.cache_fingerprint

    def test_repointing_ensemble_refreshes_fingerprint_and_runner(
            self, saved, tiny_ensemble):
        store, pipeline = saved
        x_train, y_train = pipeline.bundle.split("train")
        other = train_ensemble(x_train, y_train, n_members=2, seed=9, epochs=2)
        service = ExplanationService(pipeline, ensemble=tiny_ensemble)
        runner_before = service.runner
        key_before = service.cache_fingerprint
        service.ensemble = other
        assert service.cache_fingerprint != key_before
        assert service.runner is not runner_before
        assert service.runner.ensemble is other

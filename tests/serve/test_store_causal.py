"""Causal state persistence and causality-aware serving.

Mirrors ``test_store_density.py``: the overlay round trip, the
staleness/corruption contract, warm-started causal serving and the
causal-extended cache keys.
"""

import json

import numpy as np
import pytest

from repro.causal import MinedCausalModel, ScmCausalModel
from repro.serve import ArtifactError, ArtifactStore, ExplanationService, StaleArtifactError


@pytest.fixture()
def saved(tmp_path, tiny_pipeline):
    store = ArtifactStore(tmp_path / "store")
    store.save(tiny_pipeline, name="tiny")
    return store, tiny_pipeline


def fitted_causal(pipeline, kind="scm"):
    if kind == "scm":
        return ScmCausalModel(pipeline.encoder)
    x_train, y_train = pipeline.bundle.split("train")
    return MinedCausalModel(pipeline.encoder).fit(x_train, y_train)


class TestCausalOverlay:
    @pytest.mark.parametrize("kind", ["scm", "mined"])
    def test_round_trip_preserves_fingerprint_and_repairs(self, saved, kind):
        store, pipeline = saved
        model = fitted_causal(pipeline, kind)
        assert not store.has_causal("tiny")
        store.save_causal("tiny", model)
        assert store.has_causal("tiny")

        loaded = store.load_causal("tiny", encoder=pipeline.encoder)
        assert loaded.fingerprint() == model.fingerprint()
        x = pipeline.bundle.encoded[:8]
        sweep = np.clip(
            x[:, None, :]
            + np.random.default_rng(0).normal(0.0, 0.1, (8, 3, x.shape[1])),
            0.0, 1.0)
        np.testing.assert_array_equal(
            loaded.repair_batch(x, sweep), model.repair_batch(x, sweep))

    def test_load_rebuilds_encoder_from_manifest_when_omitted(self, saved):
        store, pipeline = saved
        store.save_causal("tiny", fitted_causal(pipeline))
        loaded = store.load_causal("tiny")
        assert loaded.encoder.schema.name == "adult"
        assert loaded.fingerprint() == fitted_causal(pipeline).fingerprint()

    def test_save_requires_existing_artifact(self, tmp_path, tiny_pipeline):
        store = ArtifactStore(tmp_path / "empty")
        with pytest.raises(ArtifactError, match="save the pipeline first"):
            store.save_causal("ghost", fitted_causal(tiny_pipeline))

    def test_load_missing_overlay_raises(self, saved):
        store, _ = saved
        with pytest.raises(ArtifactError, match="no causal state"):
            store.load_causal("tiny")

    def test_corrupted_npz_fails_checksum(self, saved):
        store, pipeline = saved
        store.save_causal("tiny", fitted_causal(pipeline, "mined"))
        (store.artifact_dir("tiny") / "causal.npz").write_bytes(b"gandalf")
        with pytest.raises(ArtifactError, match="checksum"):
            store.load_causal("tiny", encoder=pipeline.encoder)

    def test_tampered_state_is_stale(self, saved):
        store, pipeline = saved
        store.save_causal("tiny", fitted_causal(pipeline, "mined"))
        meta_path = store.artifact_dir("tiny") / "causal.json"
        meta = json.loads(meta_path.read_text())
        meta["state"]["strict_margin"] = 0.5  # drifted knob, stale fingerprint
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StaleArtifactError, match="stale"):
            store.load_causal("tiny", encoder=pipeline.encoder)

    def test_wrong_format_version_is_stale(self, saved):
        store, pipeline = saved
        store.save_causal("tiny", fitted_causal(pipeline))
        meta_path = store.artifact_dir("tiny") / "causal.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StaleArtifactError, match="format_version"):
            store.load_causal("tiny", encoder=pipeline.encoder)

    def test_expected_fingerprint_mismatch_is_stale(self, saved):
        store, pipeline = saved
        store.save_causal("tiny", fitted_causal(pipeline))
        with pytest.raises(StaleArtifactError, match="does not match"):
            store.load_causal(
                "tiny", encoder=pipeline.encoder, expected_fingerprint="bogus")


class TestCausalAwareServing:
    def test_warm_start_from_store_serves_repaired_batches(self, saved, explain_rows):
        store, pipeline = saved
        model = fitted_causal(pipeline)
        store.save_causal("tiny", model)
        service = ExplanationService.warm_start(store, "tiny", causal="store")
        result = service.explain_batch(explain_rows)
        assert len(result) == len(explain_rows)
        # served counterfactuals are causally consistent
        costs = model.score(explain_rows, result.x_cf)
        np.testing.assert_allclose(costs, np.zeros(len(costs)), atol=1e-6)

    def test_served_output_matches_direct_runner(self, saved, explain_rows):
        from repro.engine import CoreCFStrategy, EngineRunner

        store, pipeline = saved
        model = fitted_causal(pipeline)
        service = ExplanationService(pipeline, causal=model)
        served = service.explain_batch(explain_rows)
        runner = EngineRunner(pipeline.encoder, pipeline.blackbox, causal=model)
        direct = runner.run(
            CoreCFStrategy(pipeline.explainer, n_candidates=1),
            explain_rows, served.desired)
        np.testing.assert_array_equal(served.x_cf, direct.x_cf)

    def test_cache_key_carries_causal_fingerprint(self, saved):
        store, pipeline = saved
        model = fitted_causal(pipeline)
        plain = ExplanationService(pipeline)
        causal = ExplanationService(pipeline, causal=model)
        assert plain.cache_fingerprint.endswith(":none:none:none")
        assert causal.cache_fingerprint.endswith(
            f":none:{model.fingerprint()}:none")
        assert plain.cache_fingerprint != causal.cache_fingerprint

    def test_repointing_causal_refreshes_fingerprint_and_runner(self, saved):
        store, pipeline = saved
        first = fitted_causal(pipeline, "scm")
        second = fitted_causal(pipeline, "mined")
        service = ExplanationService(pipeline, causal=first)
        runner_before = service.runner
        key_before = service.cache_fingerprint
        service.causal = second
        assert service.cache_fingerprint != key_before
        assert service.runner is not runner_before
        assert service.runner.causal is second

    def test_flush_routes_tickets_through_the_causal_runner(self, saved, explain_rows):
        store, pipeline = saved
        model = fitted_causal(pipeline)
        service = ExplanationService(pipeline, causal=model)
        tickets = [service.submit(row) for row in explain_rows[:4]]
        service.flush()
        for ticket in tickets:
            assert ticket.ready
            cost = model.score(
                ticket.row.reshape(1, -1),
                ticket.result()["x_cf"].reshape(1, -1))
            assert cost[0] <= 1e-6

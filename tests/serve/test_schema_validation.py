"""Schema-mismatch validation across explainers and the serving layer.

A request whose rows do not match the trained encoding must fail with a
clear :class:`SchemaMismatchError` naming the expected column count —
never with a numpy broadcasting error from deep inside a matmul.
"""

import numpy as np
import pytest

from repro.baselines import DiceRandomExplainer
from repro.serve import ExplanationService
from repro.utils.validation import SchemaMismatchError


@pytest.fixture(scope="module")
def wrong_width_rows():
    return np.zeros((3, 5))


class TestFeasibleCFExplainer:
    def test_explain_rejects_wrong_width(self, tiny_pipeline, wrong_width_rows):
        with pytest.raises(SchemaMismatchError, match="expects"):
            tiny_pipeline.explainer.explain(wrong_width_rows)

    def test_fit_rejects_wrong_width(self, tiny_pipeline, wrong_width_rows):
        from repro.core import FeasibleCFExplainer

        explainer = FeasibleCFExplainer(tiny_pipeline.encoder)
        with pytest.raises(SchemaMismatchError, match="adult"):
            explainer.fit(wrong_width_rows, np.array([0, 1, 0]))

    def test_message_names_both_widths(self, tiny_pipeline, wrong_width_rows):
        expected = tiny_pipeline.encoder.n_encoded
        with pytest.raises(SchemaMismatchError) as excinfo:
            tiny_pipeline.explainer.explain(wrong_width_rows)
        assert "5 columns" in str(excinfo.value)
        assert f"{expected} encoded columns" in str(excinfo.value)


class TestBaselineExplainers:
    def test_generate_rejects_wrong_width(self, tiny_pipeline, wrong_width_rows):
        bundle = tiny_pipeline.bundle
        baseline = DiceRandomExplainer(bundle.encoder, tiny_pipeline.blackbox, seed=0)
        baseline.fit(*bundle.split("train"))
        with pytest.raises(SchemaMismatchError, match="expects"):
            baseline.generate(wrong_width_rows)

    def test_fit_rejects_wrong_width(self, tiny_pipeline, wrong_width_rows):
        baseline = DiceRandomExplainer(
            tiny_pipeline.encoder, tiny_pipeline.blackbox, seed=0
        )
        with pytest.raises(SchemaMismatchError, match="expects"):
            baseline.fit(wrong_width_rows)


class TestService:
    def test_explain_batch_rejects_wrong_width(self, tiny_pipeline, wrong_width_rows):
        service = ExplanationService(tiny_pipeline)
        with pytest.raises(SchemaMismatchError, match="adult"):
            service.explain_batch(wrong_width_rows)

    def test_submit_rejects_wrong_width(self, tiny_pipeline):
        service = ExplanationService(tiny_pipeline)
        with pytest.raises(SchemaMismatchError, match="expects"):
            service.submit(np.zeros(5))
        assert service.pending == 0

    def test_valid_width_passes(self, tiny_pipeline, explain_rows):
        service = ExplanationService(tiny_pipeline)
        result = service.explain_batch(explain_rows[:2])
        assert len(result) == 2

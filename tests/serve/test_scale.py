"""Tests for the scaled serving tier (repro.serve.scale WorkerPool)."""

import threading

import numpy as np
import pytest

from repro.serve import (
    ArtifactStore,
    ExplanationService,
    PendingTicketError,
    WorkerPool,
)


@pytest.fixture(scope="module")
def store(tiny_pipeline, tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("scale-store"))
    store.save(tiny_pipeline, name="tiny")
    return store


@pytest.fixture(scope="module")
def sync_service(store):
    return ExplanationService.warm_start(store, "tiny", cache_size=256)


class TestWorkerPool:
    def test_rejects_bad_configuration(self, store):
        with pytest.raises(ValueError, match="backend"):
            WorkerPool(store, "tiny", backend="rocket")
        with pytest.raises(ValueError, match="n_replicas"):
            WorkerPool(store, "tiny", n_replicas=0)

    def test_batch_parity_with_single_service(
            self, store, sync_service, explain_rows):
        reference = sync_service.explain_batch(explain_rows)
        with WorkerPool(store, "tiny", n_replicas=3) as pool:
            result = pool.explain_batch(explain_rows)
        np.testing.assert_array_equal(result.x_cf, reference.x_cf)
        np.testing.assert_array_equal(result.predicted, reference.predicted)
        np.testing.assert_array_equal(result.valid, reference.valid)
        np.testing.assert_array_equal(result.feasible, reference.feasible)

    def test_single_replica_flush_parity(self, store, explain_rows):
        sync = ExplanationService.warm_start(store, "tiny", cache_size=0)
        tickets = [sync.submit(row) for row in explain_rows[:8]]
        sync.flush()
        reference = [ticket.result() for ticket in tickets]
        with WorkerPool(store, "tiny", n_replicas=1) as pool:
            results = pool.flush_rows(explain_rows[:8])
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got["x_cf"], want["x_cf"])
            assert got["predicted"] == want["predicted"]
            assert got["valid"] == want["valid"]

    def test_same_row_routes_to_same_replica(self, store, explain_rows):
        with WorkerPool(store, "tiny", n_replicas=4) as pool:
            routes = [pool.route(row) for row in explain_rows]
            assert routes == [pool.route(row) for row in explain_rows]
            assert set(routes) <= set(range(4))

    def test_routing_keeps_caches_hot(self, store, explain_rows):
        with WorkerPool(store, "tiny", n_replicas=3, cache_size=256) as pool:
            pool.explain_batch(explain_rows)
            first = pool.stats()["aggregate"]
            assert first["cache_hits"] == 0
            pool.explain_batch(explain_rows)
            second = pool.stats()["aggregate"]
            # every repeat landed on the replica that cached it
            assert second["cache_hits"] - first["cache_hits"] == len(
                explain_rows)
            assert second["cache_misses"] == first["cache_misses"]
            assert second["hit_rate"] == 0.5

    def test_stats_aggregates_per_replica_counters(
            self, store, explain_rows):
        with WorkerPool(store, "tiny", n_replicas=2) as pool:
            pool.explain_batch(explain_rows)
            pool.flush_rows(explain_rows[:4])
            stats = pool.stats()
        per_replica = stats["per_replica"]
        aggregate = stats["aggregate"]
        assert [entry["replica"] for entry in per_replica] == [0, 1]
        for counter in ("rows_served", "rows_coalesced", "cache_hits",
                        "cache_misses", "flushes", "requests"):
            assert aggregate[counter] == sum(
                entry[counter] for entry in per_replica)
        assert aggregate["requests"] == len(explain_rows) + 4
        assert aggregate["replicas"] == 2
        assert aggregate["backend"] == "thread"
        assert aggregate["shared_weight_bytes"] > 0
        for entry in per_replica:
            assert 0.0 <= entry["hit_rate"] <= 1.0
            assert entry["mean_batch_size"] >= 0.0

    def test_pool_compiles_one_execution_state(self, store):
        with WorkerPool(store, "tiny", n_replicas=3, engine="plan") as pool:
            leader = pool.replicas[0].service
            for replica in pool.replicas[1:]:
                assert replica.service.runner is leader.runner
                assert replica.service.plan is leader.plan
                assert replica.service.core_strategy is leader.core_strategy
                assert replica.service.pipeline is leader.pipeline

    def test_shared_weights_bind_every_replica(self, store, explain_rows):
        with WorkerPool(store, "tiny", n_replicas=2) as pool:
            blackbox = pool.replicas[0].service.explainer.blackbox
            for _name, tensor in blackbox.named_parameters(
                    include_frozen=True):
                assert pool.shared.owns_buffer_of(tensor.data)
            result = pool.explain_batch(explain_rows[:4])
            assert len(result.x_cf) == 4

    def test_shared_weights_can_be_disabled(self, store, explain_rows):
        with WorkerPool(store, "tiny", n_replicas=2,
                        shared_weights=False) as pool:
            assert pool.shared is None
            assert pool.stats()["aggregate"]["shared_weight_bytes"] == 0
            pool.explain_batch(explain_rows[:4])

    def test_process_backend_parity(self, store, sync_service, explain_rows):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        reference = sync_service.explain_batch(explain_rows[:8])
        with WorkerPool(store, "tiny", n_replicas=2,
                        backend="process") as pool:
            result = pool.explain_batch(explain_rows[:8])
            np.testing.assert_array_equal(result.x_cf, reference.x_cf[:8])
            flushed = pool.flush_rows(explain_rows[:4])
            stats = pool.stats()
        assert len(flushed) == 4
        assert all("x_cf" in entry for entry in flushed)
        assert stats["aggregate"]["requests"] == 12
        assert stats["aggregate"]["backend"] == "process"


class TestAdoptExecution:
    def test_rejects_mismatched_configuration(self, tiny_pipeline):
        leader = ExplanationService(tiny_pipeline)
        sibling = ExplanationService(tiny_pipeline, density_weight=2.0)
        with pytest.raises(ValueError, match="density configuration"):
            sibling.adopt_execution_from(leader)
        other_engine = ExplanationService(tiny_pipeline, engine="plan")
        with pytest.raises(ValueError, match="engine"):
            other_engine.adopt_execution_from(leader)

    def test_adopts_runner_strategy_and_plan(self, tiny_pipeline):
        leader = ExplanationService(tiny_pipeline, engine="plan")
        sibling = ExplanationService(tiny_pipeline, engine="plan")
        assert sibling.adopt_execution_from(leader) is sibling
        assert sibling.runner is leader.runner
        assert sibling.core_strategy is leader.core_strategy
        assert sibling.plan is leader.plan


class TestThreadSafety:
    def test_submit_flush_storm_loses_no_tickets(
            self, tiny_pipeline, explain_rows):
        """Concurrent submitters + flushers: every ticket resolves once."""
        service = ExplanationService(tiny_pipeline, cache_size=0)
        n_threads, per_thread = 6, 12
        all_tickets = [[] for _ in range(n_threads)]
        start_gate = threading.Barrier(n_threads + 2)
        stop_flushing = threading.Event()

        def submitter(slot):
            start_gate.wait()
            for i in range(per_thread):
                row = explain_rows[(slot + i) % len(explain_rows)]
                all_tickets[slot].append(service.submit(row))

        def flusher():
            start_gate.wait()
            while not stop_flushing.is_set():
                service.flush(n_candidates=2)
            service.flush(n_candidates=2)  # drain stragglers

        threads = [threading.Thread(target=submitter, args=(slot,))
                   for slot in range(n_threads)]
        threads.extend(threading.Thread(target=flusher) for _ in range(2))
        for thread in threads:
            thread.start()
        try:
            for thread in threads[:n_threads]:
                thread.join(timeout=30)
        finally:
            stop_flushing.set()
        for thread in threads[n_threads:]:
            thread.join(timeout=30)

        flat = [ticket for slot in all_tickets for ticket in slot]
        assert len(flat) == n_threads * per_thread
        for ticket in flat:
            assert ticket.ready  # nothing lost
            assert ticket.result() is ticket.result()  # resolved once
        assert service.pending == 0
        # nothing duplicated: coalesced rows account for each ticket once
        assert service.stats["rows_coalesced"] == len(flat)

    def test_concurrent_explain_batch_keeps_counters_consistent(
            self, tiny_pipeline, explain_rows):
        service = ExplanationService(tiny_pipeline, cache_size=256)
        n_threads, repeats = 4, 5
        gate = threading.Barrier(n_threads)

        def worker():
            gate.wait()
            for _ in range(repeats):
                service.explain_batch(explain_rows)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        stats = service.stats
        total = n_threads * repeats
        assert stats["batches_served"] == total
        assert stats["rows_served"] == total * len(explain_rows)
        lookups = stats["cache_hits"] + stats["cache_misses"]
        assert lookups == total * len(explain_rows)


class TestPendingTicket:
    def test_unflushed_ticket_raises_typed_error(
            self, tiny_pipeline, explain_rows):
        service = ExplanationService(tiny_pipeline)
        ticket = service.submit(explain_rows[0])
        with pytest.raises(PendingTicketError, match="flush"):
            ticket.result()
        service.flush()
        assert ticket.result()["x_cf"].shape == explain_rows[0].shape

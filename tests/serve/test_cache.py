"""Unit tests for the LRU result-cache primitive."""

import pytest

from repro.serve import LRUResultCache


class TestLRUResultCache:
    def test_put_get_roundtrip(self):
        cache = LRUResultCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = LRUResultCache(capacity=4)
        assert cache.get("missing") is None
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 0

    def test_lru_eviction_order(self):
        cache = LRUResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats["evictions"] == 1

    def test_overwrite_moves_to_front(self):
        cache = LRUResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite: "b" is evicted next
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_zero_capacity_disables(self):
        cache = LRUResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            LRUResultCache(capacity=-1)

    def test_clear_keeps_statistics(self):
        cache = LRUResultCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats["hits"] == 1

    def test_stats_shape(self):
        cache = LRUResultCache(capacity=3)
        assert cache.stats == {
            "size": 0,
            "capacity": 3,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }

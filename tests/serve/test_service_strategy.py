"""Strategy-agnostic serving: any CFStrategy behind ExplanationService."""

import numpy as np
import pytest

from repro.engine import EngineRunner, build_strategy
from repro.serve import ArtifactStore, ExplanationService


@pytest.fixture(scope="module")
def dice_strategy(tiny_pipeline):
    strategy = build_strategy(
        "dice_random",
        tiny_pipeline.encoder,
        tiny_pipeline.blackbox,
        seed=0,
        max_attempts=10,
    )
    return strategy.fit(*tiny_pipeline.bundle.split("train"))


class TestStrategyServing:
    def test_serves_baseline_strategy(self, tiny_pipeline, dice_strategy, explain_rows):
        service = ExplanationService(tiny_pipeline, strategy=dice_strategy)
        result = service.explain_batch(explain_rows)
        assert result.x_cf.shape == explain_rows.shape
        assert service.strategy_fingerprint == dice_strategy.fingerprint()

    def test_matches_direct_runner(self, tiny_pipeline, explain_rows):
        def built():
            strategy = build_strategy(
                "dice_random",
                tiny_pipeline.encoder,
                tiny_pipeline.blackbox,
                seed=0,
                max_attempts=10,
            )
            return strategy.fit(*tiny_pipeline.bundle.split("train"))

        service = ExplanationService(tiny_pipeline, strategy=built())
        desired = np.ones(len(explain_rows), dtype=int)
        served = service.explain_batch(explain_rows, desired)
        runner = EngineRunner(tiny_pipeline.encoder, tiny_pipeline.blackbox)
        direct = runner.run(built(), explain_rows, desired)
        np.testing.assert_array_equal(served.x_cf, direct.x_cf)
        np.testing.assert_array_equal(served.valid, direct.valid)
        np.testing.assert_array_equal(served.feasible, direct.feasible)

    def test_cache_replay_is_identical(self, tiny_pipeline, dice_strategy, explain_rows):
        service = ExplanationService(tiny_pipeline, strategy=dice_strategy)
        first = service.explain_batch(explain_rows)
        again = service.explain_batch(explain_rows)
        np.testing.assert_array_equal(first.x_cf, again.x_cf)
        assert service.stats["cache_hits"] == len(explain_rows)

    def test_cache_keys_separate_strategies(self, tiny_pipeline, dice_strategy, explain_rows):
        core = ExplanationService(tiny_pipeline)
        assert core.strategy_fingerprint == "core"
        assert core.cache_fingerprint != ExplanationService(
            tiny_pipeline, strategy=dice_strategy
        ).cache_fingerprint
        assert core.fingerprint == tiny_pipeline.fingerprint

    def test_repointing_strategy_invalidates_cached_rows(
        self, tiny_pipeline, dice_strategy, explain_rows
    ):
        service = ExplanationService(tiny_pipeline, strategy=dice_strategy)
        before = service.cache_fingerprint
        served = service.explain_batch(explain_rows)
        service.strategy = None  # re-point to the core generator
        assert service.cache_fingerprint != before
        core = service.explain_batch(explain_rows)
        assert service.stats["cache_hits"] == 0  # no stale cross-strategy hits
        explainer = tiny_pipeline.explainer
        desired = 1 - explainer.blackbox.predict(explain_rows)
        np.testing.assert_array_equal(
            core.x_cf, explainer.generator.generate(explain_rows, desired)
        )
        assert not np.array_equal(core.x_cf, served.x_cf)

    def test_core_path_unchanged_without_strategy(self, tiny_pipeline, explain_rows):
        service = ExplanationService(tiny_pipeline, cache_size=0)
        result = service.explain_batch(explain_rows)
        explainer = tiny_pipeline.explainer
        desired = 1 - explainer.blackbox.predict(explain_rows)
        x_cf = explainer.generator.generate(explain_rows, desired)
        np.testing.assert_array_equal(result.x_cf, x_cf)
        np.testing.assert_array_equal(
            result.feasible, explainer.constraints.satisfied(explain_rows, x_cf)
        )

    def test_flush_routes_through_strategy(self, tiny_pipeline, explain_rows):
        def built():
            strategy = build_strategy(
                "dice_random",
                tiny_pipeline.encoder,
                tiny_pipeline.blackbox,
                seed=0,
                max_attempts=10,
            )
            return strategy.fit(*tiny_pipeline.bundle.split("train"))

        service = ExplanationService(tiny_pipeline, strategy=built())
        rows = explain_rows[:4]
        tickets = [service.submit(row) for row in rows]
        service.flush()
        desired = 1 - tiny_pipeline.blackbox.predict(rows)
        runner = EngineRunner(tiny_pipeline.encoder, tiny_pipeline.blackbox)
        direct = runner.run(built(), rows, desired)
        for i, ticket in enumerate(tickets):
            result = ticket.result()
            np.testing.assert_array_equal(result["x_cf"], direct.x_cf[i])
            assert result["valid"] == bool(direct.valid[i])
            assert result["feasible"] == bool(direct.feasible[i])

    def test_warm_start_with_strategy(self, tmp_path, tiny_pipeline, explain_rows):
        store = ArtifactStore(tmp_path / "store")
        store.save(tiny_pipeline, name="tiny")
        loaded = store.load("tiny")
        strategy = build_strategy(
            "dice_random", loaded.encoder, loaded.blackbox, seed=0, max_attempts=10
        )
        strategy.fit(*tiny_pipeline.bundle.split("train"))
        service = ExplanationService.warm_start(store, "tiny", strategy=strategy)
        result = service.explain_batch(explain_rows)
        assert result.x_cf.shape == explain_rows.shape
        assert service.strategy is strategy

"""One strategy API for the core method and every baseline.

A *strategy* is anything that can propose raw counterfactual candidates
for a batch of encoded rows: the paper's CF-VAE generator, each of the
six Table IV baselines (FACE, REVISE, C-CHVAE, CEM, DiCE-random,
Mahajan) and anything a user registers.  Strategies only propose;
immutable projection, validity filtering, feasibility evaluation,
density scoring and the Table IV metrics all live once in
:class:`repro.engine.runner.EngineRunner` instead of being re-implemented
per method.

``build_strategy`` is the single factory the experiment harness, the
scenario registry and the serving layer share — it constructs exactly
the explainer objects the pre-engine harness built, so Table IV rows are
unchanged.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "STRATEGY_NAMES",
    "CFStrategy",
    "CandidateBatch",
    "CoreCFStrategy",
    "build_strategy",
]

#: Method names the factory accepts, in the paper's Table IV row order.
STRATEGY_NAMES = (
    "mahajan_unary",
    "mahajan_binary",
    "revise",
    "cchvae",
    "cem",
    "dice_random",
    "face",
    "ours_unary",
    "ours_binary",
)


@dataclass
class CandidateBatch:
    """Raw (pre-projection) counterfactual candidates for a batch.

    Attributes
    ----------
    x:
        Encoded input rows, shape ``(n, d)``.
    desired:
        Resolved desired class per row, shape ``(n,)``.
    candidates:
        Candidate counterfactuals, shape ``(n, m, d)`` — ``m`` candidates
        per input row.  Most strategies propose ``m = 1``; the core
        CF-VAE can propose a diverse sweep via latent perturbation.
    """

    x: np.ndarray
    desired: np.ndarray
    candidates: np.ndarray

    def __len__(self):
        return len(self.x)

    @property
    def n_candidates(self):
        """Candidates per input row (``m``)."""
        return self.candidates.shape[1]

    @property
    def flat(self):
        """Candidates flattened to ``(n * m, d)`` in ``np.repeat`` order."""
        n, m, d = self.candidates.shape
        return self.candidates.reshape(n * m, d)


class CFStrategy(ABC):
    """Propose-only interface every counterfactual method implements.

    Lifecycle: construct, :meth:`fit` on the training split, then
    :meth:`propose` raw candidates for encoded rows.  Everything
    downstream of proposal is the engine runner's job.
    """

    #: Row label used in reports, caches and the scenario registry.
    name = "strategy"

    @abstractmethod
    def fit(self, x_train, y_train=None):
        """Fit method-specific machinery; returns ``self``."""

    @abstractmethod
    def propose(self, x, desired=None) -> CandidateBatch:
        """Propose raw (pre-projection) candidates for encoded rows ``x``."""

    def describe(self):
        """JSON-able identity dict; the basis of :meth:`fingerprint`."""
        return {
            "class": type(self).__name__,
            "name": self.name,
            "seed": int(getattr(self, "seed", 0)),
        }

    def fingerprint(self):
        """Deterministic hash of the strategy identity, for cache keys."""
        canonical = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class CoreCFStrategy(CFStrategy):
    """The paper's CF-VAE generator exposed through the strategy API.

    Parameters
    ----------
    explainer:
        A :class:`repro.core.FeasibleCFExplainer` (fitted or not — an
        unfitted explainer is trained by :meth:`fit`).
    name:
        Report label; defaults to ``ours_<constraint kind>``.
    n_candidates:
        Candidates proposed per row.  ``1`` decodes the deterministic
        posterior mean (the one-shot ``explain`` path); larger values add
        latent-perturbation diversity for density-aware selection,
        consuming the same noise stream as
        :func:`repro.core.selection.generate_candidates`.
    noise_scale, rng:
        Latent-noise knobs for the diverse mode (defaults mirror
        ``generate_candidates``).
    """

    def __init__(self, explainer, name=None, n_candidates=1, noise_scale=None, rng=None):
        self.explainer = explainer
        self.name = name or f"ours_{explainer.constraint_kind}"
        self.n_candidates = int(n_candidates)
        self.noise_scale = noise_scale
        self.rng = rng
        self.seed = explainer.seed

    @property
    def constraints(self):
        """The explainer's own constraint set (its trained kind)."""
        return self.explainer.constraints

    def fit(self, x_train, y_train=None):
        self.explainer.fit(x_train, y_train)
        return self

    def propose(self, x, desired=None):
        explainer = self.explainer
        generator = explainer.generator
        if generator is None:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        x = explainer._check_rows(x, "x")
        if desired is None:
            desired = 1 - explainer.blackbox.predict(x)
        else:
            desired = np.asarray(desired, dtype=int)
            if len(desired) != len(x):
                raise ValueError(f"desired ({len(desired)}) and x ({len(x)}) row counts differ")

        from ..core.selection import candidate_noise_defaults, perturb_latents

        vae = generator.vae
        vae.eval()
        n, d = x.shape
        m = self.n_candidates
        mu, _ = vae.encode_array(x, desired)
        if m == 1:
            decoded = vae.decode_array(mu, desired)
        else:
            # the exact noise stream generate_candidates consumes
            noise_scale, rng = candidate_noise_defaults(explainer, self.noise_scale, self.rng)
            z = perturb_latents(mu, m, noise_scale, rng)
            labels = np.repeat(np.asarray(desired, dtype=np.float64), m)
            decoded = vae.decode_latent(z, labels)
        return CandidateBatch(x=x, desired=desired, candidates=decoded.reshape(n, m, d))

    def describe(self):
        from dataclasses import asdict

        info = super().describe()
        info["constraint_kind"] = self.explainer.constraint_kind
        info["n_candidates"] = self.n_candidates
        info["noise_scale"] = self.noise_scale
        info["config"] = {
            key: (float(value) if isinstance(value, float) else value)
            for key, value in asdict(self.explainer.config).items()
        }
        return info


def build_strategy(method_name, encoder, blackbox, dataset=None, seed=0, config=None, **params):
    """Construct an unfitted strategy for a Table IV method name.

    This is the exact construction recipe the pre-engine experiment
    harness used per method — same classes, same configs, same seeds —
    packaged as the one factory the harness, the scenario registry and
    the serving layer all call.

    Parameters
    ----------
    method_name:
        One of :data:`STRATEGY_NAMES`.
    encoder, blackbox:
        Fitted encoder and trained classifier shared by every method.
    dataset:
        Dataset name for paper-config lookup (defaults to the encoder's
        schema name).
    seed:
        Method seed.
    config:
        Optional :class:`repro.core.CFTrainingConfig` override for the
        trained methods (ours/Mahajan); defaults to the paper's Table III
        setting for the dataset and kind.
    params:
        Extra keyword arguments forwarded to the method constructor
        (e.g. ``vae_epochs=6`` for a bench-scale REVISE).
    """
    from ..baselines import (
        CCHVAEExplainer,
        CEMExplainer,
        DiceRandomExplainer,
        FACEExplainer,
        MahajanExplainer,
        ReviseExplainer,
    )
    from ..core import FeasibleCFExplainer, paper_config

    dataset = dataset or encoder.schema.name
    if method_name in ("ours_unary", "ours_binary"):
        kind = method_name.split("_")[1]
        # diversity knobs belong to the strategy wrapper, the rest to the
        # explainer constructor (e.g. the density scenarios ask for a
        # multi-candidate sweep via n_candidates)
        strategy_params = {
            key: params.pop(key) for key in ("n_candidates", "noise_scale") if key in params
        }
        explainer = FeasibleCFExplainer(
            encoder,
            constraint_kind=kind,
            config=config or paper_config(dataset, kind),
            blackbox=blackbox,
            seed=seed,
            **params,
        )
        return CoreCFStrategy(explainer, name=method_name, **strategy_params)
    if method_name in ("mahajan_unary", "mahajan_binary"):
        kind = method_name.split("_")[1]
        return MahajanExplainer(
            encoder,
            blackbox,
            constraint_kind=kind,
            config=config or paper_config(dataset, kind),
            seed=seed,
            **params,
        )

    classes = {
        "revise": ReviseExplainer,
        "cchvae": CCHVAEExplainer,
        "cem": CEMExplainer,
        "dice_random": DiceRandomExplainer,
        "face": FACEExplainer,
    }
    if method_name not in classes:
        raise KeyError(f"unknown method {method_name!r}; options: {STRATEGY_NAMES}")
    return classes[method_name](encoder, blackbox, seed=seed, **params)

"""Execution backends for compiled explain plans.

An :class:`~repro.engine.plan.ExplainPlan` replays the traced pipeline
chain through a *backend*: the object that decides how the candidate
sweep is tiled over input rows and how the validity predictions inside
each tile are computed.  Two backends ship:

* :class:`NumpyBackend` (``"numpy"``, the default) — one float64 tile
  covering the whole batch.  Every array op runs at exactly the shapes
  the staged :meth:`repro.engine.EngineRunner.run` path uses, which is
  what makes the compiled replay bit-identical to it (matmul-backed
  stages drift at float precision when their batch shape changes, so
  full bit-parity requires full-batch shapes).
* :class:`TiledFloat32Backend` (``"float32"``) — streams contiguous row
  tiles through the chain, so the full ``(n, m, d)`` projected/repaired
  sweep never materialises at once, and runs the validity GEMM on a
  float32 clone of the classifier (the serving fast mode the perfbench
  validates).  Projection, causal repair, the feasibility mask and
  selection stay float64 inside each tile; hard outputs (predictions,
  validity, feasibility, the chosen candidates) are pinned identical to
  the staged path by the parity suite, while raw logits carry the usual
  float32/BLAS-blocking caveat.

Backends are registered by name (:func:`register_backend` /
:func:`get_backend`), and scenarios opt into a non-default backend
through the per-scenario assignment registry (:func:`assign_backend` /
:func:`backend_for`) that ``run_scenario`` consults when compiling.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_BACKEND",
    "NumpyBackend",
    "PlanBackend",
    "TiledFloat32Backend",
    "assign_backend",
    "backend_for",
    "backend_names",
    "get_backend",
    "register_backend",
]

#: Name of the backend every plan (and scenario) uses unless told otherwise.
DEFAULT_BACKEND = "numpy"


class PlanBackend:
    """Base class of a plan execution backend.

    Subclasses override :meth:`tiles` (how the input rows are split into
    row slices the fused chain streams over) and :meth:`predict` (how a
    tile's flattened candidates are classified).  :meth:`prepare` runs
    once at plan-compile time and may return backend state (e.g. a
    dtype-converted model clone) that :meth:`predict` receives back on
    every call.
    """

    #: Registry name; subclasses must override.
    name = "backend"

    #: What the parity suite may pin against the staged path:
    #: ``"bitwise"`` (full float equality) or ``"hard"`` (hard outputs
    #: only — predictions, flags, selection — with float tolerance on
    #: matmul-backed values).
    parity = "bitwise"

    def prepare(self, runner):
        """One-time compile hook; the return value is passed to :meth:`predict`."""
        return None

    def tiles(self, n_rows, n_candidates, n_features):
        """Row slices the plan streams the fused chain over, in order."""
        return [slice(0, n_rows)]

    def predict(self, state, blackbox, flat):
        """Hard 0/1 predictions for a tile's flattened ``(t * m, d)`` candidates."""
        return blackbox.predict(flat)

    def describe(self):
        """JSON-able identity dict, folded into the plan fingerprint."""
        return {"backend": self.name, "parity": self.parity}

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(PlanBackend):
    """Default whole-batch float64 backend: bit-identical to the staged path."""

    name = "numpy"
    parity = "bitwise"


class TiledFloat32Backend(PlanBackend):
    """Contiguous float32-predict backend streaming fixed-size row tiles.

    Parameters
    ----------
    tile_rows:
        Input rows per tile.  Each tile's ``tile_rows * m`` candidates
        flow through projection, repair, the float32 validity GEMM and
        the feasibility mask before the next tile starts, bounding peak
        sweep memory at one tile instead of the full ``(n, m, d)``.
    """

    name = "float32"
    parity = "hard"

    def __init__(self, tile_rows=32):
        if int(tile_rows) < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        self.tile_rows = int(tile_rows)

    def prepare(self, runner):
        """Clone the runner's classifier into float32 parameters.

        Returns ``None`` (falling back to the float64 predict) when the
        classifier does not expose the state-dict cloning surface —
        plans must run against any black box, not just the repo's own.
        """
        blackbox = runner.blackbox
        try:
            from ..models import BlackBoxClassifier
            from ..nn import dtype_scope

            with dtype_scope("float32"):
                clone = BlackBoxClassifier(
                    blackbox.n_features,
                    np.random.default_rng(0),
                    hidden=blackbox.hidden,
                )
            clone.load_state_dict(blackbox.state_dict())
            clone.eval()
        except (ImportError, AttributeError, TypeError):
            return None
        return clone

    def tiles(self, n_rows, n_candidates, n_features):
        return [
            slice(start, min(start + self.tile_rows, n_rows))
            for start in range(0, n_rows, self.tile_rows)
        ]

    def predict(self, state, blackbox, flat):
        if state is None:
            return blackbox.predict(flat)
        return state.predict(np.ascontiguousarray(flat, dtype=np.float32))

    def describe(self):
        info = super().describe()
        info["tile_rows"] = self.tile_rows
        return info


#: name -> zero-argument factory producing a backend instance.
_BACKENDS = {}


def register_backend(name, factory, overwrite=False):
    """Register a backend factory under ``name``.

    ``factory`` is called with no arguments each time
    :func:`get_backend` resolves the name, so every plan gets its own
    backend instance (backends may hold per-plan state).
    """
    if name in _BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} is already registered (overwrite=True replaces)")
    _BACKENDS[name] = factory


def backend_names():
    """Sorted names of every registered backend."""
    return tuple(sorted(_BACKENDS))


def get_backend(backend):
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, PlanBackend):
        return backend
    if backend not in _BACKENDS:
        known = ", ".join(backend_names())
        raise KeyError(f"unknown backend {backend!r}; registered: {known}")
    return _BACKENDS[backend]()


register_backend("numpy", NumpyBackend)
register_backend("float32", TiledFloat32Backend)


#: scenario name -> backend name (scenarios without an entry run "numpy").
_SCENARIO_BACKENDS = {}


def assign_backend(scenario_name, backend):
    """Pick the plan backend scenario ``scenario_name`` compiles onto.

    ``backend=None`` clears the assignment (back to the default).  The
    name is validated against the backend registry immediately, so a
    typo fails at assignment time rather than mid-sweep.
    """
    if backend is None:
        _SCENARIO_BACKENDS.pop(scenario_name, None)
        return
    if backend not in _BACKENDS:
        known = ", ".join(backend_names())
        raise KeyError(f"unknown backend {backend!r}; registered: {known}")
    _SCENARIO_BACKENDS[scenario_name] = backend


def backend_for(scenario_name):
    """Backend name assigned to a scenario (default when unassigned)."""
    return _SCENARIO_BACKENDS.get(scenario_name, DEFAULT_BACKEND)

"""Compiled feasibility kernel: one fused pass over every constraint.

The paper evaluates causality (constraint satisfaction) *jointly* with
sparsity and density over candidate counterfactuals, yet the seed code
evaluated it piecemeal: ``ConstraintSet.satisfied`` iterated Python-level
over member constraints, the Table IV metrics rebuilt one constraint set
per kind and re-evaluated overlapping constraints, and the candidate
sweep materialised ``np.repeat(x, n_candidates)`` just to feed those
per-constraint calls.

``CompiledConstraintSet`` lowers a :class:`repro.constraints.ConstraintSet`
once into flat index/weight arrays and then answers every feasibility
question in a single vectorized pass:

* the full ``(n_cf, k)`` per-constraint satisfaction mask,
* the row-wise AND (the paper's feasibility flag),
* per-constraint and subset (unary/binary kind) satisfaction rates,

and it evaluates *tiled* candidate sweeps — ``n * m`` counterfactual rows
against ``n`` input rows — by broadcasting input-side terms instead of
materialising the repeated input matrix.  Internally the mask is stored
transposed (``(k, n_cf)``, one contiguous row per constraint) so the
AND-reduction and every rate are contiguous-memory operations.

Bit-parity contract: the mask equals ``ConstraintSet.satisfied_matrix``
(the per-constraint loop, kept as the parity reference) element for
element on every registry dataset; ``tests/engine/test_kernel_parity.py``
enforces this property-style.  Constraint types without a registered
lowering fall back to their own ``satisfied`` method inside the same
pass, so compilation never changes semantics.
"""

from __future__ import annotations

import numpy as np

from ..constraints.base import ConstraintSet
from ..constraints.binary import OrdinalImplicationConstraint
from ..constraints.immutables import ImmutablesRespected
from ..constraints.unary import MonotonicIncreaseConstraint

__all__ = ["CompiledConstraintSet", "FeasibilityReport", "compile_constraints"]


class FeasibilityReport:
    """Everything one kernel pass knows about a batch's feasibility.

    Parameters
    ----------
    mask_t:
        Transposed ``(k, n_cf)`` satisfaction matrix — one contiguous
        row per constraint, in set order.
    names:
        Constraint names, aligned with the rows of ``mask_t``.
    """

    def __init__(self, mask_t, names):
        self.mask_t = mask_t
        self.names = tuple(names)
        self._satisfied = None

    @property
    def mask(self):
        """``(n_cf, k)`` satisfaction matrix (a transpose view)."""
        return self.mask_t.T

    @property
    def satisfied(self):
        """Row-wise AND over all constraints (the paper's feasibility flag)."""
        if self._satisfied is None:
            self._satisfied = _and_rows(self.mask_t)
        return self._satisfied

    @property
    def rate(self):
        """Fraction of rows satisfying every constraint (1.0 when empty)."""
        return _bool_rate(self.satisfied)

    @property
    def per_constraint_rates(self):
        """``{constraint name: satisfaction rate}`` from the mask rows."""
        if self.mask_t.shape[1] == 0:
            return {name: 1.0 for name in self.names}
        return {name: _bool_rate(row) for name, row in zip(self.names, self.mask_t)}

    def subset_satisfied(self, indices):
        """Row-wise AND over a subset of constraints.

        Always returns a fresh array — callers (e.g. ``CFBatchResult``
        flags) may mutate it without corrupting the cached
        :attr:`satisfied`.
        """
        indices = list(indices)
        if indices == list(range(len(self.names))):
            return self.satisfied.copy()
        if len(indices) == 1:
            return self.mask_t[indices[0]].copy()
        return _and_rows(self.mask_t[indices])

    def subset_rate(self, indices):
        """AND-rate over a subset of constraints (e.g. one catalog kind)."""
        indices = list(indices)
        if not indices:
            return 1.0
        if indices == list(range(len(self.names))):
            return _bool_rate(self.satisfied)
        if len(indices) == 1:  # no copy for single-constraint kinds
            return _bool_rate(self.mask_t[indices[0]])
        return _bool_rate(_and_rows(self.mask_t[indices]))


def _bool_rate(flags):
    """Mean of a boolean vector via ``count_nonzero`` (identical value).

    ``np.mean`` on booleans accumulates 0.0/1.0 exactly (integer sums
    stay exact in float64), so ``count / n`` is the same float — just
    several times faster on serving-sized vectors.
    """
    n = flags.shape[-1] if flags.ndim else 1
    if n == 0:
        return 1.0
    return float(np.count_nonzero(flags) / n)


def _and_rows(mask_t):
    """AND a ``(k, n_cf)`` mask down its rows (contiguous reductions)."""
    k, n_cf = mask_t.shape
    if k == 0:
        return np.ones(n_cf, dtype=bool)
    flags = mask_t[0].copy()
    for row in mask_t[1:]:
        flags &= row
    return flags


class _MonotonicTerm:
    """All monotonic-increase constraints of a set, one slot each."""

    def __init__(self, slots, constraints):
        self.entries = [(slot, c.column, c.tolerance) for slot, c in zip(slots, constraints)]

    def evaluate(self, x, x_cf, n, m, mask_t):
        # identical elementwise ops to MonotonicIncreaseConstraint.satisfied:
        # x_cf[:, col] >= x[:, col] - tol, with the input side broadcast
        # over the m candidates of each row
        for slot, column, tolerance in self.entries:
            lower = x[:, column] - tolerance
            if m == 1:
                np.greater_equal(x_cf[:, column], lower, out=mask_t[slot])
            else:
                np.greater_equal(
                    x_cf[:, column].reshape(n, m),
                    lower[:, None],
                    out=mask_t[slot].reshape(n, m),
                )


class _OrdinalTerm:
    """One ordinal-implication ("cause up => effect up") constraint."""

    def __init__(self, slot, constraint):
        self.slot = slot
        self.categorical = constraint._cause_is_categorical
        if self.categorical:
            self.block = constraint._cause_block
            self.weights = constraint._rank_weights
        else:
            self.cause_column = constraint._cause_column
        self.effect_column = constraint._effect_column
        self.tolerance = constraint.tolerance

    def _cause_values(self, rows):
        if self.categorical:
            return rows[:, self.block] @ self.weights
        return rows[:, self.cause_column]

    def evaluate(self, x, x_cf, n, m, mask_t):
        tol = self.tolerance
        cause_after = self._cause_values(x_cf)
        effect_after = x_cf[:, self.effect_column]
        if m == 1:
            dc = cause_after - self._cause_values(x)
            de = effect_after - x[:, self.effect_column]
        else:
            # input-side terms computed once per input row, broadcast over m
            dc = cause_after.reshape(n, m) - self._cause_values(x)[:, None]
            de = effect_after.reshape(n, m) - x[:, self.effect_column][:, None]
        # equivalent to OrdinalImplicationConstraint.satisfied's case split:
        # cause up needs effect strictly up, cause unchanged needs effect
        # non-decreasing, cause down is vacuously satisfied
        ok = (de > tol) | ((dc <= tol) & (de >= -tol)) | (dc < -tol)
        mask_t[self.slot] = ok.reshape(-1)


class _ImmutableTerm:
    """One immutables-respected audit constraint (max drift per row)."""

    def __init__(self, slot, constraint):
        self.slot = slot
        self.columns = np.flatnonzero(constraint.mask)
        self.tolerance = constraint.tolerance

    def evaluate(self, x, x_cf, n, m, mask_t):
        if len(self.columns) == 0:
            mask_t[self.slot] = True
            return
        after = x_cf[:, self.columns]
        before = x[:, self.columns]
        if m == 1:
            drift = np.abs(after - before)
            mask_t[self.slot] = (drift <= self.tolerance).all(axis=1)
        else:
            drift = np.abs(after.reshape(n, m, -1) - before[:, None, :])
            mask_t[self.slot] = (drift <= self.tolerance).all(axis=2).reshape(-1)


class _OpaqueTerm:
    """Fallback for constraint types without a registered lowering."""

    def __init__(self, slot, constraint):
        self.slot = slot
        self.constraint = constraint

    def evaluate(self, x, x_cf, n, m, mask_t):
        inputs = x if m == 1 else np.repeat(x, m, axis=0)
        mask_t[self.slot] = self.constraint.satisfied(inputs, x_cf)


def _lower(constraints):
    """Group/lower constraints into evaluation terms with mask slots."""
    terms = []
    monotonic = [
        (i, c) for i, c in enumerate(constraints) if type(c) is MonotonicIncreaseConstraint
    ]
    if monotonic:
        terms.append(_MonotonicTerm([i for i, _ in monotonic], [c for _, c in monotonic]))
    for i, constraint in enumerate(constraints):
        if type(constraint) is MonotonicIncreaseConstraint:
            continue
        if type(constraint) is OrdinalImplicationConstraint:
            terms.append(_OrdinalTerm(i, constraint))
        elif type(constraint) is ImmutablesRespected:
            terms.append(_ImmutableTerm(i, constraint))
        else:
            terms.append(_OpaqueTerm(i, constraint))
    return terms


class CompiledConstraintSet:
    """A :class:`ConstraintSet` lowered into one vectorized evaluator.

    Build it through :meth:`ConstraintSet.compile` (or
    :func:`compile_constraints`); evaluation then runs in a single fused
    pass with no per-constraint Python dispatch, no per-call constraint
    rebuilding, and no materialised input repetition for candidate
    sweeps.
    """

    def __init__(self, constraint_set):
        if not isinstance(constraint_set, ConstraintSet):
            constraint_set = ConstraintSet(constraint_set)
        self.source = constraint_set
        self.constraints = constraint_set.constraints
        self.names = tuple(c.name for c in self.constraints)
        self._terms = _lower(self.constraints)

    def __len__(self):
        return len(self.constraints)

    def __repr__(self):
        return f"CompiledConstraintSet(k={len(self)}, names={list(self.names)})"

    def index_of(self, name):
        """Mask-column index of the constraint called ``name``."""
        return self.names.index(name)

    # -- evaluation ---------------------------------------------------------
    @staticmethod
    def _tiling(x, x_cf):
        """Validate shapes; returns ``(x, x_cf, n, m)`` with ``n_cf = n * m``."""
        x = np.asarray(x)
        x_cf = np.asarray(x_cf)
        n, n_cf = len(x), len(x_cf)
        if n == n_cf:
            return x, x_cf, n, 1
        if n == 0 or n_cf % n != 0:
            raise ValueError(
                f"x_cf rows ({n_cf}) must equal or be a multiple of x rows "
                f"({n}) for tiled evaluation"
            )
        return x, x_cf, n, n_cf // n

    def _mask_t(self, x, x_cf):
        x, x_cf, n, m = self._tiling(x, x_cf)
        mask_t = np.empty((len(self.constraints), len(x_cf)), dtype=bool)
        for term in self._terms:
            term.evaluate(x, x_cf, n, m, mask_t)
        return mask_t

    def satisfied_matrix(self, x, x_cf):
        """Fused ``(n_cf, k)`` satisfaction mask.

        ``x_cf`` may hold one counterfactual per input row or a tiled
        candidate sweep (``np.repeat`` layout: candidate rows
        ``i*m .. (i+1)*m - 1`` belong to input row ``i``) — the kernel
        broadcasts input-side terms instead of requiring the caller to
        repeat ``x``.  Bit-identical to
        :meth:`ConstraintSet.satisfied_matrix` on the repeated inputs.
        """
        return self._mask_t(x, x_cf).T

    def satisfied(self, x, x_cf):
        """Row-wise AND over all constraints (drop-in for the loop path)."""
        return _and_rows(self._mask_t(x, x_cf))

    def satisfaction_rate(self, x, x_cf):
        """Fraction of rows satisfying every constraint."""
        if not self.constraints:
            return 1.0
        flags = self.satisfied(x, x_cf)
        return float(flags.mean()) if flags.size else 1.0

    def evaluate(self, x, x_cf):
        """One pass, everything: mask, AND-flags and rates as a report."""
        return FeasibilityReport(self._mask_t(x, x_cf), self.names)


def compile_constraints(constraints):
    """Functional alias: compile a set (or iterable) of constraints."""
    if isinstance(constraints, CompiledConstraintSet):
        return constraints
    return CompiledConstraintSet(constraints)

"""Compiled explain plans: trace the fixed chain once, replay it fused.

The staged :meth:`repro.engine.EngineRunner.run` path executes the
pipeline — propose, immutable projection, causal repair, validity,
feasibility mask, density scoring, robust scoring, selection — as
separate passes, re-deriving per-call bookkeeping (which constraint
columns flag the strategy, whether models are hosted, what validation
each stage repeats) on every request.  Following the drjit
loop-recording idea, :class:`ExplainPlan` *traces* that chain once at
compile time against a fixed ``(runner, strategy)`` pair and replays it
as a single sweep over candidate tiles:

* the constraint flag columns are resolved once
  (``runner.flag_indices``) instead of per call,
* schema validation runs once at plan entry; every inner stage runs in
  trusted mode (``repair_batch(validate=False)``, no re-encoding or
  re-checking between stages),
* projection, causal repair, the validity call and the constraint-mask
  evaluation are fused into one pass per candidate tile, with each
  tile's sweep reduced to per-row outputs before the next tile starts —
  a tiled backend therefore never materialises the full ``(n, m, d)``
  intermediates the staged path allocates between stages,
* the backend seam (:mod:`repro.engine.backends`) decides tiling and
  the predict dtype: the default ``"numpy"`` backend replays the whole
  batch in one float64 tile and is **bit-identical** to the staged
  path (the parity suite pins every strategy on every registry
  dataset); the ``"float32"`` backend streams contiguous tiles with a
  float32 validity GEMM and is pinned on hard outputs.

The staged path stays the parity reference — plans are an execution
strategy, not a second implementation of the pipeline's math: every
stage calls the exact projector/causal/kernel/selection code the runner
calls, just orchestrated once instead of per request.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..core.result import CFBatchResult
from .kernel import FeasibilityReport
from .runner import _select_candidates, _select_candidates_density

__all__ = ["ExplainPlan", "PlanStage"]


@dataclass(frozen=True)
class PlanStage:
    """One traced pipeline stage: a name and a human-readable detail."""

    name: str
    detail: str


class ExplainPlan:
    """A traced, replayable explain pipeline for one (runner, strategy) pair.

    Build one through :meth:`repro.engine.EngineRunner.compile`.  The
    plan records the fixed stage chain the runner's hosted-model
    configuration implies (:attr:`stages`), precompiles the per-strategy
    constraint flag columns, lets the backend prepare once (e.g. clone
    the classifier to float32), and then replays the chain for any
    number of :meth:`execute` calls.

    Parameters
    ----------
    runner:
        The :class:`~repro.engine.runner.EngineRunner` whose chain is
        traced (encoder, kernel and hosted models are read from it).
    strategy:
        Fitted :class:`~repro.engine.strategy.CFStrategy` the plan
        proposes through.  The flag columns are resolved against this
        strategy at compile time, so re-pointing its constraint set
        after compiling requires recompiling.
    backend:
        Backend name or :class:`~repro.engine.backends.PlanBackend`
        instance (default ``"numpy"``).
    """

    def __init__(self, runner, strategy, backend="numpy"):
        from .backends import get_backend

        self.runner = runner
        self.strategy = strategy
        self.backend = get_backend(backend)
        self._flag_indices = list(runner.flag_indices(strategy))
        self._backend_state = self.backend.prepare(runner)
        self.stages = self._trace()

    # -- trace ---------------------------------------------------------------
    def _trace(self):
        """Record the fixed stage chain the runner configuration implies."""
        runner = self.runner
        stages = [
            PlanStage("propose", type(self.strategy).__name__),
            PlanStage("project", "broadcast immutable projection"),
        ]
        if runner.causal is not None:
            verb = "repair" if runner.causal_repair else "score"
            stages.append(PlanStage("causal", f"{type(runner.causal).__name__} ({verb})"))
        stages.append(PlanStage("predict", f"{self.backend.name} validity"))
        stages.append(
            PlanStage(
                "feasibility",
                f"{len(runner.kernel)} constraints, {len(self._flag_indices)} flagged",
            )
        )
        if runner.density is not None:
            stages.append(PlanStage("density", type(runner.density).__name__))
        if runner.ensemble is not None:
            stages.append(
                PlanStage(
                    "robust",
                    f"K={runner.ensemble.n_members} @ q={runner.robust_quorum}",
                )
            )
        detail = "proximity+density score" if runner.density is not None else "closest-L1"
        stages.append(PlanStage("select", detail))
        return tuple(stages)

    # -- identity ------------------------------------------------------------
    def describe(self):
        """JSON-able identity dict; the basis of :meth:`fingerprint`."""
        runner = self.runner
        return {
            "strategy": self.strategy.fingerprint(),
            "backend": self.backend.describe(),
            "stages": [[stage.name, stage.detail] for stage in self.stages],
            "flag_indices": list(self._flag_indices),
            "constraints": list(self.runner.kernel.names),
            "density": None if runner.density is None else runner.density.fingerprint(),
            "density_weight": runner.density_weight,
            "causal": None if runner.causal is None else runner.causal.fingerprint(),
            "causal_repair": runner.causal_repair,
            "ensemble": None if runner.ensemble is None else runner.ensemble.fingerprint(),
            "robust_quorum": runner.robust_quorum,
        }

    def fingerprint(self):
        """Deterministic hash of the traced chain, for serving cache keys."""
        canonical = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __repr__(self):
        chain = " -> ".join(stage.name for stage in self.stages)
        return f"ExplainPlan({chain}; backend={self.backend.name})"

    # -- replay --------------------------------------------------------------
    def execute(self, x, desired=None, return_diagnostics=False):
        """Replay the traced chain; same contract as ``EngineRunner.run``.

        One proposal, then one fused sweep over the backend's candidate
        tiles.  Returns a :class:`CFBatchResult` (and the identical
        diagnostics dict the staged path builds, when asked).
        """
        from ..utils.validation import check_encoded_rows

        runner = self.runner
        x = check_encoded_rows(x, runner.encoder, "x")
        batch = self.strategy.propose(x, desired)
        x, desired = batch.x, batch.desired
        n, m, d = batch.candidates.shape

        run_causal = runner.causal is not None and (runner.causal_repair or return_diagnostics)
        x_cf = np.empty((n, d))
        chosen = np.zeros(n, dtype=int)
        row_predicted = np.empty(n, dtype=int)
        row_feasible = np.empty(n, dtype=bool)
        masks, valids, flag_parts = [], [], []
        causal_parts, cross_parts, robust_parts, robust_sweeps, density_rows = [], [], [], [], []

        for tile in self.backend.tiles(n, m, d):
            t_x, t_desired = x[tile], desired[tile]
            tn = len(t_x)
            cand = runner.project(t_x, batch.candidates[tile])
            t_causal = None
            if run_causal:
                repaired = runner.causal.repair_batch(t_x, cand, validate=False)
                if return_diagnostics:
                    t_causal = np.abs(repaired - cand).sum(axis=2)
                if runner.causal_repair:
                    cand = repaired
            flat = cand.reshape(tn * m, d)

            predicted = self.backend.predict(self._backend_state, runner.blackbox, flat)
            report = runner.kernel.evaluate(t_x, flat)
            flags = report.subset_satisfied(self._flag_indices)
            valid = predicted == np.repeat(t_desired, m)

            t_density = None
            if runner.density is not None and m > 1:
                t_density = runner.density.score_tiled(cand)

            t_cross = t_robust = None
            if runner.ensemble is not None:
                t_cross = runner.ensemble.agreement(flat, np.repeat(t_desired, m)).reshape(tn, m)
                t_robust = t_cross >= runner.robust_quorum

            if m == 1:
                t_x_cf = cand[:, 0, :]
                t_chosen = np.zeros(tn, dtype=int)
                t_row_predicted, t_row_feasible = predicted, flags
            else:
                valid2d, flags2d = valid.reshape(tn, m), flags.reshape(tn, m)
                if t_density is None:
                    t_chosen = _select_candidates(t_x, cand, valid2d, flags2d, robust=t_robust)
                else:
                    t_chosen = _select_candidates_density(
                        t_x, cand, valid2d, flags2d, t_density, runner.density_weight,
                        robust=t_robust,
                    )
                rows = np.arange(tn)
                t_x_cf = cand[rows, t_chosen]
                t_row_predicted = predicted.reshape(tn, m)[rows, t_chosen]
                t_row_feasible = flags.reshape(tn, m)[rows, t_chosen]

            x_cf[tile] = t_x_cf
            chosen[tile] = t_chosen
            row_predicted[tile] = t_row_predicted
            row_feasible[tile] = t_row_feasible
            if return_diagnostics:
                names = report.names
                masks.append(report.mask_t)
                valids.append(valid)
                flag_parts.append(flags)
                if t_causal is not None:
                    causal_parts.append(t_causal[np.arange(tn), t_chosen])
                if t_density is not None:
                    density_rows.append(t_density[np.arange(tn), t_chosen])
                if t_cross is not None:
                    rows = np.arange(tn)
                    cross_parts.append(t_cross[rows, t_chosen])
                    robust_parts.append(t_robust[rows, t_chosen])
                    robust_sweeps.append(t_robust.reshape(-1))

        result = CFBatchResult(
            x=x,
            x_cf=x_cf,
            desired=desired,
            predicted=row_predicted,
            valid=row_predicted == desired,
            feasible=row_feasible,
            encoder=runner.encoder,
        )
        if not return_diagnostics:
            return result

        valid_all = np.concatenate(valids)
        flags_all = np.concatenate(flag_parts)
        diagnostics = {
            "report": FeasibilityReport(np.concatenate(masks, axis=1), names),
            "chosen": chosen,
            "n_candidates": m,
            "n_usable": (valid_all & flags_all).reshape(n, m).sum(axis=1),
            "candidate_validity": float(valid_all.mean()) if valid_all.size else 0.0,
        }
        if runner.density is not None:
            if density_rows:
                diagnostics["row_density"] = np.concatenate(density_rows)
            else:
                # m == 1: score the selected rows in one full-batch query,
                # the exact call shape the staged path uses
                diagnostics["row_density"] = runner.density.score(x_cf)
        if causal_parts:
            diagnostics["row_causal"] = np.concatenate(causal_parts)
        if runner.ensemble is not None:
            # candidate_robustness averages the *full sweep*, not the
            # selected rows — concatenating the per-tile sweeps sums the
            # same 0/1 values np.mean reduces on the staged path
            sweep = np.concatenate(robust_sweeps) if robust_sweeps else np.empty(0, dtype=bool)
            diagnostics["row_cross_validity"] = np.concatenate(cross_parts)
            diagnostics["row_robust"] = np.concatenate(robust_parts)
            diagnostics["candidate_robustness"] = float(sweep.mean()) if sweep.size else 0.0
        return result, diagnostics

    # -- Table IV scoring ----------------------------------------------------
    def evaluate(self, x, desired=None, **kwargs):
        """Compiled-path Table IV scoring; mirrors ``EngineRunner.evaluate``."""
        return self.runner.evaluate(self.strategy, x, desired, plan=self, **kwargs)

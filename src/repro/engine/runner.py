"""Batch-first engine runner shared by every strategy and the serving layer.

Before the engine existed, the evaluation plumbing around counterfactual
generation was forked three ways: ``core/explainer.py`` ran its own
project/predict/feasibility loop, every baseline re-implemented immutable
projection and validity checks inside ``BaseCFExplainer``, and the
serving layer only knew how to drive the core path.  ``EngineRunner``
hosts that plumbing exactly once:

1. ask a :class:`~repro.engine.strategy.CFStrategy` for raw candidates,
2. project immutable attributes for the whole ``(n, m, d)`` batch in one
   broadcast assignment,
3. causally repair the projected batch in one ``repair_batch`` pass when
   the runner hosts a fitted :class:`repro.causal.CausalModel`,
4. run ONE black-box validity call and ONE compiled-kernel feasibility
   pass over all candidates,
5. select a winner per row (closest valid & feasible, mirroring the
   serving policy — or the Figure 3 proximity+density score when the
   runner hosts a fitted :class:`repro.density.DensityModel`) and
6. optionally score the batch into a Table IV :class:`MethodReport`
   (including the density and causal-plausibility columns when the
   matching models are hosted).

Outputs are bit-identical to the pre-engine per-method paths — the
parity tests in ``tests/engine/`` hold the line — and a runner without a
density model runs the exact pre-density code path.
"""

from __future__ import annotations

import numpy as np

from ..constraints import ConstraintSet, ImmutableProjector, build_constraints
from ..core.result import CFBatchResult
from .kernel import CompiledConstraintSet, FeasibilityReport

__all__ = ["EngineRunner"]


class EngineRunner:
    """Shared propose -> project -> validate -> select -> score pipeline.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`.
    blackbox:
        Trained classifier (validity checks).
    constraints:
        Constraint set defining feasibility.  Defaults to the *union*
        catalog set for the encoder's dataset (the binary-kind set, which
        contains the unary constraints), so one kernel pass can answer
        both Table IV feasibility columns.  A
        :class:`CompiledConstraintSet` is accepted directly.
    density:
        Optional *fitted* :class:`repro.density.DensityModel`.  When
        hosted, every strategy's multi-candidate batches are selected by
        the Figure 3 standardized proximity+density score (one tiled
        density query for the whole sweep), per-row density costs appear
        in the run diagnostics, and :meth:`evaluate` fills the Table IV
        density column.  ``None`` (the default) keeps the historical
        closest-L1 selection bit for bit.
    density_weight:
        Trade-off ``lambda`` of the density-aware selection score.
    causal:
        Optional *fitted* :class:`repro.causal.CausalModel`.  When
        hosted, every strategy's candidate batches are causally repaired
        between immutable projection and the feasibility kernel (ONE
        batched ``repair_batch`` pass for the whole ``(n, m, d)``
        sweep), per-row causal inconsistency costs appear in the run
        diagnostics, and :meth:`evaluate` fills the Table IV
        ``causal_plausibility`` column.  ``None`` (the default) keeps
        the historical pipeline bit for bit.
    causal_repair:
        When ``False`` the hosted model only *scores* candidates (the
        diagnostics and report column still fill) without rewriting
        them — for measuring how causally plausible a strategy's raw
        proposals are.
    ensemble:
        Optional trained :class:`repro.models.BlackBoxEnsemble`.  When
        hosted, every candidate sweep is additionally scored against all
        K member models in ONE fused pass
        (:meth:`~repro.models.BlackBoxEnsemble.agreement`), a robust
        pool (valid & feasible & quorum-robust) is prepended to the
        selection cascade, per-row cross-model agreement appears in the
        run diagnostics, and :meth:`evaluate` fills the Table IV
        ``cross_model_validity`` / ``robust_validity`` columns.
        ``None`` (the default) keeps the single-model pipeline bit for
        bit.
    robust_quorum:
        Fraction of ensemble members that must classify a candidate as
        its desired class for it to count as robust (default 0.5).
    """

    def __init__(
        self,
        encoder,
        blackbox,
        constraints=None,
        density=None,
        density_weight=1.0,
        causal=None,
        causal_repair=True,
        ensemble=None,
        robust_quorum=0.5,
    ):
        self.encoder = encoder
        self.blackbox = blackbox
        if constraints is None:
            constraints = build_constraints(encoder, "binary")
        if isinstance(constraints, CompiledConstraintSet):
            self.kernel = constraints
        else:
            if not isinstance(constraints, ConstraintSet):
                constraints = ConstraintSet(constraints)
            self.kernel = constraints.compile()
        self.projector = ImmutableProjector(encoder)
        self.density = density
        self.density_weight = float(density_weight)
        self.causal = causal
        self.causal_repair = bool(causal_repair)
        self.ensemble = ensemble
        if not 0.0 < float(robust_quorum) <= 1.0:
            raise ValueError(
                f"robust_quorum must be in (0, 1], got {robust_quorum}")
        self.robust_quorum = float(robust_quorum)

    # -- constraint bookkeeping ---------------------------------------------
    def flag_indices(self, strategy):
        """Mask columns defining a strategy's own feasibility flags.

        Strategies trained against a specific constraint set (the core
        method, Mahajan) are flagged against exactly that set; everything
        else is flagged against the full kernel.
        """
        constraints = getattr(strategy, "constraints", None)
        if constraints is None:
            return list(range(len(self.kernel)))
        try:
            return [self.kernel.index_of(c.name) for c in constraints]
        except ValueError:
            return list(range(len(self.kernel)))

    # -- compiled plans -----------------------------------------------------
    def compile(self, strategy, backend="numpy"):
        """Trace the fixed chain for ``strategy`` into an :class:`ExplainPlan`.

        The plan resolves the constraint flag columns and lets the
        backend prepare once, then replays the whole pipeline as a
        single fused sweep per :meth:`ExplainPlan.execute` call.  The
        default ``"numpy"`` backend is bit-identical to the staged
        :meth:`run` path (the parity reference); ``"float32"`` streams
        contiguous tiles with a float32 validity GEMM.
        """
        from .plan import ExplainPlan

        return ExplainPlan(self, strategy, backend=backend)

    # -- core pipeline ------------------------------------------------------
    def project(self, x, candidates):
        """Immutable projection over a full ``(n, m, d)`` candidate batch."""
        return self.projector.project(x, candidates)

    def run(self, strategy, x, desired=None, return_diagnostics=False, plan=None):
        """Explain ``x`` with ``strategy``; returns a :class:`CFBatchResult`.

        One strategy proposal, one broadcast projection, one validity
        call, one fused feasibility pass — regardless of how many
        candidates per row the strategy proposed.  Multi-candidate
        batches are reduced to one counterfactual per row by the serving
        selection policy: closest by L1 among valid & feasible, then
        valid-only, then the first (deterministic) candidate.

        ``plan`` routes the request through a compiled
        :class:`ExplainPlan` (from :meth:`compile`) instead of the
        staged chain; ``strategy`` may then be ``None`` (the plan
        carries its own) but must otherwise be the compiled strategy.
        """
        from ..utils.validation import check_encoded_rows

        if plan is not None:
            if plan.runner is not self:
                raise ValueError("plan was compiled against a different runner")
            if strategy is not None and plan.strategy is not strategy:
                raise ValueError("plan was compiled for a different strategy instance")
            return plan.execute(x, desired, return_diagnostics=return_diagnostics)

        x = check_encoded_rows(x, self.encoder, "x")
        batch = strategy.propose(x, desired)
        x, desired = batch.x, batch.desired
        n, m, d = batch.candidates.shape
        candidates = self.project(x, batch.candidates)

        sweep_causal = None
        if self.causal is not None and (self.causal_repair or return_diagnostics):
            # ONE batched pass repairs (and/or scores) the full sweep;
            # validate=False because x was checked at run() entry and
            # the candidates are the runner's own projection output; the
            # per-candidate repair distance is only reduced when a
            # caller asked for diagnostics (evaluate does; serving not)
            repaired = self.causal.repair_batch(x, candidates, validate=False)
            if return_diagnostics:
                sweep_causal = np.abs(repaired - candidates).sum(axis=2)
            if self.causal_repair:
                candidates = repaired
        flat = candidates.reshape(n * m, d)

        predicted = self.blackbox.predict(flat)
        report = self.kernel.evaluate(x, flat)
        flags = report.subset_satisfied(self.flag_indices(strategy))
        valid = predicted == np.repeat(desired, m)

        sweep_density = None
        if self.density is not None and m > 1:
            # ONE tiled query scores the full (n, m, d) sweep
            sweep_density = self.density.score_tiled(candidates)

        sweep_cross = robust2d = None
        if self.ensemble is not None:
            # ONE fused K-model pass scores the full sweep against every
            # ensemble member; the quorum turns agreement into a robust
            # flag that steers selection below
            sweep_cross = self.ensemble.agreement(
                flat, np.repeat(desired, m)).reshape(n, m)
            robust2d = sweep_cross >= self.robust_quorum

        if m == 1:
            x_cf = candidates[:, 0, :]
            chosen = np.zeros(n, dtype=int)
            row_predicted, row_feasible = predicted, flags
        else:
            valid2d, flags2d = valid.reshape(n, m), flags.reshape(n, m)
            if sweep_density is None:
                chosen = _select_candidates(
                    x, candidates, valid2d, flags2d, robust=robust2d)
            else:
                chosen = _select_candidates_density(
                    x, candidates, valid2d, flags2d, sweep_density,
                    self.density_weight, robust=robust2d
                )
            rows = np.arange(n)
            x_cf = candidates[rows, chosen]
            row_predicted = predicted.reshape(n, m)[rows, chosen]
            row_feasible = flags.reshape(n, m)[rows, chosen]

        result = CFBatchResult(
            x=x,
            x_cf=x_cf,
            desired=desired,
            predicted=row_predicted,
            valid=row_predicted == desired,
            feasible=row_feasible,
            encoder=self.encoder,
        )
        if return_diagnostics:
            diagnostics = {
                "report": report,
                "chosen": chosen,
                "n_candidates": m,
                "n_usable": (valid & flags).reshape(n, m).sum(axis=1),
                "candidate_validity": float(valid.mean()) if valid.size else 0.0,
            }
            if self.density is not None:
                if sweep_density is None:
                    row_density = self.density.score(x_cf)
                else:
                    row_density = sweep_density[np.arange(n), chosen]
                diagnostics["row_density"] = row_density
            if sweep_causal is not None:
                # repair distance of each row's selected candidate: how
                # far the raw proposal was from causal consistency
                diagnostics["row_causal"] = sweep_causal[np.arange(n), chosen]
            if sweep_cross is not None:
                rows = np.arange(n)
                diagnostics["row_cross_validity"] = sweep_cross[rows, chosen]
                diagnostics["row_robust"] = robust2d[rows, chosen]
                diagnostics["candidate_robustness"] = (
                    float(robust2d.mean()) if robust2d.size else 0.0)
            return result, diagnostics
        return result

    # -- Table IV scoring ---------------------------------------------------
    def evaluate(
        self,
        strategy,
        x,
        desired=None,
        stats=None,
        x_train=None,
        report_kinds=("unary", "binary"),
        method_name=None,
        plan=None,
    ):
        """Fit-free evaluation: one engine run scored as a Table IV row.

        Produces the exact :class:`repro.metrics.MethodReport` the
        pre-engine harness computed — validity, per-kind feasibility,
        proximity and sparsity — reusing the run's own predict call and
        kernel pass instead of re-evaluating the scored rows.  A hosted
        density model additionally fills the report's
        ``mean_knn_distance`` column from the run's own density scores.
        ``plan`` scores through a compiled :class:`ExplainPlan` instead
        of the staged chain (same report, bit for bit on the default
        backend).
        """
        from ..metrics import evaluate_counterfactuals

        result, diagnostics = self.run(
            strategy, x, desired, return_diagnostics=True, plan=plan)
        report = diagnostics["report"]
        m = diagnostics["n_candidates"]
        if m > 1:
            # keep only each row's selected candidate from the sweep mask
            selected = np.arange(len(result.x)) * m + diagnostics["chosen"]
            report = FeasibilityReport(report.mask_t[:, selected], report.names)
        return evaluate_counterfactuals(
            method_name or strategy.name,
            result.x,
            result.x_cf,
            result.desired,
            self.blackbox,
            self.encoder,
            stats=stats,
            x_train=x_train,
            report_kinds=report_kinds,
            feasibility_report=report,
            predicted=result.predicted,
            density_scores=diagnostics.get("row_density"),
            causal_scores=diagnostics.get("row_causal"),
            cross_model_scores=diagnostics.get("row_cross_validity"),
            robust_flags=diagnostics.get("row_robust"),
        )


def _selection_pools(valid, feasible, robust=None):
    """The serving preference cascade, optionally led by a robust pool.

    Without an ensemble the pools are the historical pair (valid &
    feasible, then valid).  A hosted ensemble prepends candidates that
    additionally clear the robustness quorum, so a quorum-robust
    counterfactual wins whenever one exists while rows without any fall
    back to exactly the single-model choice.
    """
    pools = (valid & feasible, valid)
    if robust is None:
        return pools
    return (valid & feasible & robust,) + pools


def _select_candidates(x, candidates, valid, feasible, robust=None):
    """Vectorized per-row candidate choice (the serving policy).

    Preference order: valid & feasible (& quorum-robust first, when an
    ensemble is hosted), then valid, then candidate 0 (the deterministic
    decode).  Within a pool the candidate closest to the input by L1
    distance wins — identical to ``repro.serve.service._pick_candidate``
    applied row by row.
    """
    distances = np.abs(candidates - x[:, None, :]).sum(axis=2)
    n, m = distances.shape
    chosen = np.zeros(n, dtype=int)
    remaining = np.ones(n, dtype=bool)
    for pool in _selection_pools(valid, feasible, robust):
        useful = remaining & pool.any(axis=1)
        if useful.any():
            masked = np.where(pool[useful], distances[useful], np.inf)
            chosen[useful] = np.argmin(masked, axis=1)
            remaining &= ~useful
    return chosen


def _select_candidates_density(x, candidates, valid, feasible, density, weight,
                               robust=None):
    """Vectorized per-row choice under the Figure 3 proximity+density score.

    Same pool cascade as :func:`_select_candidates` (robust when hosted,
    valid & feasible, then valid, then any), but within a pool the
    winner maximises the standardized ``-proximity - weight * density``
    combination instead of pure closeness — exactly the
    ``DensityCFSelector`` scoring, hosted once for every strategy.
    """
    from ..core.selection import argmax_by_pools, standardize_rows

    proximity = np.abs(candidates - x[:, None, :]).sum(axis=2)
    scores = -standardize_rows(proximity) - weight * standardize_rows(density)
    return argmax_by_pools(scores, _selection_pools(valid, feasible, robust))

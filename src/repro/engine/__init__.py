"""Unified batch-first explainer engine.

The engine layer is where the paper's joint evaluation of causality,
sparsity and density actually runs:

* :mod:`repro.engine.kernel` — the compiled feasibility kernel:
  ``ConstraintSet.compile()`` lowers a constraint set into one fused
  vectorized evaluator returning the full ``(n, k)`` satisfaction mask
  and per-constraint rates in a single pass, with tiled candidate-sweep
  support.
* :mod:`repro.engine.strategy` — one ``CFStrategy`` API implemented by
  the core CF-VAE generator and all six Table IV baselines, plus the
  ``build_strategy`` factory they share.
* :mod:`repro.engine.runner` — ``EngineRunner``: immutable projection,
  validity filtering, feasibility evaluation, candidate selection and
  Table IV scoring, hosted once for every method and the serving layer.
* :mod:`repro.engine.scenarios` — the declarative scenario registry
  (dataset x strategy x constraint config) the harness, CLI and bench
  iterate over.
"""

from .kernel import CompiledConstraintSet, FeasibilityReport, compile_constraints
from .runner import EngineRunner
from .scenarios import (
    DEFAULT_ENSEMBLE_SIZE,
    Scenario,
    ScenarioResult,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .strategy import (
    STRATEGY_NAMES,
    CandidateBatch,
    CFStrategy,
    CoreCFStrategy,
    build_strategy,
)

__all__ = [
    "STRATEGY_NAMES",
    "CFStrategy",
    "CandidateBatch",
    "CompiledConstraintSet",
    "CoreCFStrategy",
    "DEFAULT_ENSEMBLE_SIZE",
    "EngineRunner",
    "FeasibilityReport",
    "Scenario",
    "ScenarioResult",
    "build_strategy",
    "compile_constraints",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]

"""Unified batch-first explainer engine.

The engine layer is where the paper's joint evaluation of causality,
sparsity and density actually runs:

* :mod:`repro.engine.kernel` — the compiled feasibility kernel:
  ``ConstraintSet.compile()`` lowers a constraint set into one fused
  vectorized evaluator returning the full ``(n, k)`` satisfaction mask
  and per-constraint rates in a single pass, with tiled candidate-sweep
  support.
* :mod:`repro.engine.strategy` — one ``CFStrategy`` API implemented by
  the core CF-VAE generator and all six Table IV baselines, plus the
  ``build_strategy`` factory they share.
* :mod:`repro.engine.runner` — ``EngineRunner``: immutable projection,
  validity filtering, feasibility evaluation, candidate selection and
  Table IV scoring, hosted once for every method and the serving layer.
* :mod:`repro.engine.scenarios` — the declarative scenario registry
  (dataset x strategy x constraint config) the harness, CLI and bench
  iterate over.
"""

from .backends import (
    DEFAULT_BACKEND,
    NumpyBackend,
    PlanBackend,
    TiledFloat32Backend,
    assign_backend,
    backend_for,
    backend_names,
    get_backend,
    register_backend,
)
from .kernel import CompiledConstraintSet, FeasibilityReport, compile_constraints
from .plan import ExplainPlan, PlanStage
from .runner import EngineRunner
from .scenarios import (
    DEFAULT_ENSEMBLE_SIZE,
    Scenario,
    ScenarioResult,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .strategy import (
    STRATEGY_NAMES,
    CandidateBatch,
    CFStrategy,
    CoreCFStrategy,
    build_strategy,
)

__all__ = [
    "DEFAULT_BACKEND",
    "STRATEGY_NAMES",
    "CFStrategy",
    "CandidateBatch",
    "CompiledConstraintSet",
    "CoreCFStrategy",
    "DEFAULT_ENSEMBLE_SIZE",
    "EngineRunner",
    "ExplainPlan",
    "FeasibilityReport",
    "NumpyBackend",
    "PlanBackend",
    "PlanStage",
    "Scenario",
    "ScenarioResult",
    "TiledFloat32Backend",
    "assign_backend",
    "backend_for",
    "backend_names",
    "build_strategy",
    "compile_constraints",
    "get_backend",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]

"""Declarative scenario registry: dataset x strategy x constraint config.

A :class:`Scenario` names one complete explanation workload — which
dataset to load, which strategy to run, which causal-constraint model to
evaluate against and how the desired class is chosen.  The experiment
harness, the CLI (``repro.cli run-scenario``) and the benchmark matrix
all iterate the same registry, so a method x dataset x constraint sweep
is a one-liner instead of bespoke glue per entry point.

Built-in scenarios cover the full Table IV grid (every registry dataset
times every strategy name) plus the density variants — every grid entry
with a ``knn`` and ``kde`` density-aware runner, and the core strategies
additionally with the CF-VAE ``latent`` estimator — the causal
variants — every grid entry with an ``scm`` (structural-equation repair)
and ``mined`` (discovered-relation repair) causal-aware runner — and the
robust variants — every grid entry with a K-model ensemble runner
(``+robust``), plus the density-guided combination of ensemble and
``knn`` estimator (``+robust-knn``) — and the in-loss variants — the
core ``ours_*`` strategies trained under the six-part objective with
differentiable density/causal terms (``+inloss``).  Variant names follow
``"<dataset>/<strategy>+<model>"``.  ``register_scenario`` adds custom
entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .strategy import STRATEGY_NAMES

__all__ = [
    "DEFAULT_ENSEMBLE_SIZE",
    "Scenario",
    "ScenarioResult",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "report_kinds_for",
]


def report_kinds_for(strategy_name):
    """Which Table IV feasibility columns a method reports.

    The core method and Mahajan train one model per constraint kind and
    report only that column (as the paper does); constraint-agnostic
    baselines report both.
    """
    for kind in ("unary", "binary"):
        if strategy_name.endswith(f"_{kind}"):
            return (kind,)
    return ("unary", "binary")


@dataclass(frozen=True)
class Scenario:
    """One named explanation workload.

    Attributes
    ----------
    name:
        Registry key, conventionally ``"<dataset>/<strategy>"``.
    dataset:
        Registered dataset name (``adult`` / ``kdd_census`` /
        ``law_school``).
    strategy:
        Method name accepted by
        :func:`repro.engine.strategy.build_strategy`.
    constraint_kind:
        Constraint model the *context* trains against (``unary`` or
        ``binary``); also the artifact-store kind for warm starts.
    desired:
        Desired-class policy: ``"paper"`` targets the schema's desired
        class for undesired-class rows (the paper's loan-approval
        setup); ``"flip"`` flips each row's black-box prediction.
    scale:
        Default experiment scale name (overridable at run time).
    strategy_params:
        Extra constructor arguments for the strategy, as a tuple of
        ``(key, value)`` pairs (tuples keep the dataclass hashable).
    density:
        Optional density-estimator name (``knn`` / ``kde`` / ``latent``).
        When set, the run's engine runner hosts a fitted
        :class:`repro.density.DensityModel` (reference population: the
        desired-class training rows), selection becomes density-aware
        and the report gains the density column.
    density_weight:
        Trade-off ``lambda`` of the density-aware selection score.
    density_backend:
        Neighbour backend of the density estimator, one of
        :data:`repro.density.DENSITY_BACKENDS` (``"exact"`` is the
        bit-identical default; ``"ann"`` runs the k-NN family on the
        batched IVF index for 100k+ reference populations).
    causal:
        Optional causal-model name (``scm`` / ``mined``).  When set, the
        run's engine runner hosts a fitted
        :class:`repro.causal.CausalModel` (the mined variant discovers
        its relations from the training split), candidate batches are
        causally repaired before feasibility and the report gains the
        ``causal_plausibility`` column.
    ensemble:
        Number of retrained black-box variants to score candidates
        against (0 — the default — runs the single-model pipeline).
        When positive, the run trains a
        :class:`repro.models.BlackBoxEnsemble` of that size around the
        context's shared black-box, the runner prefers quorum-robust
        candidates, and the report gains the ``cross_model_validity`` /
        ``robust_validity`` columns.
    robust_quorum:
        Member-agreement fraction a candidate needs to count as robust.
    inloss:
        Train with the six-part in-objective loss (differentiable
        density + causal terms folded into CF-VAE training; see
        :func:`repro.core.inloss_config`).  Only the core ``ours_*``
        strategies train a CF-VAE, so only they accept it.
    """

    name: str
    dataset: str
    strategy: str
    constraint_kind: str = "unary"
    desired: str = "paper"
    scale: str = "fast"
    strategy_params: tuple = field(default_factory=tuple)
    density: str = None
    density_weight: float = 1.0
    density_backend: str = "exact"
    causal: str = None
    ensemble: int = 0
    robust_quorum: float = 0.5
    inloss: bool = False

    def params(self):
        """``strategy_params`` as a plain dict."""
        return dict(self.strategy_params)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    report: object
    blackbox_accuracy: float
    n_explained: int


_SCENARIOS = {}

#: Ensemble size (primary model + retrained variants) of the builtin
#: ``+robust`` scenario variants and the CLI ``--ensemble`` default.
DEFAULT_ENSEMBLE_SIZE = 4


def register_scenario(scenario, overwrite=False):
    """Add a scenario to the registry; returns it.

    Validates the dataset and strategy names eagerly so a sweep cannot
    fail halfway through on a typo.
    """
    from ..causal import CAUSAL_NAMES
    from ..data import dataset_names
    from ..density import DENSITY_BACKENDS, DENSITY_NAMES

    if scenario.dataset not in dataset_names():
        raise KeyError(
            f"unknown dataset {scenario.dataset!r}; options: {sorted(dataset_names())}"
        )
    if scenario.strategy not in STRATEGY_NAMES:
        raise KeyError(f"unknown strategy {scenario.strategy!r}; options: {STRATEGY_NAMES}")
    if scenario.desired not in ("paper", "flip"):
        raise ValueError(f"desired policy must be 'paper' or 'flip', got {scenario.desired!r}")
    if scenario.density is not None and scenario.density not in DENSITY_NAMES:
        raise KeyError(
            f"unknown density estimator {scenario.density!r}; options: {DENSITY_NAMES}"
        )
    if scenario.density_backend not in DENSITY_BACKENDS:
        raise ValueError(
            f"unknown density backend {scenario.density_backend!r}; "
            f"options: {DENSITY_BACKENDS}"
        )
    if scenario.causal is not None and scenario.causal not in CAUSAL_NAMES:
        raise KeyError(
            f"unknown causal model {scenario.causal!r}; options: {CAUSAL_NAMES}"
        )
    if scenario.ensemble < 0:
        raise ValueError(f"ensemble must be >= 0, got {scenario.ensemble}")
    if not 0.0 < scenario.robust_quorum <= 1.0:
        raise ValueError(
            f"robust_quorum must be in (0, 1], got {scenario.robust_quorum}"
        )
    if scenario.inloss and not scenario.strategy.startswith("ours_"):
        raise ValueError(
            f"scenario {scenario.name!r}: in-loss training applies to the "
            f"core (ours_*) strategies only; {scenario.strategy!r} trains "
            f"no CF-VAE objective"
        )
    if not overwrite and scenario.name in _SCENARIOS:
        raise KeyError(f"scenario {scenario.name!r} already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def density_variants_for(strategy):
    """Density-estimator names a builtin strategy grid entry gets.

    Every strategy gets the feature-space ``knn``/``kde`` variants; the
    core CF-VAE strategies additionally get the ``latent`` estimator
    (which needs the trained encoder only they carry).
    """
    variants = ["knn", "kde"]
    if strategy.startswith("ours_"):
        variants.append("latent")
    return tuple(variants)


def _register_builtins():
    from ..causal import CAUSAL_NAMES
    from ..data import dataset_names

    for dataset in dataset_names():
        for strategy in STRATEGY_NAMES:
            kind = "binary" if strategy.endswith("_binary") else "unary"
            register_scenario(
                Scenario(
                    name=f"{dataset}/{strategy}",
                    dataset=dataset,
                    strategy=strategy,
                    constraint_kind=kind,
                )
            )
            # density variants: the core strategies propose a diverse
            # sweep so density-aware selection has candidates to rank
            params = (("n_candidates", 8),) if strategy.startswith("ours_") else ()
            for density in density_variants_for(strategy):
                register_scenario(
                    Scenario(
                        name=f"{dataset}/{strategy}+{density}",
                        dataset=dataset,
                        strategy=strategy,
                        constraint_kind=kind,
                        strategy_params=params,
                        density=density,
                    )
                )
            # causal variants: every strategy's candidates repaired by
            # the explicit SCM or the mined relations before feasibility
            for causal in CAUSAL_NAMES:
                register_scenario(
                    Scenario(
                        name=f"{dataset}/{strategy}+{causal}",
                        dataset=dataset,
                        strategy=strategy,
                        constraint_kind=kind,
                        causal=causal,
                    )
                )
            # robust variants: candidates additionally scored against a
            # K-model ensemble with quorum-robust winners preferred;
            # +robust-knn pairs the ensemble with the knn density
            # estimator (the model-multiplicity paper's combination)
            for suffix, density in (("robust", None), ("robust-knn", "knn")):
                register_scenario(
                    Scenario(
                        name=f"{dataset}/{strategy}+{suffix}",
                        dataset=dataset,
                        strategy=strategy,
                        constraint_kind=kind,
                        strategy_params=params,
                        density=density,
                        ensemble=DEFAULT_ENSEMBLE_SIZE,
                    )
                )
            # in-loss variants: the core CF-VAE trained under the
            # six-part objective (density + causal terms in-loss), with
            # the same diverse sweep as the density variants so the
            # candidates-per-valid-CF payoff is observable
            if strategy.startswith("ours_"):
                register_scenario(
                    Scenario(
                        name=f"{dataset}/{strategy}+inloss",
                        dataset=dataset,
                        strategy=strategy,
                        constraint_kind=kind,
                        strategy_params=params,
                        inloss=True,
                    )
                )


#: Sentinel for "no filter" (None filters for model-less entries).
_ANY = object()


def scenario_names(dataset=None, strategy=None, density=_ANY, causal=_ANY,
                   ensemble=_ANY, inloss=_ANY):
    """Registered scenario names, optionally filtered."""
    matches = iter_scenarios(dataset=dataset, strategy=strategy,
                             density=density, causal=causal,
                             ensemble=ensemble, inloss=inloss)
    return [s.name for s in matches]


def iter_scenarios(dataset=None, strategy=None, density=_ANY, causal=_ANY,
                   ensemble=_ANY, inloss=_ANY):
    """Iterate registered scenarios in registration order, filtered.

    ``density`` / ``causal`` filter on the hosted model name; pass
    ``None`` explicitly to iterate only entries without that model (the
    default matches every entry).  ``ensemble`` filters on the hosted
    ensemble size; pass ``0`` explicitly for single-model entries only.
    ``inloss`` filters on the six-part-objective flag.
    """
    for scenario in _SCENARIOS.values():
        if dataset is not None and scenario.dataset != dataset:
            continue
        if strategy is not None and scenario.strategy != strategy:
            continue
        if density is not _ANY and scenario.density != density:
            continue
        if causal is not _ANY and scenario.causal != causal:
            continue
        if ensemble is not _ANY and scenario.ensemble != ensemble:
            continue
        if inloss is not _ANY and scenario.inloss != inloss:
            continue
        yield scenario


def get_scenario(name):
    """Look up a scenario by name."""
    if name not in _SCENARIOS:
        known = ", ".join(sorted(_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    return _SCENARIOS[name]


def run_scenario(scenario, scale=None, seed=0, store=None, context=None, runner=None,
                 engine=None, backend=None):
    """Run one scenario end to end; returns a :class:`ScenarioResult`.

    Loads the dataset and trains the shared black-box (or warm-starts it
    from ``store``), builds and fits the strategy, then scores it through
    the shared engine runner.  ``context``/``runner`` allow a sweep to
    reuse the trained context across scenarios of the same dataset.

    Density scenarios (``scenario.density`` set) fit the named estimator
    on the desired-class training rows, causal scenarios
    (``scenario.causal`` set) fit the named causal model on the training
    split, and robust scenarios (``scenario.ensemble`` positive) train a
    :class:`repro.models.BlackBoxEnsemble` of that size around the
    context's shared black-box; any of these runs through a dedicated
    model-hosting runner — a passed ``runner`` is not mutated.

    ``engine`` picks the execution path: ``"staged"`` scores through the
    classic stage-by-stage :meth:`EngineRunner.run`, ``"plan"`` compiles
    the chain into an :class:`~repro.engine.plan.ExplainPlan` first and
    replays it fused.  The default (``None``) resolves to ``"plan"``
    exactly when the scenario has a non-default backend assigned
    (:func:`repro.engine.backends.assign_backend`), staying bit-for-bit
    on the historical path otherwise (the default backend's plan is
    bit-identical anyway — the parity suite pins it).  ``backend``
    overrides the per-scenario backend registry for the compiled path.
    """
    from ..experiments.harness import prepare_context
    from .backends import DEFAULT_BACKEND, backend_for
    from .runner import EngineRunner
    from .strategy import build_strategy

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if engine not in (None, "staged", "plan"):
        raise ValueError(
            f"engine must be None, 'staged' or 'plan', got {engine!r}")
    plan_backend = backend if backend is not None else backend_for(scenario.name)
    if engine is None:
        engine = "plan" if plan_backend != DEFAULT_BACKEND else "staged"
    if context is None:
        context = prepare_context(
            scenario.dataset,
            scale=scale or scenario.scale,
            seed=seed,
            store=store,
            constraint_kind=scenario.constraint_kind,
        )
    encoder = context.bundle.encoder

    config = None
    if scenario.inloss:
        from ..core import inloss_config, paper_config

        # the Table III config the strategy would pick by default, with
        # the six-part in-objective terms switched on
        config = inloss_config(
            paper_config(scenario.dataset, scenario.constraint_kind))
    strategy = build_strategy(
        scenario.strategy,
        encoder,
        context.blackbox,
        dataset=scenario.dataset,
        seed=context.seed,
        config=config,
        **scenario.params(),
    )
    strategy.fit(context.x_train, context.y_train)

    hosts_model = (
        scenario.density is not None
        or scenario.causal is not None
        or scenario.ensemble > 0
    )
    if hosts_model:
        density = None
        if scenario.density is not None:
            density = _fit_scenario_density(scenario, context, strategy)
        causal = None
        if scenario.causal is not None:
            from ..causal import fit_causal

            causal = fit_causal(scenario.causal, encoder, context.x_train, context.y_train)
        ensemble = None
        if scenario.ensemble > 0:
            from ..models import train_ensemble

            # the context's shared black-box joins as member 0, so the
            # cross-model columns measure robustness around the model
            # actually being explained
            ensemble = train_ensemble(
                context.x_train,
                context.y_train,
                n_members=scenario.ensemble,
                seed=context.seed,
                epochs=context.scale.blackbox_epochs,
                include=context.blackbox,
            )
        runner = EngineRunner(
            encoder,
            context.blackbox,
            density=density,
            density_weight=scenario.density_weight,
            causal=causal,
            ensemble=ensemble,
            robust_quorum=scenario.robust_quorum,
        )
    elif runner is None:
        runner = EngineRunner(encoder, context.blackbox)

    desired = context.desired if scenario.desired == "paper" else None
    plan = None
    if engine == "plan":
        plan = runner.compile(strategy, backend=plan_backend)
    report = runner.evaluate(
        strategy,
        context.x_explain,
        desired,
        stats=context.stats,
        report_kinds=report_kinds_for(scenario.strategy),
        method_name=scenario.strategy,
        plan=plan,
    )
    return ScenarioResult(
        scenario=scenario,
        report=report,
        blackbox_accuracy=context.blackbox_accuracy,
        n_explained=len(context.x_explain),
    )


def _fit_scenario_density(scenario, context, strategy):
    """Fit the scenario's density estimator on the desired-class train rows."""
    from ..density import fit_class_density

    vae = None
    if scenario.density == "latent":
        generator = getattr(getattr(strategy, "explainer", None), "generator", None)
        if generator is None:
            raise ValueError(
                f"scenario {scenario.name!r}: the latent density estimator "
                f"needs a trained CF-VAE, which only the core (ours_*) "
                f"strategies carry"
            )
        vae = generator.vae
    return fit_class_density(
        scenario.density,
        context.x_train,
        context.y_train,
        context.bundle.schema.desired_class,
        vae=vae,
        backend=scenario.density_backend,
    )


_register_builtins()

"""Argument validation helpers shared across the library.

Consistent error messages for the public API: shape checks for encoded
matrices, probability/ratio checks for hyperparameters, and label checks
for binary classification inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SchemaMismatchError", "check_2d", "check_2d_fast",
           "check_binary_labels", "check_encoded_rows", "check_encoded_sweep",
           "check_probability", "check_positive", "check_schema_width"]


class SchemaMismatchError(ValueError):
    """Input columns do not match the schema a model was trained on.

    Raised by explainers and the serving layer *before* the mismatched
    matrix reaches a matmul, so callers get a description of the schema
    contract instead of a numpy broadcasting error.
    """


def check_schema_width(array, n_expected, name="x", context=None):
    """Validate that a 2-D ``array`` has ``n_expected`` encoded columns.

    ``context`` names the schema owner (e.g. ``"dataset 'adult'"``) so the
    error points the caller at the right encoder.  Returns the array.
    """
    n_got = array.shape[1]
    if n_got != int(n_expected):
        where = f" trained on {context}" if context else ""
        raise SchemaMismatchError(
            f"{name} has {n_got} columns but the schema{where} expects "
            f"{n_expected} encoded columns; encode rows with the same "
            f"TabularEncoder the model was trained with")
    return array


def _coerce_schema_array(array, encoder, name):
    """Coerce a request to float64, mapping dtype failures to schema errors.

    The shared first step of :func:`check_encoded_rows` and
    :func:`check_encoded_sweep`: a non-numeric payload that numpy cannot
    convert is a schema-contract violation, not an internal error.
    """
    try:
        return np.asarray(array, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise SchemaMismatchError(
            f"{name} does not match the encoded schema of dataset "
            f"{encoder.schema.name!r}: {error}") from error


def _require_finite(array, name):
    """Reject NaN/inf cells as a schema-contract violation."""
    if not np.isfinite(array).all():
        raise SchemaMismatchError(f"{name} contains NaN or infinite values")
    return array


def check_encoded_rows(array, encoder, name="x"):
    """Full request validation against a fitted encoder's schema.

    The shared entry check of every explain/serve surface: 2-D + finite
    and the column count of ``encoder`` (:func:`check_schema_width`,
    with the dataset named in the error).  Returns the validated float
    matrix.

    Any content failure — a non-numeric dtype that cannot be coerced, or
    NaN/inf cells — is reported as a :class:`SchemaMismatchError` (a
    ``ValueError`` subclass), so callers fuzzing the serving surfaces see
    one schema-contract error type instead of raw numpy messages.  A
    wrong number of axes stays a plain ``ValueError`` (that is an
    API-shape mistake, not schema drift) — the same contract as
    :func:`check_encoded_sweep`.
    """
    array = _coerce_schema_array(array, encoder, name)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    _require_finite(array, name)
    return check_schema_width(
        array, encoder.n_encoded, name,
        context=f"dataset {encoder.schema.name!r}")


def check_encoded_sweep(candidates, encoder, n_rows=None, name="candidates"):
    """Validate a ``(n_rows, m, d)`` candidate sweep against a schema.

    The 3-D counterpart of :func:`check_encoded_rows`, used by the
    causal layer's ``repair_batch`` (and anything else consuming full
    candidate tensors): float-coercible, finite, 3-D, ``d`` matching the
    encoder width and — when ``n_rows`` is given — the first axis
    matching the input batch.  Content failures raise
    :class:`SchemaMismatchError`; a wrong number of axes stays a plain
    ``ValueError`` (that is an API-shape mistake, not schema drift).
    """
    candidates = _coerce_schema_array(candidates, encoder, name)
    if candidates.ndim != 3:
        raise ValueError(
            f"{name} must be a (n_rows, n_candidates, d) tensor, "
            f"got shape {candidates.shape}")
    if candidates.shape[2] != encoder.n_encoded:
        raise SchemaMismatchError(
            f"{name} has {candidates.shape[2]} encoded columns but the "
            f"schema trained on dataset {encoder.schema.name!r} expects "
            f"{encoder.n_encoded} encoded columns; encode rows with the "
            f"same TabularEncoder the model was trained with")
    if n_rows is not None and candidates.shape[0] != int(n_rows):
        raise ValueError(
            f"{name} holds candidates for {candidates.shape[0]} rows but "
            f"x has {n_rows} rows")
    return _require_finite(candidates, name)


def check_2d(array, name="array"):
    """Return ``array`` as a float 2-D ndarray or raise ``ValueError``."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.isfinite(array).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_2d_fast(array, name="array"):
    """Shape-only variant of :func:`check_2d` for per-call hot paths.

    Skips the full-matrix ``isfinite`` scan, which costs as much as a
    small forward pass and would be paid on *every* predict call.  Batch
    entry points (``fit``, ``explain``) still run the full check, so
    non-finite data is caught before it reaches the repeated-call paths.
    Float inputs keep their dtype (float32 stays float32 so the fast
    mode is not silently up-cast); everything else coerces to float64.
    """
    array = np.asarray(array)
    if array.dtype.kind != "f":
        array = array.astype(np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return array


def check_binary_labels(labels, name="labels"):
    """Return ``labels`` as an int array of 0/1 or raise ``ValueError``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {labels.shape}")
    unique = np.unique(labels)
    if not np.isin(unique, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1, got values {unique[:10]}")
    return labels.astype(int)


def check_probability(value, name="probability"):
    """Validate a scalar in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value, name="value"):
    """Validate a strictly positive scalar."""
    value = float(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value

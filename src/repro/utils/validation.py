"""Argument validation helpers shared across the library.

Consistent error messages for the public API: shape checks for encoded
matrices, probability/ratio checks for hyperparameters, and label checks
for binary classification inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SchemaMismatchError", "check_2d", "check_2d_fast",
           "check_binary_labels", "check_encoded_rows", "check_probability",
           "check_positive", "check_schema_width"]


class SchemaMismatchError(ValueError):
    """Input columns do not match the schema a model was trained on.

    Raised by explainers and the serving layer *before* the mismatched
    matrix reaches a matmul, so callers get a description of the schema
    contract instead of a numpy broadcasting error.
    """


def check_schema_width(array, n_expected, name="x", context=None):
    """Validate that a 2-D ``array`` has ``n_expected`` encoded columns.

    ``context`` names the schema owner (e.g. ``"dataset 'adult'"``) so the
    error points the caller at the right encoder.  Returns the array.
    """
    n_got = array.shape[1]
    if n_got != int(n_expected):
        where = f" trained on {context}" if context else ""
        raise SchemaMismatchError(
            f"{name} has {n_got} columns but the schema{where} expects "
            f"{n_expected} encoded columns; encode rows with the same "
            f"TabularEncoder the model was trained with")
    return array


def check_encoded_rows(array, encoder, name="x"):
    """Full request validation against a fitted encoder's schema.

    The shared entry check of every explain/serve surface: 2-D + finite
    (:func:`check_2d`) and the column count of ``encoder``
    (:func:`check_schema_width`, with the dataset named in the error).
    Returns the validated float matrix.
    """
    array = check_2d(array, name)
    return check_schema_width(
        array, encoder.n_encoded, name,
        context=f"dataset {encoder.schema.name!r}")


def check_2d(array, name="array"):
    """Return ``array`` as a float 2-D ndarray or raise ``ValueError``."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.isfinite(array).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_2d_fast(array, name="array"):
    """Shape-only variant of :func:`check_2d` for per-call hot paths.

    Skips the full-matrix ``isfinite`` scan, which costs as much as a
    small forward pass and would be paid on *every* predict call.  Batch
    entry points (``fit``, ``explain``) still run the full check, so
    non-finite data is caught before it reaches the repeated-call paths.
    Float inputs keep their dtype (float32 stays float32 so the fast
    mode is not silently up-cast); everything else coerces to float64.
    """
    array = np.asarray(array)
    if array.dtype.kind != "f":
        array = array.astype(np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return array


def check_binary_labels(labels, name="labels"):
    """Return ``labels`` as an int array of 0/1 or raise ``ValueError``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {labels.shape}")
    unique = np.unique(labels)
    if not np.isin(unique, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1, got values {unique[:10]}")
    return labels.astype(int)


def check_probability(value, name="probability"):
    """Validate a scalar in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value, name="value"):
    """Validate a strictly positive scalar."""
    value = float(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value

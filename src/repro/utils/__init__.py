"""Shared utilities: seeded RNG plumbing, table rendering, validation."""

from .rng import SeedSequenceRegistry, make_rng, spawn
from .tables import format_number, render_table
from .validation import check_2d, check_binary_labels, check_positive, check_probability

__all__ = [
    "make_rng", "spawn", "SeedSequenceRegistry",
    "render_table", "format_number",
    "check_2d", "check_binary_labels", "check_probability", "check_positive",
]

"""Plain-text table rendering for experiment reports.

The experiment harness prints every reproduced table in the same row
layout the paper uses; this module owns the formatting so tables render
identically in the terminal, in EXPERIMENTS.md and in benchmark output.
"""

from __future__ import annotations

__all__ = ["render_table", "format_number"]


def format_number(value, digits=2):
    """Format a numeric cell: ints verbatim, floats to ``digits`` places."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(headers, rows, title=None, digits=2):
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row iterables; cells may be str, int, float or None.
    title:
        Optional heading printed above the table.
    digits:
        Decimal places for float cells.
    """
    text_rows = [[format_number(cell, digits) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line([str(header) for header in headers]))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)

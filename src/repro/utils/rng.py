"""Seeded random-number plumbing.

Every stochastic component in the reproduction (data generation, weight
init, dropout, latent perturbation, baseline search) draws from an
explicit ``numpy.random.Generator``.  This module centralises how those
generators are created and split so whole experiments are reproducible
from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "SeedSequenceRegistry"]


def make_rng(seed):
    """Create a ``numpy.random.Generator`` from an integer seed or None."""
    return np.random.default_rng(seed)


def spawn(rng, count):
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so distinct subsystems
    (data vs model vs training noise) never share a stream yet remain
    reproducible.
    """
    seeds = rng.integers(0, 2 ** 63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


class SeedSequenceRegistry:
    """Named, deterministic RNG factory for experiment components.

    ``registry.get("data")`` always returns a generator seeded by the same
    derived seed for a given root seed, regardless of request order.
    """

    def __init__(self, root_seed):
        self._root_seed = int(root_seed)

    def get(self, name):
        """Return a fresh generator for the component called ``name``."""
        derived = np.random.SeedSequence([self._root_seed, _stable_hash(name)])
        return np.random.default_rng(derived)


def _stable_hash(name):
    """Deterministic 63-bit hash of a string (Python's hash is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for char in name.encode("utf-8"):
        value ^= char
        value = (value * 1099511628211) % (2 ** 63)
    return value

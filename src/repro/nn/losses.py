"""Loss functions used across the reproduction.

Includes the classification losses for the black-box model, the
reconstruction/KL terms for the VAE, and the hinge/L1 pieces of the
paper's four-part counterfactual loss (Eq. 3).
"""

from __future__ import annotations

import numpy as np

from .tensor import as_tensor

__all__ = [
    "bce_with_logits",
    "cross_entropy",
    "hinge_loss",
    "l1_loss",
    "mse_loss",
    "gaussian_kl",
    "logsumexp",
    "softmax",
]


def bce_with_logits(logits, targets, weights=None):
    """Binary cross-entropy on raw logits (numerically stable).

    Uses the identity ``max(z, 0) - z*y + log(1 + exp(-|z|))`` so large
    logits never overflow.  Optional per-element ``weights`` rescale each
    example's contribution (used for class balancing).
    """
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    relu_part = logits.clip_min(0.0)
    abs_logits = logits.abs()
    softplus = ((-abs_logits).exp() + 1.0).log()
    per_element = relu_part - logits * targets + softplus
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        return (per_element * weights).sum() * (1.0 / weights.sum())
    return per_element.mean()


def logsumexp(logits, axis=-1):
    """Differentiable log-sum-exp with max-shift stabilisation."""
    logits = as_tensor(logits)
    shift = np.max(logits.data, axis=axis, keepdims=True)
    shifted = logits - shift
    return (shifted.exp().sum(axis=axis, keepdims=True)).log() + shift


def softmax(logits, axis=-1):
    """Differentiable softmax along ``axis``."""
    logits = as_tensor(logits)
    return (logits - logsumexp(logits, axis=axis)).exp()


def cross_entropy(logits, labels):
    """Multi-class cross-entropy between logits and integer labels.

    Parameters
    ----------
    logits:
        Tensor of shape (batch, classes).
    labels:
        Integer array of shape (batch,).
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=int)
    batch = logits.shape[0]
    log_probs = logits - logsumexp(logits, axis=1)
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def hinge_loss(logits, desired, margin=1.0):
    """Hinge loss pushing binary ``logits`` toward the ``desired`` class.

    This is the validity term of the paper's Eq. 3: with the desired class
    encoded as a sign ``s in {-1, +1}``, the per-example loss is
    ``max(0, margin - s * logit)``.

    Parameters
    ----------
    logits:
        Raw scores of shape (batch,) — positive means class 1.
    desired:
        Array of 0/1 desired classes.
    margin:
        Decision margin; the paper uses the standard hinge (margin 1).
    """
    logits = as_tensor(logits)
    desired = np.asarray(desired, dtype=np.float64)
    signs = 2.0 * desired - 1.0
    margins = (logits * (-signs)) + margin
    return margins.clip_min(0.0).mean()


def l1_loss(prediction, target):
    """Mean absolute error — the proximity term ``d(x, x')`` of Eq. 3."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def mse_loss(prediction, target):
    """Mean squared error, used for continuous reconstruction checks."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return ((prediction - target) ** 2).mean()


def gaussian_kl(mu, log_var):
    """KL divergence ``KL(N(mu, sigma) || N(0, 1))`` averaged over the batch.

    The standard VAE regulariser (Kingma & Welling):
    ``-0.5 * sum(1 + log_var - mu^2 - exp(log_var))``.
    """
    mu = as_tensor(mu)
    log_var = as_tensor(log_var)
    per_dim = (log_var + 1.0 - mu * mu - log_var.exp()) * (-0.5)
    return per_dim.sum(axis=1).mean()

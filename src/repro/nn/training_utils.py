"""Training utilities: gradient clipping, LR schedules, early stopping.

Quality-of-life pieces a production training loop needs around the bare
optimisers — all used by the longer-running experiment configurations
and available to downstream users of :mod:`repro.nn`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clip_grad_norm", "StepDecay", "CosineDecay", "EarlyStopping"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in-place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total


class StepDecay:
    """Multiply the optimiser's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size, gamma=0.5):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self._epoch = 0

    def step(self):
        """Advance one epoch, decaying when the boundary is crossed."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class CosineDecay:
    """Cosine-anneal the learning rate from its initial value to ``min_lr``."""

    def __init__(self, optimizer, total_epochs, min_lr=0.0):
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.optimizer = optimizer
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)
        self._initial = optimizer.lr
        self._epoch = 0

    def step(self):
        """Advance one epoch; learning rate follows a half cosine."""
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self._initial - self.min_lr) \
            * (1.0 + np.cos(np.pi * progress))
        return self.optimizer.lr


class EarlyStopping:
    """Stop training when a monitored loss stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated.
    min_delta:
        Required improvement over the best seen value.
    """

    def __init__(self, patience=5, min_delta=1e-4):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = np.inf
        self._stale = 0

    def update(self, value):
        """Record one epoch's loss; returns True when training should stop."""
        if value < self.best - self.min_delta:
            self.best = float(value)
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience

    @property
    def should_stop(self):
        """Whether the patience budget is exhausted."""
        return self._stale >= self.patience

"""Neural-network layers built on the :mod:`repro.nn.tensor` autograd.

Provides the module system (parameter discovery, train/eval modes,
state-dict serialisation hooks) plus the layers the paper's models need:
``Linear``, ``ReLU``, ``Sigmoid``, ``Tanh``, ``Dropout`` and the
``Sequential`` container.
"""

from __future__ import annotations

import numpy as np

from . import functional
from .init import he_uniform, xavier_uniform, zeros
from .tensor import Tensor, as_tensor, linear, no_grad

__all__ = ["Module", "Linear", "ReLU", "Sigmoid", "Tanh", "Dropout", "Sequential"]


class Module:
    """Base class for all layers and models.

    Subclasses register parameters by assigning :class:`Tensor` attributes
    with ``requires_grad=True`` and register children by assigning
    :class:`Module` attributes.  Both are discovered automatically.
    """

    def __init__(self):
        self.training = True

    def forward(self, x):
        """Compute the layer output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, x):
        return self.forward(as_tensor(x))

    def forward_array(self, x):
        """Graph-free forward: plain ndarray in, plain ndarray out.

        The fast inference path — no :class:`Tensor` node is allocated
        anywhere.  Layers override this with a pure-numpy twin of
        :meth:`forward` built on the same :mod:`repro.nn.functional`
        kernels, so the result is numerically identical to
        ``forward(...).data`` under ``no_grad``.  The default falls back
        to exactly that graph path for modules without an override.
        """
        with no_grad():
            return self.forward(as_tensor(x)).data

    # -- parameter / child discovery ----------------------------------
    def named_parameters(self, prefix="", include_frozen=False):
        """Yield ``(name, tensor)`` pairs for every trainable parameter.

        With ``include_frozen=True`` parameters whose ``requires_grad``
        was switched off (e.g. a classifier frozen inside a loss) are
        yielded too — serialisation must see the full parameter set even
        when the optimiser must not.
        """
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Tensor) and (value.requires_grad or include_frozen):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(
                    prefix=f"{name}.", include_frozen=include_frozen)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(
                            prefix=f"{name}.{index}.", include_frozen=include_frozen)

    def parameters(self):
        """Return the list of trainable parameter tensors."""
        return [tensor for _, tensor in self.named_parameters()]

    def children(self):
        """Yield direct child modules."""
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self):
        """Yield this module and every descendant."""
        yield self
        for child in self.children():
            yield from child.modules()

    # -- modes ----------------------------------------------------------
    def train(self):
        """Switch this module and all children into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self):
        """Switch this module and all children into evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self):
        """Reset the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- serialisation ----------------------------------------------------
    def state_dict(self):
        """Return a name -> ndarray copy of all parameters (incl. frozen)."""
        return {name: tensor.data.copy()
                for name, tensor in self.named_parameters(include_frozen=True)}

    def load_state_dict(self, state):
        """Load parameters from :meth:`state_dict` output (strict by name)."""
        parameters = dict(self.named_parameters(include_frozen=True))
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, value in state.items():
            target = parameters[name]
            value = np.asarray(value, dtype=target.data.dtype)
            if value.shape != target.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {target.data.shape}")
            target.data = value.copy()


class Linear(Module):
    """Affine transform ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    rng:
        Seeded generator used for weight init.
    init:
        ``"he"`` (default, for ReLU stacks) or ``"xavier"`` (for
        sigmoid/tanh heads).
    """

    def __init__(self, in_features, out_features, rng, init="he"):
        super().__init__()
        if init == "he":
            weights = he_uniform(rng, in_features, out_features)
        elif init == "xavier":
            weights = xavier_uniform(rng, in_features, out_features)
        else:
            raise ValueError(f"unknown init scheme: {init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(weights, requires_grad=True)
        self.bias = Tensor(zeros(out_features), requires_grad=True)

    def forward(self, x):
        return linear(x, self.weight, self.bias)

    def forward_array(self, x):
        weight = self.weight.data
        x = np.asarray(x)
        if x.dtype != weight.dtype:
            x = x.astype(weight.dtype)
        return functional.linear_forward(x, weight, self.bias.data)

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x):
        return x.relu()

    def forward_array(self, x):
        return functional.relu_forward(x)

    def __repr__(self):
        return "ReLU()"


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x):
        return x.sigmoid()

    def forward_array(self, x):
        return functional.sigmoid_forward(x)

    def __repr__(self):
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x):
        return x.tanh()

    def forward_array(self, x):
        return functional.tanh_forward(x)

    def __repr__(self):
        return "Tanh()"


class Dropout(Module):
    """Inverted dropout.

    During training each unit is zeroed with probability ``p`` and the
    survivors are scaled by ``1 / (1 - p)`` so the expected activation is
    unchanged; at eval time the layer is the identity.  The paper applies
    30% dropout to every VAE layer (Table II).
    """

    def __init__(self, p, rng):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng

    def forward(self, x):
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * mask.astype(x.data.dtype, copy=False)

    def forward_array(self, x):
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(np.shape(x)) < keep) / keep
        return x * mask.astype(np.asarray(x).dtype, copy=False)

    def __repr__(self):
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def forward_array(self, x):
        for layer in self.layers:
            x = layer.forward_array(x)
        return x

    def __getitem__(self, index):
        return self.layers[index]

    def __len__(self):
        return len(self.layers)

    def __repr__(self):
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"

"""Weight initialisation schemes for :mod:`repro.nn` layers.

All initialisers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is fully seedable (the experiment harness threads one
RNG through dataset generation, model init and training).

Initialisers emit arrays in the configured default dtype (see
:func:`repro.nn.set_default_dtype`), so parameters created inside a
``dtype_scope("float32")`` are float32 — the rng draw itself always
happens in float64 so the float32 weights are bit-reproducible casts of
the float64 ones.
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype

__all__ = ["xavier_uniform", "he_uniform", "zeros"]


def xavier_uniform(rng, fan_in, fan_out):
    """Glorot/Xavier uniform initialisation, suited to sigmoid/tanh heads.

    Samples from ``U(-a, a)`` with ``a = sqrt(6 / (fan_in + fan_out))``.
    """
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    weights = rng.uniform(-bound, bound, size=(fan_in, fan_out))
    return weights.astype(get_default_dtype(), copy=False)


def he_uniform(rng, fan_in, fan_out):
    """He/Kaiming uniform initialisation, suited to ReLU layers.

    Samples from ``U(-a, a)`` with ``a = sqrt(6 / fan_in)``.
    """
    bound = np.sqrt(6.0 / fan_in)
    weights = rng.uniform(-bound, bound, size=(fan_in, fan_out))
    return weights.astype(get_default_dtype(), copy=False)


def zeros(shape):
    """All-zero array, used for biases."""
    return np.zeros(shape, dtype=get_default_dtype())

"""Weight initialisation schemes for :mod:`repro.nn` layers.

All initialisers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is fully seedable (the experiment harness threads one
RNG through dataset generation, model init and training).
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "he_uniform", "zeros"]


def xavier_uniform(rng, fan_in, fan_out):
    """Glorot/Xavier uniform initialisation, suited to sigmoid/tanh heads.

    Samples from ``U(-a, a)`` with ``a = sqrt(6 / (fan_in + fan_out))``.
    """
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def he_uniform(rng, fan_in, fan_out):
    """He/Kaiming uniform initialisation, suited to ReLU layers.

    Samples from ``U(-a, a)`` with ``a = sqrt(6 / fan_in)``.
    """
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros(shape):
    """All-zero array, used for biases."""
    return np.zeros(shape, dtype=np.float64)

"""Save and load model parameters as ``.npz`` archives.

Keeps trained black-box classifiers and VAEs reusable across the
experiment harness, the examples and the benchmarks without retraining.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_state", "load_state"]


def save_state(path, module):
    """Write ``module.state_dict()`` to ``path`` as a compressed npz."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_state(path, module):
    """Load an npz produced by :func:`save_state` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module

"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the computational substrate for every model in the
reproduction (the black-box classifier, the VAE and the gradient-based
baselines).  It implements a small but complete autograd engine:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations
  applied to it in a DAG.
* :meth:`Tensor.backward` walks the DAG in reverse topological order and
  accumulates gradients, with full support for numpy broadcasting.

The design mirrors the micro-autograd style popularised by PyTorch: each
primitive op stores a closure that knows how to push the output gradient
back to its parents.  All gradients are verified against central finite
differences in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import numpy as np

from . import functional

__all__ = [
    "Tensor", "as_tensor", "linear", "no_grad", "is_grad_enabled",
    "get_default_dtype", "set_default_dtype", "dtype_scope",
]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype):
    """Set the dtype new tensors are created with; returns the previous one.

    ``float64`` (the default) is the gradcheck-grade mode every parity
    test runs in; ``float32`` is the fast mode — half the memory traffic
    through the matmul-bound hot paths at the cost of ~1e-7 relative
    precision.  Accepts ``"float32"``/``"float64"`` or the numpy types.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype).type
    if resolved not in (np.float32, np.float64):
        raise ValueError(f"default dtype must be float32 or float64, got {dtype!r}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def get_default_dtype():
    """Return the dtype new tensors are created with."""
    return _DEFAULT_DTYPE


class dtype_scope:
    """Context manager pinning the default tensor dtype inside a block.

    >>> with dtype_scope("float32"):
    ...     model = BlackBoxClassifier(n, rng)   # float32 parameters
    """

    def __init__(self, dtype):
        self._dtype = dtype
        self._previous = None

    def __enter__(self):
        self._previous = set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        set_default_dtype(self._previous)
        return False


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every operation produces detached
    tensors.  Used by evaluation loops and by the data pipelines, where
    gradient tracking would only waste memory.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled():
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    Numpy broadcasting can expand an operand along leading axes or along
    axes of size one; the gradient of a broadcast is the sum over the
    expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad=False):
    """Coerce ``value`` (Tensor, ndarray or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ``numpy.ndarray``.
    requires_grad:
        When True the tensor accumulates gradients in :attr:`grad`
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")
    __array_priority__ = 100  # make numpy defer to our __r*__ operators

    def __init__(self, data, requires_grad=False, _parents=(), _backward=None):
        # float32/float64 data keeps its dtype (so float32 models stay
        # float32 through graph ops even outside a dtype_scope);
        # everything else coerces to the configured default.
        data = np.asarray(data)
        if data.dtype.type not in (np.float32, np.float64):
            data = data.astype(_DEFAULT_DTYPE)
        self.data = data
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Shape of the wrapped array."""
        return self.data.shape

    @property
    def ndim(self):
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self):
        """Total number of elements."""
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def numpy(self):
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self):
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data)

    def detach(self):
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=tuple(parents), _backward=backward)

    def backward(self, grad=None):
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective w.r.t. this tensor.  Defaults
            to ones, which is only meaningful for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Reverse topological order over the DAG.
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        # ``grads`` maps node id -> pending gradient.  Entries in ``owned``
        # are buffers allocated by this pass, so further fan-in
        # contributions accumulate into them in place; entries not in
        # ``owned`` may alias an upstream array (many backwards return the
        # output gradient itself) and are only combined out of place.
        grads = {id(self): grad}
        owned = set()
        for node in reversed(order):
            key = id(node)
            node_grad = grads.pop(key, None)
            owned.discard(key)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                np.add(node.grad, node_grad, out=node.grad)
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                parent_key = id(parent)
                if parent_key not in grads:
                    grads[parent_key] = parent_grad
                elif parent_key in owned:
                    np.add(grads[parent_key], parent_grad, out=grads[parent_key])
                else:
                    grads[parent_key] = grads[parent_key] + parent_grad
                    owned.add(parent_key)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return ((self, _unbroadcast(g, self.shape)),
                    (other, _unbroadcast(g, other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(g):
            return ((self, -g),)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            return ((self, _unbroadcast(g * other.data, self.shape)),
                    (other, _unbroadcast(g * self.data, other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            return ((self, _unbroadcast(g / other.data, self.shape)),
                    (other, _unbroadcast(-g * self.data / (other.data ** 2), other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g):
            grad_self = g @ other.data.T if other.data.ndim > 1 else np.outer(g, other.data)
            grad_other = self.data.T @ g if self.data.ndim > 1 else np.outer(self.data, g)
            return ((self, grad_self.reshape(self.shape)),
                    (other, grad_other.reshape(other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self):
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g):
            return ((self, g * out_data),)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        """Elementwise natural logarithm."""
        def backward(g):
            return ((self, g / self.data),)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(g):
            return ((self, g * 0.5 / out_data),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        """Rectified linear unit, ``max(x, 0)``.

        The backward recomputes the pass-through mask from the forward
        *output* (``out > 0``), so no separate mask array is stored.
        """
        out_data = functional.relu_forward(self.data)

        def backward(g):
            return ((self, g * (out_data > 0)),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        """Numerically stable logistic sigmoid.

        The backward reuses the forward output: ``g * out * (1 - out)``.
        """
        out_data = functional.sigmoid_forward(self.data)

        def backward(g):
            return ((self, g * out_data * (1.0 - out_data)),)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        """Hyperbolic tangent (backward reuses the forward output)."""
        out_data = functional.tanh_forward(self.data)

        def backward(g):
            return ((self, g * (1.0 - out_data ** 2)),)

        return Tensor._make(out_data, (self,), backward)

    def abs(self):
        """Elementwise absolute value (subgradient 0 at the kink)."""
        sign = np.sign(self.data)

        def backward(g):
            return ((self, g * sign),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip_min(self, low):
        """Elementwise ``max(x, low)`` with pass-through gradient above ``low``."""
        mask = self.data > low

        def backward(g):
            return ((self, g * mask),)

        return Tensor._make(np.maximum(self.data, low), (self,), backward)

    def maximum(self, other):
        """Elementwise maximum of two tensors (ties send gradient left)."""
        other = as_tensor(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(g):
            return ((self, _unbroadcast(g * take_self, self.shape)),
                    (other, _unbroadcast(g * ~take_self, other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions and reshaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        """Sum over ``axis`` (all elements when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return ((self, np.broadcast_to(grad, shape).copy()),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        """Arithmetic mean over ``axis`` (all elements when None)."""
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        """Return a tensor viewing the same data with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape

        def backward(g):
            return ((self, g.reshape(old_shape)),)

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    @property
    def T(self):
        """Matrix transpose (2-D tensors)."""
        def backward(g):
            return ((self, g.T),)

        return Tensor._make(self.data.T, (self,), backward)

    def __getitem__(self, index):
        out_data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype

        def backward(g):
            grad = np.zeros(shape, dtype=dtype)
            np.add.at(grad, index, g)
            return ((self, grad),)

        return Tensor._make(out_data, (self,), backward)

    @staticmethod
    def concatenate(tensors, axis=0):
        """Concatenate tensors along ``axis``, differentiable in each input."""
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(g):
            pieces = np.split(g, np.cumsum(sizes)[:-1], axis=axis)
            return tuple((t, piece) for t, piece in zip(tensors, pieces))

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def where(condition, a, b):
        """Differentiable ``numpy.where`` over a boolean ``condition`` array."""
        a = as_tensor(a)
        b = as_tensor(b)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, a.data, b.data)

        def backward(g):
            return ((a, _unbroadcast(g * cond, a.shape)),
                    (b, _unbroadcast(g * ~cond, b.shape)))

        return Tensor._make(out_data, (a, b), backward)


def linear(x, weight, bias):
    """Fused affine autograd op: ``x @ weight + bias`` as ONE graph node.

    Replaces the two-node ``matmul`` + broadcast-``add`` chain every
    :class:`~repro.nn.layers.Linear` layer used to emit.  One node means
    one output allocation in the forward (the bias adds in place on the
    matmul result), one closure, and one dict round-trip per layer in
    :meth:`Tensor.backward` instead of two.

    Gradients match the unfused chain exactly: ``g @ W.T`` into the
    input, ``x.T @ g`` into the weight and a batch-sum into the bias —
    verified against the unfused composition and finite differences in
    ``tests/nn/test_fused_fastpath.py``.

    Supports 2-D batches ``(n, in)`` and single rows ``(in,)``.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias = as_tensor(bias)
    out_data = functional.linear_forward(x.data, weight.data, bias.data)

    def backward(g):
        if g.ndim == 1:
            grad_weight = np.outer(x.data, g)
            grad_bias = g
        else:
            grad_weight = x.data.T @ g
            grad_bias = g.sum(axis=0)
        return ((x, g @ weight.data.T),
                (weight, grad_weight),
                (bias, grad_bias))

    return Tensor._make(out_data, (x, weight, bias), backward)

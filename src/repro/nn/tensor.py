"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the computational substrate for every model in the
reproduction (the black-box classifier, the VAE and the gradient-based
baselines).  It implements a small but complete autograd engine:

* :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations
  applied to it in a DAG.
* :meth:`Tensor.backward` walks the DAG in reverse topological order and
  accumulates gradients, with full support for numpy broadcasting.

The design mirrors the micro-autograd style popularised by PyTorch: each
primitive op stores a closure that knows how to push the output gradient
back to its parents.  All gradients are verified against central finite
differences in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every operation produces detached
    tensors.  Used by evaluation loops and by the data pipelines, where
    gradient tracking would only waste memory.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled():
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    Numpy broadcasting can expand an operand along leading axes or along
    axes of size one; the gradient of a broadcast is the sum over the
    expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad=False):
    """Coerce ``value`` (Tensor, ndarray or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ``numpy.ndarray``.
    requires_grad:
        When True the tensor accumulates gradients in :attr:`grad`
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")
    __array_priority__ = 100  # make numpy defer to our __r*__ operators

    def __init__(self, data, requires_grad=False, _parents=(), _backward=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Shape of the wrapped array."""
        return self.data.shape

    @property
    def ndim(self):
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self):
        """Total number of elements."""
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def numpy(self):
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self):
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data)

    def detach(self):
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=tuple(parents), _backward=backward)

    def backward(self, grad=None):
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective w.r.t. this tensor.  Defaults
            to ones, which is only meaningful for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Reverse topological order over the DAG.
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return ((self, _unbroadcast(g, self.shape)),
                    (other, _unbroadcast(g, other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(g):
            return ((self, -g),)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            return ((self, _unbroadcast(g * other.data, self.shape)),
                    (other, _unbroadcast(g * self.data, other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            return ((self, _unbroadcast(g / other.data, self.shape)),
                    (other, _unbroadcast(-g * self.data / (other.data ** 2), other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g):
            grad_self = g @ other.data.T if other.data.ndim > 1 else np.outer(g, other.data)
            grad_other = self.data.T @ g if self.data.ndim > 1 else np.outer(self.data, g)
            return ((self, grad_self.reshape(self.shape)),
                    (other, grad_other.reshape(other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self):
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g):
            return ((self, g * out_data),)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        """Elementwise natural logarithm."""
        def backward(g):
            return ((self, g / self.data),)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(g):
            return ((self, g * 0.5 / out_data),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        """Rectified linear unit, ``max(x, 0)``."""
        mask = self.data > 0

        def backward(g):
            return ((self, g * mask),)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self):
        """Numerically stable logistic sigmoid."""
        out_data = np.where(self.data >= 0,
                            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
                            np.exp(np.clip(self.data, -500, 500))
                            / (1.0 + np.exp(np.clip(self.data, -500, 500))))

        def backward(g):
            return ((self, g * out_data * (1.0 - out_data)),)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        """Hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g):
            return ((self, g * (1.0 - out_data ** 2)),)

        return Tensor._make(out_data, (self,), backward)

    def abs(self):
        """Elementwise absolute value (subgradient 0 at the kink)."""
        sign = np.sign(self.data)

        def backward(g):
            return ((self, g * sign),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip_min(self, low):
        """Elementwise ``max(x, low)`` with pass-through gradient above ``low``."""
        mask = self.data > low

        def backward(g):
            return ((self, g * mask),)

        return Tensor._make(np.maximum(self.data, low), (self,), backward)

    def maximum(self, other):
        """Elementwise maximum of two tensors (ties send gradient left)."""
        other = as_tensor(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(g):
            return ((self, _unbroadcast(g * take_self, self.shape)),
                    (other, _unbroadcast(g * ~take_self, other.shape)))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions and reshaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        """Sum over ``axis`` (all elements when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return ((self, np.broadcast_to(grad, shape).copy()),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        """Arithmetic mean over ``axis`` (all elements when None)."""
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        """Return a tensor viewing the same data with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape

        def backward(g):
            return ((self, g.reshape(old_shape)),)

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    @property
    def T(self):
        """Matrix transpose (2-D tensors)."""
        def backward(g):
            return ((self, g.T),)

        return Tensor._make(self.data.T, (self,), backward)

    def __getitem__(self, index):
        out_data = self.data[index]
        shape = self.shape

        def backward(g):
            grad = np.zeros(shape, dtype=np.float64)
            np.add.at(grad, index, g)
            return ((self, grad),)

        return Tensor._make(out_data, (self,), backward)

    @staticmethod
    def concatenate(tensors, axis=0):
        """Concatenate tensors along ``axis``, differentiable in each input."""
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(g):
            pieces = np.split(g, np.cumsum(sizes)[:-1], axis=axis)
            return tuple((t, piece) for t, piece in zip(tensors, pieces))

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def where(condition, a, b):
        """Differentiable ``numpy.where`` over a boolean ``condition`` array."""
        a = as_tensor(a)
        b = as_tensor(b)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, a.data, b.data)

        def backward(g):
            return ((a, _unbroadcast(g * cond, a.shape)),
                    (b, _unbroadcast(g * ~cond, b.shape)))

        return Tensor._make(out_data, (a, b), backward)

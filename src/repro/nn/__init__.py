"""Minimal neural-network substrate (numpy reverse-mode autograd).

The paper implements its models in a deep-learning framework; this package
replaces that dependency with a from-scratch engine: :class:`Tensor`
autograd, layer modules, losses, optimisers and serialisation.
"""

from . import functional
from .init import he_uniform, xavier_uniform, zeros
from .layers import Dropout, Linear, Module, ReLU, Sequential, Sigmoid, Tanh
from .losses import (
    bce_with_logits,
    cross_entropy,
    gaussian_kl,
    hinge_loss,
    l1_loss,
    logsumexp,
    mse_loss,
    softmax,
)
from .optim import SGD, Adam, Optimizer
from .serialize import load_state, save_state
from .tensor import (
    Tensor,
    as_tensor,
    dtype_scope,
    get_default_dtype,
    is_grad_enabled,
    linear,
    no_grad,
    set_default_dtype,
)
from .training_utils import CosineDecay, EarlyStopping, StepDecay, clip_grad_norm

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "linear", "functional",
    "get_default_dtype", "set_default_dtype", "dtype_scope",
    "Module", "Linear", "ReLU", "Sigmoid", "Tanh", "Dropout", "Sequential",
    "bce_with_logits", "cross_entropy", "hinge_loss", "l1_loss", "mse_loss",
    "gaussian_kl", "logsumexp", "softmax",
    "Optimizer", "SGD", "Adam",
    "save_state", "load_state",
    "he_uniform", "xavier_uniform", "zeros",
    "clip_grad_norm", "StepDecay", "CosineDecay", "EarlyStopping",
]

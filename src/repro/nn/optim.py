"""First-order optimisers for :mod:`repro.nn` modules.

``SGD`` (with optional momentum) and ``Adam`` cover everything the paper
trains: the black-box classifier, the CF-VAE (Table III uses plain SGD
learning rates of 0.1/0.2) and the gradient-based baselines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser bound to a list of parameter tensors."""

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self):
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self):
        """Apply one update; subclasses must override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr, momentum=0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += parameter.grad
                update = velocity
            else:
                update = parameter.grad
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._first_moment, self._second_moment):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

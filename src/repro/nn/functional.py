"""Shared numpy forward kernels for the graph and graph-free paths.

Every kernel here is used twice: by the :class:`~repro.nn.tensor.Tensor`
autograd ops (which wrap it with a backward closure) and by the
graph-free ``Module.forward_array`` inference path.  Keeping a single
implementation is what makes the fast path *numerically identical* to
the training path — there is no second formula to drift.

All kernels are dtype-preserving: they compute in whatever float dtype
the inputs carry (float64 by default, float32 in fast mode — see
:func:`repro.nn.tensor.set_default_dtype`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["linear_forward", "relu_forward", "sigmoid_forward", "tanh_forward"]


def linear_forward(x, weight, bias):
    """Fused affine kernel ``x @ weight + bias`` with one allocation.

    The bias add happens in place on the fresh matmul output, so the
    fused op allocates a single array where the ``matmul`` + ``add``
    chain allocated two.
    """
    out = x @ weight
    out += bias
    return out


def relu_forward(x):
    """``max(x, 0)`` elementwise."""
    return np.maximum(x, 0.0)


def sigmoid_forward(x):
    """Numerically stable logistic sigmoid (split at 0 to avoid overflow)."""
    clipped = np.clip(x, -500, 500)
    return np.where(x >= 0,
                    1.0 / (1.0 + np.exp(-clipped)),
                    np.exp(clipped) / (1.0 + np.exp(clipped)))


def tanh_forward(x):
    """Hyperbolic tangent."""
    return np.tanh(x)

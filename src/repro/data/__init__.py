"""Data substrate: schemas, synthetic SCM generators, preprocessing.

Replaces the paper's UCI/LSAC downloads with structural-causal-model
samplers that match each dataset's published schema and the causal
relations the constraints reference (see DESIGN.md section 2).
"""

from .adult import ADULT_SCHEMA, EDUCATION_LEVELS, EDUCATION_MIN_AGE, generate_adult
from .download import (
    DownloadableDataset,
    DownloadError,
    data_cache_dir,
    downloadable_names,
    fetch_dataset,
    load_downloadable,
    register_downloadable,
    upsample,
)
from .frame import TabularFrame
from .kdd_census import (
    KDD_EDUCATION_LEVELS,
    KDD_EDUCATION_MIN_AGE,
    KDD_SCHEMA,
    generate_kdd_census,
)
from .law_school import LAW_SCHEMA, generate_law_school
from .preprocess import TabularEncoder, clean
from .registry import (
    PAPER_SIZES,
    DatasetBundle,
    dataset_names,
    dataset_schema,
    load_dataset,
)
from .schema import DatasetSchema, FeatureSpec, FeatureType
from .splits import train_val_test_split

__all__ = [
    "FeatureType", "FeatureSpec", "DatasetSchema", "TabularFrame",
    "ADULT_SCHEMA", "EDUCATION_LEVELS", "EDUCATION_MIN_AGE", "generate_adult",
    "KDD_SCHEMA", "KDD_EDUCATION_LEVELS", "KDD_EDUCATION_MIN_AGE",
    "generate_kdd_census",
    "LAW_SCHEMA", "generate_law_school",
    "TabularEncoder", "clean", "train_val_test_split",
    "DatasetBundle", "load_dataset", "dataset_names", "dataset_schema",
    "PAPER_SIZES",
    "DownloadableDataset", "DownloadError", "data_cache_dir",
    "downloadable_names", "fetch_dataset", "load_downloadable",
    "register_downloadable", "upsample",
]

"""Synthetic KDD Census-Income dataset (UCI "Census-Income (KDD)" stand-in).

Matches the paper's Table I row: 299 285 raw instances, 199 522 after
cleaning, 41 attributes (32 categorical / 2 binary / 7 continuous),
target ``income``, immutables ``race`` and ``gender``.

The causal core mirrors :mod:`repro.data.adult` — education has
per-level minimum ages, income depends on (age, education, work
intensity) — while the remaining 26 survey attributes are sampled from a
shared socioeconomic latent so the table has realistic correlation
structure rather than independent noise columns.
"""

from __future__ import annotations

import numpy as np

from .frame import TabularFrame
from .schema import DatasetSchema, FeatureSpec, FeatureType
from .scm import bernoulli_logit, conditional_categorical, inject_missing, standardize

__all__ = ["KDD_SCHEMA", "KDD_EDUCATION_LEVELS", "KDD_EDUCATION_MIN_AGE",
           "WAGE_EQUATION", "WEEKS_EQUATION", "generate_kdd_census"]

RAW_INSTANCES = 299_285
CLEAN_INSTANCES = 199_522

KDD_EDUCATION_LEVELS = (
    "children", "less_than_hs", "hs_grad", "some_college",
    "assoc", "bachelors", "masters", "doctorate",
)

#: Minimum attainable age per education level; the SCM never violates
#: these (mirrors :data:`repro.data.adult.EDUCATION_MIN_AGE`), which is
#: what makes the education/age constraint causal on this dataset too.
KDD_EDUCATION_MIN_AGE = {
    "children": 0, "less_than_hs": 10, "hs_grad": 18, "some_college": 19,
    "assoc": 20, "bachelors": 22, "masters": 24, "doctorate": 27,
}

#: Deterministic skeleton of the ``wage_per_hour`` structural equation
#: (noise on top): ``wage = base + per_education_rank * rank +
#: per_year_of_age * age``.  Shared with :mod:`repro.causal.equations`.
WAGE_EQUATION = {
    "base": 6.0,
    "per_education_rank": 3.5,
    "per_year_of_age": 0.15,
}

#: Deterministic skeleton of the ``weeks_worked`` structural equation.
#: The sampled utilization is uniform in
#: ``[base_utilization, base_utilization + utilization_span]``; the
#: causal layer predicts with its mean.
WEEKS_EQUATION = {
    "weeks_full_year": 52.0,
    "working_age_start": 16.0,
    "working_age_span": 30.0,
    "base_utilization": 0.4,
    "utilization_span": 0.6,
    "hs_grad_bonus": 4.0,
    "min_bonus_rank": 2,
}

RACES = ("white", "black", "asian_pacific", "amer_indian", "other")

#: The 26 filler survey attributes: name -> category labels.  Each is
#: sampled conditioned on the socioeconomic latent, so none is pure noise.
_SURVEY_ATTRIBUTES = {
    "class_of_worker": ("private", "self_employed", "government", "not_in_universe"),
    "enroll_in_edu": ("not_enrolled", "high_school", "college"),
    "marital_stat": ("single", "married", "divorced", "widowed"),
    "major_industry": ("retail", "manufacturing", "finance", "education", "construction", "other"),
    "major_occupation": ("admin", "professional", "service", "sales", "craft", "other"),
    "hispanic_origin": ("no", "mexican", "puerto_rican", "other"),
    "union_member": ("no", "yes", "not_in_universe"),
    "unemployment_reason": ("not_unemployed", "job_loser", "re_entrant", "new_entrant"),
    "employment_status": ("full_time", "part_time", "unemployed", "not_in_labor_force"),
    "tax_filer_status": ("joint", "single", "head_of_household", "nonfiler"),
    "region_prev_res": ("same", "south", "west", "midwest", "northeast"),
    "state_prev_res": ("same", "california", "texas", "new_york", "florida", "other"),
    "household_stat": ("householder", "spouse", "child", "other_relative", "nonrelative"),
    "household_summary": ("householder", "spouse", "child", "other"),
    "migration_msa": ("nonmover", "msa_to_msa", "nonmsa_to_msa", "abroad"),
    "migration_reg": ("nonmover", "same_region", "different_region", "abroad"),
    "migration_within_reg": ("nonmover", "same_county", "different_county", "abroad"),
    "live_here_1yr": ("yes", "no"),
    "migration_sunbelt": ("not_in_universe", "yes", "no"),
    "family_members_u18": ("not_in_universe", "both_parents", "mother_only", "father_only"),
    "country_father": ("us", "mexico", "philippines", "germany", "other"),
    "country_mother": ("us", "mexico", "philippines", "germany", "other"),
    "country_self": ("us", "mexico", "philippines", "germany", "other"),
    "citizenship": ("native", "naturalized", "foreign_born"),
    "own_business": ("no", "yes"),
    "vet_questionnaire": ("not_in_universe", "yes", "no"),
}


def _build_schema():
    features = [
        FeatureSpec("age", FeatureType.CONTINUOUS, bounds=(0.0, 90.0)),
        FeatureSpec("wage_per_hour", FeatureType.CONTINUOUS, bounds=(0.0, 100.0)),
        FeatureSpec("capital_gains", FeatureType.CONTINUOUS, bounds=(0.0, 100_000.0)),
        FeatureSpec("capital_losses", FeatureType.CONTINUOUS, bounds=(0.0, 5_000.0)),
        FeatureSpec("dividends", FeatureType.CONTINUOUS, bounds=(0.0, 50_000.0)),
        FeatureSpec("num_persons_worked_for", FeatureType.CONTINUOUS, bounds=(0.0, 6.0)),
        FeatureSpec("weeks_worked", FeatureType.CONTINUOUS, bounds=(0.0, 52.0)),
        FeatureSpec("gender", FeatureType.BINARY, immutable=True),
        FeatureSpec("year", FeatureType.BINARY),
        FeatureSpec("education", FeatureType.CATEGORICAL, categories=KDD_EDUCATION_LEVELS),
        FeatureSpec("race", FeatureType.CATEGORICAL, categories=RACES, immutable=True),
    ]
    for name, labels in _SURVEY_ATTRIBUTES.items():
        features.append(FeatureSpec(name, FeatureType.CATEGORICAL, categories=labels))
    # 32 categorical = education + race + 26 survey + 4 extra coded groups
    for name in ("industry_code_group", "occupation_code_group",
                 "detailed_household_group", "weight_stratum"):
        features.append(FeatureSpec(
            name, FeatureType.CATEGORICAL,
            categories=("group_a", "group_b", "group_c", "group_d")))
    return DatasetSchema(
        name="kdd_census",
        display_name="KDD Census-Income",
        features=tuple(features),
        target="income",
        target_classes=("<=50k", ">50k"),
        desired_class=1,
    )


KDD_SCHEMA = _build_schema()


def _sample_education(rng, age):
    levels = np.array(KDD_EDUCATION_LEVELS, dtype=object)
    min_ages = np.array([KDD_EDUCATION_MIN_AGE[level] for level in KDD_EDUCATION_LEVELS])
    feasible = age[:, None] >= min_ages[None, :]
    appetite = np.clip(age / 35.0, 0.0, 1.0)
    base = np.array([0.02, 0.18, 0.30, 0.18, 0.08, 0.14, 0.07, 0.03])
    tilt = np.linspace(-1.0, 1.0, len(levels))
    weights = base[None, :] * np.exp(tilt[None, :] * (appetite[:, None] - 0.35) * 2.2)
    weights = np.where(feasible, weights, 0.0)
    # children under 10 are forced into the lowest level
    weights[age < 10, 0] = 1.0
    return conditional_categorical(rng, levels, weights)


def _sample_survey_attribute(rng, labels, latent):
    """Sample a survey attribute tilted by the socioeconomic latent.

    The first label is made more likely for low-latent rows and the later
    labels for high-latent rows, producing mild but consistent structure.
    """
    k = len(labels)
    base = np.linspace(1.5, 0.6, k)
    tilt = np.linspace(-0.5, 0.5, k)
    weights = base[None, :] * np.exp(tilt[None, :] * latent[:, None])
    return conditional_categorical(rng, np.array(labels, dtype=object), weights)


def generate_kdd_census(n_instances=RAW_INSTANCES, seed=0, missing_fraction=None):
    """Sample the synthetic KDD Census-Income dataset.

    Returns ``(frame, labels)`` with missing values still present, as in
    :func:`repro.data.adult.generate_adult`.
    """
    rng = np.random.default_rng(seed)
    if missing_fraction is None:
        missing_fraction = 1.0 - CLEAN_INSTANCES / RAW_INSTANCES

    age = np.clip(rng.gamma(2.2, 16.0, size=n_instances), 0.0, 90.0)
    gender = (rng.random(n_instances) < 0.48).astype(np.float64)
    year = (rng.random(n_instances) < 0.50).astype(np.float64)  # 1994 vs 1995
    race = conditional_categorical(
        rng, np.array(RACES, dtype=object),
        np.tile((0.84, 0.10, 0.03, 0.01, 0.02), (n_instances, 1)))

    education = _sample_education(rng, age)
    education_rank = np.array(
        [KDD_EDUCATION_LEVELS.index(level) for level in education], dtype=np.float64)

    working_age = np.clip(
        (age - WEEKS_EQUATION["working_age_start"]) / WEEKS_EQUATION["working_age_span"],
        0.0, 1.0)
    weeks_worked = np.clip(
        WEEKS_EQUATION["weeks_full_year"] * working_age
        * (WEEKS_EQUATION["base_utilization"]
           + WEEKS_EQUATION["utilization_span"] * rng.random(n_instances))
        + WEEKS_EQUATION["hs_grad_bonus"]
        * (education_rank >= WEEKS_EQUATION["min_bonus_rank"]),
        0.0, 52.0)
    wage = np.clip(
        WAGE_EQUATION["base"]
        + WAGE_EQUATION["per_education_rank"] * education_rank
        + WAGE_EQUATION["per_year_of_age"] * age
        + rng.normal(0.0, 6.0, n_instances),
        0.0, 100.0) * (weeks_worked > 0)
    capital_gains = np.where(
        rng.random(n_instances) < 0.05,
        rng.gamma(2.0, 4000.0, n_instances), 0.0)
    capital_gains = np.clip(capital_gains, 0.0, 100_000.0)
    capital_losses = np.where(
        rng.random(n_instances) < 0.03,
        rng.gamma(2.0, 700.0, n_instances), 0.0)
    capital_losses = np.clip(capital_losses, 0.0, 5_000.0)
    dividends = np.where(
        rng.random(n_instances) < 0.10,
        rng.gamma(1.5, 1500.0, n_instances), 0.0)
    dividends = np.clip(dividends, 0.0, 50_000.0)
    persons_worked_for = np.clip(
        np.round(6.0 * working_age * rng.random(n_instances)), 0.0, 6.0)

    # Socioeconomic latent ties the survey attributes together.
    latent = standardize(
        0.5 * education_rank + 0.02 * age + 0.3 * standardize(wage)
        + rng.normal(0.0, 0.8, n_instances))

    columns = {
        "age": age,
        "wage_per_hour": wage,
        "capital_gains": capital_gains,
        "capital_losses": capital_losses,
        "dividends": dividends,
        "num_persons_worked_for": persons_worked_for,
        "weeks_worked": weeks_worked,
        "gender": gender,
        "year": year,
        "education": education,
        "race": race,
    }
    for name, labels in _SURVEY_ATTRIBUTES.items():
        columns[name] = _sample_survey_attribute(rng, labels, latent)
    for name in ("industry_code_group", "occupation_code_group",
                 "detailed_household_group", "weight_stratum"):
        columns[name] = _sample_survey_attribute(
            rng, ("group_a", "group_b", "group_c", "group_d"), latent)

    # Concave age effect as in the Adult generator: income declines past the
    # mid-career peak, so unconstrained explainers propose getting younger.
    age_peak = 50.0
    logits = (
        -8.1
        + 0.048 * age
        - 0.005 * (np.maximum(age - age_peak, 0.0) ** 2)
        + 0.62 * education_rank
        + 0.035 * weeks_worked
        + 0.00005 * capital_gains
        + 0.00004 * dividends
        + 0.45 * gender
    )
    income = bernoulli_logit(rng, logits)

    frame = TabularFrame(columns)
    frame = inject_missing(
        frame,
        ("migration_msa", "migration_reg", "migration_within_reg", "migration_sunbelt"),
        missing_fraction, rng)
    return frame, income

"""Synthetic Law School dataset (LSAC bar-passage study stand-in).

Matches the paper's Table I row: 20 798 raw instances, 20 512 after
cleaning, 10 attributes (1 categorical / 3 binary / 6 continuous),
target ``pass_bar``, immutable ``sex``.

Causal structure relevant to the paper's constraints: a latent aptitude
drives ``lsat`` and ``ugpa``; ``tier`` (school selectivity, 1-6) is
caused by LSAT and GPA — so in the data a better tier goes with a higher
LSAT, which is exactly the binary constraint (tier up implies lsat up)
used in Section IV-E.
"""

from __future__ import annotations

import numpy as np

from .frame import TabularFrame
from .schema import DatasetSchema, FeatureSpec, FeatureType
from .scm import bernoulli_logit, conditional_categorical, inject_missing, standardize

__all__ = ["LAW_SCHEMA", "LSAT_EQUATION", "TIER_EQUATION", "ZFYGPA_EQUATION",
           "ZGPA_EQUATION", "generate_law_school"]

RAW_INSTANCES = 20_798
CLEAN_INSTANCES = 20_512

RACES = ("white", "black", "hispanic", "asian", "other")

#: Deterministic skeletons of the Law School structural equations (the
#: Gaussian noise the generator adds on top is what the causal layer
#: abducts).  Shared with :mod:`repro.causal.equations` so the repair
#: coefficients can never drift from the sampling coefficients.
LSAT_EQUATION = {"base": 150.0, "per_aptitude": 8.0,
                 "per_family_income": 1.5, "family_anchor": 3.0}
TIER_EQUATION = {"anchor": 3.5, "per_admission_z": 1.4}
ZFYGPA_EQUATION = {"per_aptitude": 0.55, "per_tier": -0.12, "tier_anchor": 3.5}
ZGPA_EQUATION = {"per_zfygpa": 0.7, "per_aptitude": 0.25}

LAW_SCHEMA = DatasetSchema(
    name="law_school",
    display_name="Law School",
    features=(
        FeatureSpec("lsat", FeatureType.CONTINUOUS, bounds=(120.0, 180.0)),
        FeatureSpec("ugpa", FeatureType.CONTINUOUS, bounds=(1.5, 4.0)),
        FeatureSpec("zfygpa", FeatureType.CONTINUOUS, bounds=(-3.5, 3.5)),
        FeatureSpec("zgpa", FeatureType.CONTINUOUS, bounds=(-3.5, 3.5)),
        FeatureSpec("tier", FeatureType.CONTINUOUS, bounds=(1.0, 6.0)),
        FeatureSpec("family_income", FeatureType.CONTINUOUS, bounds=(1.0, 5.0)),
        FeatureSpec("sex", FeatureType.BINARY, immutable=True),
        FeatureSpec("fulltime", FeatureType.BINARY),
        FeatureSpec("bar_prep_course", FeatureType.BINARY),
        FeatureSpec("race", FeatureType.CATEGORICAL, categories=RACES),
    ),
    target="pass_bar",
    target_classes=("fail", "pass"),
    desired_class=1,
)


def generate_law_school(n_instances=RAW_INSTANCES, seed=0, missing_fraction=None):
    """Sample the synthetic Law School dataset.

    Returns ``(frame, labels)`` with missing values still present, as in
    the other generators.
    """
    rng = np.random.default_rng(seed)
    if missing_fraction is None:
        missing_fraction = 1.0 - CLEAN_INSTANCES / RAW_INSTANCES

    aptitude = rng.normal(0.0, 1.0, size=n_instances)
    family_income = np.clip(
        np.round(3.0 + 0.6 * aptitude + rng.normal(0.0, 1.1, n_instances)), 1.0, 5.0)
    sex = (rng.random(n_instances) < 0.56).astype(np.float64)  # 1 = male
    race = conditional_categorical(
        rng, np.array(RACES, dtype=object),
        np.tile((0.84, 0.06, 0.05, 0.04, 0.01), (n_instances, 1)))

    lsat = np.clip(
        LSAT_EQUATION["base"] + LSAT_EQUATION["per_aptitude"] * aptitude
        + LSAT_EQUATION["per_family_income"]
        * (family_income - LSAT_EQUATION["family_anchor"])
        + rng.normal(0.0, 4.0, n_instances),
        120.0, 180.0)
    ugpa = np.clip(
        3.1 + 0.35 * aptitude + rng.normal(0.0, 0.3, n_instances), 1.5, 4.0)

    # Tier is caused by LSAT and GPA: better scores -> more selective tier.
    admission_score = standardize(0.7 * standardize(lsat) + 0.3 * standardize(ugpa))
    tier = np.clip(np.round(TIER_EQUATION["anchor"]
                            + TIER_EQUATION["per_admission_z"] * admission_score
                            + rng.normal(0.0, 0.7, n_instances)), 1.0, 6.0)

    fulltime = (rng.random(n_instances) < 0.88).astype(np.float64)
    bar_prep = (rng.random(n_instances) < 0.55).astype(np.float64)

    zfygpa = np.clip(
        ZFYGPA_EQUATION["per_aptitude"] * aptitude
        + ZFYGPA_EQUATION["per_tier"] * (tier - ZFYGPA_EQUATION["tier_anchor"])
        + rng.normal(0.0, 0.75, n_instances),
        -3.5, 3.5)
    zgpa = np.clip(
        ZGPA_EQUATION["per_zfygpa"] * zfygpa
        + ZGPA_EQUATION["per_aptitude"] * aptitude
        + rng.normal(0.0, 0.55, n_instances),
        -3.5, 3.5)

    logits = (
        -0.1
        + 0.10 * (lsat - 150.0)
        + 0.9 * zgpa
        + 0.55 * ugpa - 1.7
        + 0.30 * (tier - 3.5)
        + 0.45 * fulltime
        + 0.50 * bar_prep
    )
    pass_bar = bernoulli_logit(rng, logits)

    frame = TabularFrame({
        "lsat": lsat,
        "ugpa": ugpa,
        "zfygpa": zfygpa,
        "zgpa": zgpa,
        "tier": tier,
        "family_income": family_income,
        "sex": sex,
        "fulltime": fulltime,
        "bar_prep_course": bar_prep,
        "race": race,
    })
    frame = inject_missing(frame, ("zfygpa", "family_income"), missing_fraction, rng)
    return frame, pass_bar

"""Downloadable real datasets behind the synthetic registry.

The synthetic SCM generators stand in for the paper's UCI downloads so
the whole suite runs hermetically — but the at-scale density benchmarks
(``density_at_scale``) want *real* row distributions at 100k–1M rows.
This module adds a ludwig-style downloadable registry next to the
synthetic one: each entry names a source URL, a cache location and a
parser into an existing schema, with two reliability layers on top:

* **checksum verification** — a SHA-256 per downloaded file.  Entries
  may pin the digest in code; entries without a pin trust the first
  download and record the digest in a ``checksums.json`` lockfile in the
  cache dir, so any later corruption or upstream change is caught.
* **offline fallback** — when the download fails (no network, CI
  sandbox) the loader synthesises an upsampled population from the
  matching SCM generator instead of failing, so callers always get
  rows; ``require_real=True`` opts out and raises.

Files are cached under ``$REPRO_DATA_CACHE`` (default
``~/.cache/repro-datasets``); the CI workflow persists that directory
across runs keyed on this module's content.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import pathlib
import urllib.request
from dataclasses import dataclass

import numpy as np

from .adult import ADULT_SCHEMA, generate_adult
from .frame import TabularFrame
from .preprocess import clean

__all__ = [
    "DownloadError",
    "DownloadableDataset",
    "data_cache_dir",
    "downloadable_names",
    "fetch_dataset",
    "load_downloadable",
    "upsample",
]

#: Environment variable overriding the dataset cache directory.
CACHE_ENV = "REPRO_DATA_CACHE"

_LOCKFILE = "checksums.json"


class DownloadError(RuntimeError):
    """A dataset download failed or a cached file fails verification."""


@dataclass(frozen=True)
class DownloadableDataset:
    """One registry entry: where a real dataset lives and how to read it.

    ``parse(path)`` returns ``(frame, labels)`` in an existing synthetic
    schema, so every downstream consumer (encoder, constraints,
    benchmarks) works unchanged on real rows.  ``fallback(n_rows, seed)``
    generates a synthetic stand-in population of the same schema for
    offline runs.  ``sha256=None`` means trust-on-first-use: the digest
    is recorded in the cache lockfile at first download.
    """

    name: str
    url: str
    filename: str
    schema: object
    parse: callable
    fallback: callable
    sha256: str = None


def data_cache_dir(cache_dir=None):
    """Resolve the dataset cache directory (created on demand).

    Priority: explicit argument, then ``$REPRO_DATA_CACHE``, then
    ``~/.cache/repro-datasets``.
    """
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_ENV)
    if cache_dir is None:
        cache_dir = pathlib.Path.home() / ".cache" / "repro-datasets"
    path = pathlib.Path(cache_dir)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _sha256(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _read_lockfile(cache):
    path = cache / _LOCKFILE
    if not path.is_file():
        return {}
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return {}


def _record_checksum(cache, filename, digest):
    locked = _read_lockfile(cache)
    locked[filename] = digest
    (cache / _LOCKFILE).write_text(json.dumps(locked, indent=2, sort_keys=True) + "\n")


def _default_fetcher(url, dest):
    """Stream ``url`` to ``dest`` (atomic: partial downloads never land)."""
    partial = dest.with_suffix(dest.suffix + ".part")
    with urllib.request.urlopen(url, timeout=60) as response, open(partial, "wb") as out:
        while True:
            chunk = response.read(1 << 20)
            if not chunk:
                break
            out.write(chunk)
    partial.replace(dest)


def fetch_dataset(name, cache_dir=None, fetcher=None):
    """Download-or-reuse a registered dataset file; returns its path.

    A cached file is verified against the pinned (or locked) SHA-256
    before reuse and :class:`DownloadError` names the mismatch —
    corruption never silently feeds a benchmark.  ``fetcher(url, dest)``
    replaces the urllib downloader (tests inject local fixtures with
    it).
    """
    entry = _downloadable(name)
    cache = data_cache_dir(cache_dir)
    dest = cache / entry.filename
    expected = entry.sha256 or _read_lockfile(cache).get(entry.filename)

    if not dest.is_file():
        fetcher = _default_fetcher if fetcher is None else fetcher
        try:
            fetcher(entry.url, dest)
        except Exception as error:
            raise DownloadError(
                f"could not download {name!r} from {entry.url}: {error}") from error
        if not dest.is_file():
            raise DownloadError(f"fetcher for {name!r} produced no file at {dest}")

    actual = _sha256(dest)
    if expected is None:
        # trust-on-first-use: lock the digest so later runs detect drift
        _record_checksum(cache, entry.filename, actual)
    elif actual != expected:
        raise DownloadError(
            f"{dest} fails its checksum (expected {expected[:12]}..., got "
            f"{actual[:12]}...); delete the file to re-download, or update "
            f"the lockfile if upstream legitimately changed")
    return dest


def upsample(frame, labels, n_rows, seed=0, schema=None):
    """Resample a population to ``n_rows`` with continuous jitter.

    Rows are drawn with replacement; continuous features get a small
    Gaussian perturbation (1% of the feature's bound range, clipped back
    into bounds) so the upsampled population has ``n_rows`` *distinct*
    points instead of exact duplicates — what a density index needs to
    be exercised honestly.  Categorical/binary cells are copied as-is.
    """
    n_rows = int(n_rows)
    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
    rng = np.random.default_rng(seed)
    picked = rng.integers(0, frame.n_rows, size=n_rows)
    out = frame.take(picked)
    labels = np.asarray(labels)[picked]
    if schema is not None:
        columns = {name: out[name] for name in out.column_names}
        for spec in schema.continuous:
            low, high = spec.bounds
            scale = 0.01 * (high - low)
            jittered = columns[spec.name].astype(np.float64)
            jittered = jittered + rng.normal(0.0, scale, size=n_rows)
            columns[spec.name] = np.clip(jittered, low, high)
        out = TabularFrame(columns)
    return out, labels


def load_downloadable(name, n_rows=None, seed=0, cache_dir=None, fetcher=None,
                      require_real=False):
    """Load a registered real dataset as clean ``(frame, labels, source)``.

    ``source`` is ``"download"`` when the rows came from the verified
    cached file and ``"synthetic"`` when the offline fallback generated
    them.  ``n_rows`` upsamples (or truncates) the cleaned population to
    an exact size via :func:`upsample` — the at-scale benchmarks ask for
    1k–1M rows regardless of the real file's size.  ``require_real=True``
    turns the fallback into a :class:`DownloadError`.
    """
    entry = _downloadable(name)
    try:
        path = fetch_dataset(name, cache_dir=cache_dir, fetcher=fetcher)
        frame, labels = entry.parse(path)
        source = "download"
    except DownloadError:
        if require_real:
            raise
        # generate a modest base population and let upsample() below
        # stretch it: generating 1M SCM rows directly would dominate
        # benchmark setup time without changing what is measured
        base_rows = 4096 if n_rows is None else min(max(int(n_rows), 1), 65536)
        frame, labels = entry.fallback(base_rows, seed)
        source = "synthetic"
    frame, labels = clean(frame, labels)
    if n_rows is not None:
        if int(n_rows) <= frame.n_rows:
            frame = frame.take(np.arange(int(n_rows)))
            labels = labels[: int(n_rows)]
        else:
            frame, labels = upsample(frame, labels, n_rows, seed=seed, schema=entry.schema)
    return frame, labels, source


# -- UCI Adult Census ---------------------------------------------------------

_ADULT_URL = (
    "https://archive.ics.uci.edu/ml/machine-learning-databases/adult/adult.data"
)

_ADULT_WORKCLASS = {
    "Private": "private",
    "Self-emp-not-inc": "self_employed",
    "Self-emp-inc": "self_employed",
    "Federal-gov": "government",
    "Local-gov": "government",
    "State-gov": "government",
    "Without-pay": "unemployed",
    "Never-worked": "unemployed",
}
_ADULT_EDUCATION = {
    "Preschool": "school", "1st-4th": "school", "5th-6th": "school",
    "7th-8th": "school", "9th": "school", "10th": "school", "11th": "school",
    "12th": "school",
    "HS-grad": "hs_grad",
    "Some-college": "some_college",
    "Assoc-voc": "assoc", "Assoc-acdm": "assoc",
    "Bachelors": "bachelors",
    "Masters": "masters", "Prof-school": "masters",
    "Doctorate": "doctorate",
}
_ADULT_MARITAL = {
    "Never-married": "single",
    "Married-civ-spouse": "married",
    "Married-spouse-absent": "married",
    "Married-AF-spouse": "married",
    "Divorced": "divorced", "Separated": "divorced",
    "Widowed": "widowed",
}
_ADULT_OCCUPATION = {
    "Craft-repair": "blue_collar", "Handlers-cleaners": "blue_collar",
    "Machine-op-inspct": "blue_collar", "Farming-fishing": "blue_collar",
    "Transport-moving": "blue_collar",
    "Other-service": "service", "Priv-house-serv": "service",
    "Protective-serv": "service", "Armed-Forces": "service",
    "Sales": "sales",
    "Adm-clerical": "white_collar", "Exec-managerial": "white_collar",
    "Tech-support": "professional", "Prof-specialty": "professional",
}
_ADULT_RACE = {
    "White": "white", "Black": "black", "Asian-Pac-Islander": "asian",
    "Amer-Indian-Eskimo": "amer_indian", "Other": "other",
}


def parse_adult_census(path):
    """Parse UCI ``adult.data`` rows into the :data:`ADULT_SCHEMA` layout.

    The raw file has 15 comma-separated columns; this keeps the nine the
    schema models, folding the UCI vocabularies into the schema's
    coarser categories (e.g. the three ``*-gov`` workclasses into
    ``government``).  ``?`` cells become missing values (``NaN`` /
    ``None``) for :func:`repro.data.preprocess.clean` to drop, exactly
    like the synthetic generator's injected missingness.
    """
    age, hours, workclass, education, marital = [], [], [], [], []
    occupation, race, gender, native_us, labels = [], [], [], [], []

    def categorical(mapping, value):
        return mapping.get(value)  # unknown / "?" -> missing

    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if len(row) != 15:
                continue  # blank/continuation lines in the raw file
            row = [cell.strip() for cell in row]
            age.append(np.clip(float(row[0]), 17.0, 90.0))
            workclass.append(categorical(_ADULT_WORKCLASS, row[1]))
            education.append(categorical(_ADULT_EDUCATION, row[3]))
            marital.append(categorical(_ADULT_MARITAL, row[5]))
            occupation.append(categorical(_ADULT_OCCUPATION, row[6]))
            race.append(categorical(_ADULT_RACE, row[8]))
            gender.append(1.0 if row[9] == "Male" else 0.0)
            hours.append(np.clip(float(row[12]), 1.0, 99.0))
            native_us.append(np.nan if row[13] == "?" else float(row[13] == "United-States"))
            labels.append(float(row[14].rstrip(".") == ">50K"))

    frame = TabularFrame({
        "age": np.array(age, dtype=np.float64),
        "hours_per_week": np.array(hours, dtype=np.float64),
        "workclass": np.array(workclass, dtype=object),
        "education": np.array(education, dtype=object),
        "marital_status": np.array(marital, dtype=object),
        "occupation": np.array(occupation, dtype=object),
        "race": np.array(race, dtype=object),
        "gender": np.array(gender, dtype=np.float64),
        "native_us": np.array(native_us, dtype=np.float64),
    })
    return frame, np.array(labels, dtype=np.float64)


def _adult_fallback(n_rows, seed):
    """Synthetic Adult population for offline runs (no missing cells)."""
    return generate_adult(n_instances=int(n_rows), seed=seed, missing_fraction=0.0)


_DOWNLOADABLE = {}


def register_downloadable(entry, overwrite=False):
    """Add a :class:`DownloadableDataset` to the registry; returns it."""
    if entry.name in _DOWNLOADABLE and not overwrite:
        raise ValueError(
            f"downloadable dataset {entry.name!r} is already registered "
            f"(overwrite=True replaces)")
    _DOWNLOADABLE[entry.name] = entry
    return entry


def downloadable_names():
    """Sorted names of every registered downloadable dataset."""
    return tuple(sorted(_DOWNLOADABLE))


def _downloadable(name):
    if name not in _DOWNLOADABLE:
        known = ", ".join(downloadable_names())
        raise KeyError(f"unknown downloadable dataset {name!r}; registered: {known}")
    return _DOWNLOADABLE[name]


register_downloadable(DownloadableDataset(
    name="adult_uci",
    url=_ADULT_URL,
    filename="adult.data",
    schema=ADULT_SCHEMA,
    parse=parse_adult_census,
    fallback=_adult_fallback,
))

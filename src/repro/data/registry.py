"""One-call dataset loading: generate, clean, encode, split.

``load_dataset("adult")`` returns a :class:`DatasetBundle` with everything
downstream code needs — the schema, the cleaned frame, the encoded matrix,
labels, the fitted encoder and the paper's 80/10/10 split.  Row counts are
scalable so tests and benchmarks can run miniature versions of the same
pipeline the full experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .adult import ADULT_SCHEMA, generate_adult
from .kdd_census import KDD_SCHEMA, generate_kdd_census
from .law_school import LAW_SCHEMA, generate_law_school
from .preprocess import TabularEncoder, clean
from .splits import train_val_test_split

__all__ = ["DatasetBundle", "load_dataset", "dataset_names", "dataset_schema",
           "PAPER_SIZES"]

_GENERATORS = {
    "adult": (ADULT_SCHEMA, generate_adult),
    "kdd_census": (KDD_SCHEMA, generate_kdd_census),
    "law_school": (LAW_SCHEMA, generate_law_school),
}

#: Raw instance counts from the paper's Table I.
PAPER_SIZES = {"adult": 48_842, "kdd_census": 299_285, "law_school": 20_798}


def dataset_names():
    """Names accepted by :func:`load_dataset`."""
    return tuple(_GENERATORS)


def dataset_schema(name):
    """Schema of a registered dataset, without generating any data.

    The serving layer uses this to rebuild encoders and constraint sets
    from an artifact manifest in a fresh process.
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(_GENERATORS)}")
    return _GENERATORS[name][0]


@dataclass
class DatasetBundle:
    """Everything the pipeline knows about one loaded dataset."""

    schema: object
    raw_frame: object
    frame: object
    labels: np.ndarray
    encoder: TabularEncoder
    encoded: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def name(self):
        """Schema name (``adult`` / ``kdd_census`` / ``law_school``)."""
        return self.schema.name

    @property
    def n_raw(self):
        """Instance count before cleaning."""
        return self.raw_frame.n_rows

    @property
    def n_clean(self):
        """Instance count after dropping missing rows."""
        return self.frame.n_rows

    def split(self, which):
        """Return ``(encoded, labels)`` for ``"train"``, ``"val"`` or ``"test"``."""
        indices = {"train": self.train_idx, "val": self.val_idx, "test": self.test_idx}
        if which not in indices:
            raise KeyError(f"unknown split {which!r}")
        idx = indices[which]
        return self.encoded[idx], self.labels[idx]


def load_dataset(name, n_instances=None, seed=0):
    """Generate, clean, encode and split a benchmark dataset.

    Parameters
    ----------
    name:
        ``"adult"``, ``"kdd_census"`` or ``"law_school"``.
    n_instances:
        Raw instance count; defaults to the paper's Table I size.
        Smaller values run the identical pipeline on less data.
    seed:
        Seed controlling generation and the split shuffle.
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(_GENERATORS)}")
    schema, generator = _GENERATORS[name]
    if n_instances is None:
        n_instances = PAPER_SIZES[name]

    raw_frame, raw_labels = generator(n_instances=n_instances, seed=seed)
    frame, labels = clean(raw_frame, raw_labels)
    encoder = TabularEncoder(schema)
    encoded = encoder.fit_transform(frame)
    rng = np.random.default_rng(seed + 1)
    train_idx, val_idx, test_idx = train_val_test_split(frame.n_rows, rng)

    return DatasetBundle(
        schema=schema,
        raw_frame=raw_frame,
        frame=frame,
        labels=labels,
        encoder=encoder,
        encoded=encoded,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )

"""A minimal column-oriented table, the pandas stand-in for this repo.

The evaluation environment has no pandas, so :class:`TabularFrame` provides
the small slice of DataFrame behaviour the pipeline needs: named columns
backed by numpy arrays, row subsetting, missing-value handling and pretty
row rendering for the Table V style output.

Conventions
-----------
* Continuous and binary columns are ``float64`` arrays; missing = ``NaN``.
* Categorical columns are ``object`` arrays of strings; missing = ``None``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TabularFrame"]


class TabularFrame:
    """Immutable-ish column store with uniform row count.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array-like.  All columns must share
        the same length.
    """

    def __init__(self, columns):
        if not columns:
            raise ValueError("a frame needs at least one column")
        self._columns = {}
        length = None
        for name, values in columns.items():
            array = np.asarray(values)
            if array.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {array.shape}")
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {name!r} has {len(array)} rows, expected {length}")
            self._columns[name] = array
        self._length = length

    # -- basic introspection ----------------------------------------------
    @property
    def column_names(self):
        """Column names in insertion order."""
        return tuple(self._columns)

    @property
    def n_rows(self):
        """Number of rows."""
        return self._length

    @property
    def n_columns(self):
        """Number of columns."""
        return len(self._columns)

    def __len__(self):
        return self._length

    def __contains__(self, name):
        return name in self._columns

    def __getitem__(self, name):
        """Return the array backing column ``name``."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}")
        return self._columns[name]

    def __repr__(self):
        return f"TabularFrame({self.n_rows} rows x {self.n_columns} columns)"

    # -- construction helpers ----------------------------------------------
    def with_column(self, name, values):
        """Return a new frame with column ``name`` added or replaced."""
        columns = dict(self._columns)
        columns[name] = values
        return TabularFrame(columns)

    def without_columns(self, names):
        """Return a new frame lacking the given columns."""
        names = set(names)
        remaining = {k: v for k, v in self._columns.items() if k not in names}
        return TabularFrame(remaining)

    def select(self, names):
        """Return a new frame with only the given columns, in that order."""
        return TabularFrame({name: self[name] for name in names})

    def take(self, indices):
        """Return a new frame with the rows at ``indices`` (any order)."""
        indices = np.asarray(indices)
        return TabularFrame({name: col[indices] for name, col in self._columns.items()})

    def head(self, count=5):
        """Return the first ``count`` rows."""
        return self.take(np.arange(min(count, self._length)))

    # -- missing values ----------------------------------------------------
    def missing_mask(self):
        """Boolean array marking rows with at least one missing cell."""
        mask = np.zeros(self._length, dtype=bool)
        for column in self._columns.values():
            if column.dtype == object:
                mask |= np.array([value is None for value in column])
            else:
                mask |= np.isnan(column.astype(np.float64))
        return mask

    def drop_missing(self):
        """Return a frame with every incomplete row removed."""
        keep = ~self.missing_mask()
        return self.take(np.flatnonzero(keep))

    # -- row access ----------------------------------------------------------
    def row(self, index):
        """Return row ``index`` as an ordered dict of scalars."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: column[index] for name, column in self._columns.items()}

    def iter_rows(self):
        """Yield each row as a dict (slow path, test/reporting use only)."""
        for index in range(self._length):
            yield self.row(index)

    def format_row(self, index, digits=2):
        """Render one row as aligned ``feature: value`` lines (Table V style)."""
        parts = []
        for name, value in self.row(index).items():
            if isinstance(value, (float, np.floating)):
                parts.append(f"{name}: {value:.{digits}f}")
            else:
                parts.append(f"{name}: {value}")
        return "\n".join(parts)

    @staticmethod
    def concat(frames):
        """Stack frames with identical columns vertically."""
        frames = list(frames)
        if not frames:
            raise ValueError("need at least one frame")
        names = frames[0].column_names
        for frame in frames[1:]:
            if frame.column_names != names:
                raise ValueError("frames have mismatching columns")
        return TabularFrame({
            name: np.concatenate([frame[name] for frame in frames])
            for name in names
        })

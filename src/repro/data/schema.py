"""Dataset schemas: feature types, bounds, immutability and constraints.

The paper's method consumes heterogeneous tabular data — continuous,
binary and categorical attributes (Table I) — with some attributes marked
immutable (race, gender, sex).  A :class:`DatasetSchema` captures exactly
that structure and is the contract between the data generators, the
encoder, the constraint catalog and the explainers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["FeatureType", "FeatureSpec", "DatasetSchema"]


class FeatureType(Enum):
    """Kind of a tabular attribute."""

    CONTINUOUS = "continuous"
    BINARY = "binary"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class FeatureSpec:
    """Description of a single attribute.

    Parameters
    ----------
    name:
        Column name.
    ftype:
        One of :class:`FeatureType`.
    categories:
        Ordered category labels; required for categorical features.  The
        order matters for ordinal attributes such as ``education`` — the
        binary causal constraint compares category ranks.
    bounds:
        ``(low, high)`` value range for continuous features; used by the
        min-max normaliser and by generators.
    immutable:
        When True, explainers must not change this attribute
        (Section III-C, "Immutable Attributes").
    """

    name: str
    ftype: FeatureType
    categories: tuple = ()
    bounds: tuple = ()
    immutable: bool = False

    def __post_init__(self):
        if self.ftype is FeatureType.CATEGORICAL and not self.categories:
            raise ValueError(f"categorical feature {self.name!r} needs categories")
        if self.ftype is FeatureType.CONTINUOUS and len(self.bounds) != 2:
            raise ValueError(f"continuous feature {self.name!r} needs (low, high) bounds")
        if self.ftype is FeatureType.CONTINUOUS and self.bounds[0] >= self.bounds[1]:
            raise ValueError(f"feature {self.name!r} has empty bounds {self.bounds}")

    @property
    def n_categories(self):
        """Number of category levels (0 for non-categorical features)."""
        return len(self.categories)

    def category_rank(self, label):
        """Ordinal rank of ``label`` within :attr:`categories`."""
        try:
            return self.categories.index(label)
        except ValueError:
            raise KeyError(f"{label!r} is not a category of {self.name!r}") from None


@dataclass(frozen=True)
class DatasetSchema:
    """Full description of one benchmark dataset.

    Mirrors the paper's Table I row for the dataset plus the extra
    method-level annotations (immutable attributes, target class).
    """

    name: str
    features: tuple
    target: str
    target_classes: tuple = ("0", "1")
    desired_class: int = 1
    display_name: str = ""

    def __post_init__(self):
        names = [feature.name for feature in self.features]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate feature names in schema {self.name!r}")
        if self.target in names:
            raise ValueError(f"target {self.target!r} duplicates a feature name")

    # -- lookups --------------------------------------------------------
    def feature(self, name):
        """Return the :class:`FeatureSpec` called ``name``."""
        for spec in self.features:
            if spec.name == name:
                return spec
        raise KeyError(f"no feature named {name!r} in schema {self.name!r}")

    @property
    def feature_names(self):
        """All attribute names, in schema order."""
        return tuple(spec.name for spec in self.features)

    def _by_type(self, ftype):
        return tuple(spec for spec in self.features if spec.ftype is ftype)

    @property
    def continuous(self):
        """Specs of continuous attributes."""
        return self._by_type(FeatureType.CONTINUOUS)

    @property
    def binary(self):
        """Specs of binary attributes."""
        return self._by_type(FeatureType.BINARY)

    @property
    def categorical(self):
        """Specs of categorical attributes."""
        return self._by_type(FeatureType.CATEGORICAL)

    @property
    def immutable_names(self):
        """Names of attributes the explainers must keep fixed."""
        return tuple(spec.name for spec in self.features if spec.immutable)

    def type_counts(self):
        """Return (n_categorical, n_binary, n_continuous) as in Table I."""
        return (len(self.categorical), len(self.binary), len(self.continuous))

    @property
    def n_features(self):
        """Total number of attributes (excluding the target)."""
        return len(self.features)

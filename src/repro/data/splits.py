"""Train/validation/test splitting (the paper uses 80% / 10% / 10%)."""

from __future__ import annotations


__all__ = ["train_val_test_split"]


def train_val_test_split(n_rows, rng, fractions=(0.8, 0.1, 0.1)):
    """Return shuffled (train, val, test) index arrays partitioning ``n_rows``.

    Parameters
    ----------
    n_rows:
        Number of rows to split.
    rng:
        ``numpy.random.Generator`` for the shuffle.
    fractions:
        Three positive floats summing to 1 — defaults to the paper's
        80:10:10 split (Section IV-A).
    """
    if n_rows <= 0:
        raise ValueError(f"n_rows must be positive, got {n_rows}")
    fractions = tuple(float(f) for f in fractions)
    if len(fractions) != 3 or any(f <= 0 for f in fractions):
        raise ValueError(f"need three positive fractions, got {fractions}")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")

    order = rng.permutation(n_rows)
    n_train = int(round(fractions[0] * n_rows))
    n_val = int(round(fractions[1] * n_rows))
    n_train = min(n_train, n_rows - 2)  # keep val/test non-empty on tiny inputs
    n_val = max(1, min(n_val, n_rows - n_train - 1))
    train = order[:n_train]
    val = order[n_train:n_train + n_val]
    test = order[n_train + n_val:]
    return train, val, test

"""Preprocessing: cleaning, min-max normalisation, one-hot encoding.

Implements Section IV-C of the paper exactly:

1. rows with missing values are deleted,
2. continuous features are normalised to [0, 1],
3. categorical features are one-hot encoded,
4. binary attributes become 0/1.

:class:`TabularEncoder` owns steps 2-4 and is fully invertible, which the
Table V reproduction needs (decoding a generated counterfactual back to
raw attribute values).
"""

from __future__ import annotations

import numpy as np

from .frame import TabularFrame
from .schema import FeatureType

__all__ = ["clean", "TabularEncoder"]


def clean(frame, labels):
    """Drop rows with missing values from ``frame`` and ``labels`` together.

    Returns ``(clean_frame, clean_labels)`` — the paper's first
    preprocessing step, producing the Table I "cleaned" instance counts.
    """
    labels = np.asarray(labels)
    if len(labels) != frame.n_rows:
        raise ValueError(
            f"labels ({len(labels)}) and frame ({frame.n_rows}) row counts differ")
    keep = np.flatnonzero(~frame.missing_mask())
    return frame.take(keep), labels[keep]


class TabularEncoder:
    """Invertible encoder from a :class:`TabularFrame` to a float matrix.

    Each feature occupies a contiguous block of output columns in schema
    order: one column per continuous feature (min-max scaled), one per
    binary feature, ``k`` one-hot columns per categorical feature with
    ``k`` categories.

    The encoder also publishes the structural metadata every other
    component consumes: per-feature column slices, the immutable-column
    mask, and per-block category counts.
    """

    def __init__(self, schema):
        self.schema = schema
        self.feature_slices = {}
        self._fitted = False
        self._ranges = {}

        offset = 0
        for spec in schema.features:
            width = spec.n_categories if spec.ftype is FeatureType.CATEGORICAL else 1
            self.feature_slices[spec.name] = slice(offset, offset + width)
            offset += width
        self.n_encoded = offset

    # -- fitting ------------------------------------------------------------
    def fit(self, frame):
        """Record min/max for continuous features from ``frame``.

        Categorical vocabularies come from the schema (they are part of
        the dataset definition), so only continuous ranges are data
        dependent.  Returns ``self``.
        """
        for spec in self.schema.continuous:
            column = frame[spec.name].astype(np.float64)
            low = float(np.nanmin(column))
            high = float(np.nanmax(column))
            if high == low:
                high = low + 1.0
            self._ranges[spec.name] = (low, high)
        self._fitted = True
        return self

    def _require_fitted(self):
        if not self._fitted:
            raise RuntimeError("encoder is not fitted; call fit() first")

    @property
    def ranges(self):
        """Fitted (low, high) per continuous feature."""
        self._require_fitted()
        return dict(self._ranges)

    # -- transform -----------------------------------------------------------
    def transform(self, frame):
        """Encode ``frame`` into a float matrix of shape (rows, n_encoded)."""
        self._require_fitted()
        out = np.zeros((frame.n_rows, self.n_encoded), dtype=np.float64)
        for spec in self.schema.features:
            block = self.feature_slices[spec.name]
            column = frame[spec.name]
            if spec.ftype is FeatureType.CONTINUOUS:
                low, high = self._ranges[spec.name]
                out[:, block.start] = (column.astype(np.float64) - low) / (high - low)
            elif spec.ftype is FeatureType.BINARY:
                out[:, block.start] = column.astype(np.float64)
            else:
                indices = self._category_indices(spec, column)
                out[np.arange(frame.n_rows), block.start + indices] = 1.0
        return out

    @staticmethod
    def _category_indices(spec, column):
        lookup = {label: index for index, label in enumerate(spec.categories)}
        try:
            return np.array([lookup[value] for value in column], dtype=int)
        except KeyError as error:
            raise ValueError(
                f"unknown category {error.args[0]!r} in feature {spec.name!r}") from None

    def fit_transform(self, frame):
        """Shorthand for ``fit(frame).transform(frame)``."""
        return self.fit(frame).transform(frame)

    def transform_chunked(self, frame, chunk_size=8192, out=None):
        """Encode ``frame`` in row chunks; returns the full matrix.

        The streaming twin of :meth:`transform` for 100k–1M-row
        reference populations: rows are encoded ``chunk_size`` at a time
        into ``out`` (any array-like with the right shape — typically an
        ``np.lib.format.open_memmap`` so the encoded population lives on
        disk, never fully resident).  Values are identical to
        :meth:`transform` row for row; only the allocation pattern
        differs.  Returns ``out``.
        """
        self._require_fitted()
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if out is None:
            out = np.zeros((frame.n_rows, self.n_encoded), dtype=np.float64)
        if out.shape != (frame.n_rows, self.n_encoded):
            raise ValueError(
                f"out has shape {out.shape}, expected "
                f"{(frame.n_rows, self.n_encoded)}")
        for start in range(0, frame.n_rows, chunk_size):
            stop = min(start + chunk_size, frame.n_rows)
            out[start:stop] = self.transform(frame.take(np.arange(start, stop)))
        return out

    # -- fitted-state persistence ---------------------------------------------
    def get_state(self):
        """JSON-serialisable fitted state (schema name + continuous ranges).

        Together with the schema (a code-level constant looked up by
        name), this is everything a fresh process needs to rebuild the
        encoder without touching the training data — the serving layer's
        artifact manifests persist exactly this dict.
        """
        self._require_fitted()
        return {
            "schema": self.schema.name,
            "n_encoded": int(self.n_encoded),
            "ranges": {name: [float(low), float(high)]
                       for name, (low, high) in self._ranges.items()},
        }

    @classmethod
    def from_state(cls, schema, state):
        """Rebuild a fitted encoder from :meth:`get_state` output."""
        if state.get("schema") != schema.name:
            raise ValueError(
                f"encoder state is for schema {state.get('schema')!r}, "
                f"not {schema.name!r}")
        encoder = cls(schema)
        if int(state["n_encoded"]) != encoder.n_encoded:
            raise ValueError(
                f"encoder state has n_encoded={state['n_encoded']} but the "
                f"current {schema.name!r} schema encodes {encoder.n_encoded} "
                f"columns; the schema changed since the state was saved")
        ranges = {name: (float(low), float(high))
                  for name, (low, high) in state["ranges"].items()}
        missing = {spec.name for spec in schema.continuous} - set(ranges)
        if missing:
            raise ValueError(
                f"encoder state is missing ranges for {sorted(missing)}")
        encoder._ranges = ranges
        encoder._fitted = True
        return encoder

    # -- inverse -------------------------------------------------------------
    def inverse_transform(self, matrix):
        """Decode an encoded matrix back into a :class:`TabularFrame`.

        Continuous columns are de-normalised and clipped to the schema
        bounds; binary columns are thresholded at 0.5; categorical blocks
        take the argmax — so the inverse is total on arbitrary real
        matrices (e.g. raw VAE decoder output), not just on exact
        encodings.
        """
        self._require_fitted()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_encoded:
            raise ValueError(
                f"expected shape (n, {self.n_encoded}), got {matrix.shape}")
        columns = {}
        for spec in self.schema.features:
            block = self.feature_slices[spec.name]
            values = matrix[:, block]
            if spec.ftype is FeatureType.CONTINUOUS:
                low, high = self._ranges[spec.name]
                raw = values[:, 0] * (high - low) + low
                columns[spec.name] = np.clip(raw, spec.bounds[0], spec.bounds[1])
            elif spec.ftype is FeatureType.BINARY:
                columns[spec.name] = (values[:, 0] >= 0.5).astype(np.float64)
            else:
                picked = np.argmax(values, axis=1)
                columns[spec.name] = np.array(spec.categories, dtype=object)[picked]
        return TabularFrame(columns)

    # -- structural metadata ---------------------------------------------------
    def immutable_mask(self):
        """Boolean mask over encoded columns that belong to immutable features."""
        mask = np.zeros(self.n_encoded, dtype=bool)
        for name in self.schema.immutable_names:
            mask[self.feature_slices[name]] = True
        return mask

    def column_of(self, feature_name):
        """Encoded column index of a continuous or binary feature."""
        spec = self.schema.feature(feature_name)
        if spec.ftype is FeatureType.CATEGORICAL:
            raise ValueError(
                f"{feature_name!r} is categorical; use feature_slices for its block")
        return self.feature_slices[feature_name].start

    def normalized_value(self, feature_name, raw_value):
        """Map a raw continuous value into its encoded [0, 1] position."""
        self._require_fitted()
        low, high = self._ranges[feature_name]
        return (float(raw_value) - low) / (high - low)

    def category_rank_weights(self, feature_name):
        """Per-column ordinal ranks for a categorical block.

        Dotting a one-hot (or soft) block with these weights yields the
        expected category rank — the differentiable "ordinal value" the
        binary causal constraint uses for attributes such as education.
        """
        spec = self.schema.feature(feature_name)
        if spec.ftype is not FeatureType.CATEGORICAL:
            raise ValueError(f"{feature_name!r} is not categorical")
        return np.arange(spec.n_categories, dtype=np.float64)

"""Structural-causal-model sampling helpers for the synthetic benchmarks.

The original paper evaluates on three public tabular datasets (UCI Adult,
KDD Census-Income, LSAC Law School).  This environment has no network
access, so the generators in :mod:`repro.data.adult`, ``kdd_census`` and
``law_school`` sample from hand-built SCMs that match each dataset's
published schema, marginals and — crucially for this paper — the causal
relations the constraints reference (education cannot rise without age,
school tier tracks LSAT, ...).  This module holds the shared sampling
primitives.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "standardize",
    "ordinal_from_score",
    "sample_categorical",
    "conditional_categorical",
    "bernoulli_logit",
    "inject_missing",
]


def sigmoid(x):
    """Numerically stable logistic function."""
    x = np.clip(x, -500, 500)
    return 1.0 / (1.0 + np.exp(-x))


def standardize(values):
    """Zero-mean unit-variance version of ``values`` (constant-safe)."""
    values = np.asarray(values, dtype=np.float64)
    std = values.std()
    if std == 0:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def ordinal_from_score(rng, score, n_levels, noise=0.6):
    """Map a latent score to ordinal levels ``0 .. n_levels-1``.

    The score is standardised, perturbed with Gaussian noise and binned
    through evenly spaced normal quantiles, so higher scores land in
    higher levels on average while preserving stochasticity.
    """
    z = standardize(score) + rng.normal(0.0, noise, size=len(score))
    # Spread the standard normal into n_levels equal-probability bins.
    edges = np.quantile(z, np.linspace(0, 1, n_levels + 1)[1:-1])
    return np.digitize(z, edges)


def sample_categorical(rng, labels, probabilities, size):
    """Sample ``size`` labels i.i.d. from one probability vector."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    indices = rng.choice(len(labels), size=size, p=probabilities)
    return np.array(labels, dtype=object)[indices]


def conditional_categorical(rng, labels, probability_rows):
    """Sample one label per row from per-row probability vectors.

    Parameters
    ----------
    labels:
        Sequence of category labels (length k).
    probability_rows:
        Array of shape (n, k); each row is normalised then sampled.
    """
    probability_rows = np.asarray(probability_rows, dtype=np.float64)
    probability_rows = probability_rows / probability_rows.sum(axis=1, keepdims=True)
    cumulative = probability_rows.cumsum(axis=1)
    draws = rng.random(len(probability_rows))[:, None]
    indices = (draws > cumulative).sum(axis=1)
    return np.array(labels, dtype=object)[indices]


def bernoulli_logit(rng, logits):
    """Draw 0/1 outcomes with probability ``sigmoid(logits)``."""
    return (rng.random(len(logits)) < sigmoid(np.asarray(logits))).astype(np.float64)


def inject_missing(frame, columns, row_fraction, rng):
    """Return a copy of ``frame`` with missing cells injected.

    ``row_fraction`` of the rows are corrupted; each corrupted row gets a
    missing value in one of the given ``columns`` (chosen uniformly).
    Mirrors the real datasets, where missingness concentrates in a few
    survey fields, and drives the Table I raw → cleaned instance counts.
    """
    n_rows = frame.n_rows
    n_corrupt = int(round(row_fraction * n_rows))
    corrupt_rows = rng.choice(n_rows, size=n_corrupt, replace=False)
    target_columns = rng.integers(0, len(columns), size=n_corrupt)

    new_columns = {name: frame[name].copy() for name in frame.column_names}
    for slot, column_name in enumerate(columns):
        rows = corrupt_rows[target_columns == slot]
        column = new_columns[column_name]
        if column.dtype == object:
            column[rows] = None
        else:
            column[rows] = np.nan

    from .frame import TabularFrame

    return TabularFrame(new_columns)

"""Synthetic Adult Income dataset (UCI "Adult" stand-in).

Matches the paper's Table I row: 48 842 raw instances, 32 561 after
cleaning, 9 attributes (5 categorical / 2 binary / 2 continuous), target
``income`` (>50k), immutables ``race`` and ``gender``.

The structural causal model implements the relations the paper's
constraints rely on:

* ``education`` is caused by ``age`` — each level has a minimum
  attainment age, so in the *data* education never exceeds what the age
  allows (the binary constraint of Eq. 2).
* ``occupation`` is caused by ``education``; ``hours_per_week`` by
  occupation; ``income`` by a logistic model over age, education rank,
  hours, occupation and marital status.
"""

from __future__ import annotations

import numpy as np

from .frame import TabularFrame
from .schema import DatasetSchema, FeatureSpec, FeatureType
from .scm import bernoulli_logit, conditional_categorical, inject_missing, sample_categorical

__all__ = ["ADULT_SCHEMA", "EDUCATION_LEVELS", "EDUCATION_MIN_AGE",
           "HOURS_EQUATION", "generate_adult"]

RAW_INSTANCES = 48_842
CLEAN_INSTANCES = 32_561

EDUCATION_LEVELS = (
    "school", "hs_grad", "some_college", "assoc", "bachelors", "masters", "doctorate",
)

#: Minimum age at which each education level is attainable; the SCM never
#: violates these, which is what makes the age/education causal constraint
#: meaningful on this dataset.
EDUCATION_MIN_AGE = {
    "school": 17, "hs_grad": 18, "some_college": 19, "assoc": 20,
    "bachelors": 22, "masters": 24, "doctorate": 27,
}

#: Deterministic skeleton of the ``hours_per_week`` structural equation
#: (Gaussian noise is added on top when sampling):
#: ``hours = base + per_occupation_rank * (rank - anchor_rank) +
#: gender_shift * gender``.  Shared with :mod:`repro.causal.equations`,
#: which uses the same coefficients for abduction-action-prediction
#: repair, so the causal layer and the generator can never drift apart.
HOURS_EQUATION = {
    "base": 40.0,
    "per_occupation_rank": 4.0,
    "anchor_rank": 2.0,
    "gender_shift": 3.0,
}

WORKCLASSES = ("private", "self_employed", "government", "unemployed")
MARITAL_STATUSES = ("single", "married", "divorced", "widowed")
OCCUPATIONS = ("blue_collar", "service", "sales", "white_collar", "professional")
RACES = ("white", "black", "asian", "amer_indian", "other")

ADULT_SCHEMA = DatasetSchema(
    name="adult",
    display_name="Adult Income",
    features=(
        FeatureSpec("age", FeatureType.CONTINUOUS, bounds=(17.0, 90.0)),
        FeatureSpec("hours_per_week", FeatureType.CONTINUOUS, bounds=(1.0, 99.0)),
        FeatureSpec("workclass", FeatureType.CATEGORICAL, categories=WORKCLASSES),
        FeatureSpec("education", FeatureType.CATEGORICAL, categories=EDUCATION_LEVELS),
        FeatureSpec("marital_status", FeatureType.CATEGORICAL, categories=MARITAL_STATUSES),
        FeatureSpec("occupation", FeatureType.CATEGORICAL, categories=OCCUPATIONS),
        FeatureSpec("race", FeatureType.CATEGORICAL, categories=RACES, immutable=True),
        FeatureSpec("gender", FeatureType.BINARY, immutable=True),
        FeatureSpec("native_us", FeatureType.BINARY),
    ),
    target="income",
    target_classes=("<=50k", ">50k"),
    desired_class=1,
)


def _sample_education(rng, age):
    """Draw education levels whose minimum ages respect ``age``."""
    n = len(age)
    # Base appetite for higher education, increasing with (capped) age.
    appetite = np.clip((age - 17.0) / 20.0, 0.0, 1.0)
    levels = np.array(EDUCATION_LEVELS, dtype=object)
    min_ages = np.array([EDUCATION_MIN_AGE[level] for level in EDUCATION_LEVELS])
    feasible = age[:, None] >= min_ages[None, :]
    # Weight levels: mid levels common, extremes rarer, shifted by appetite.
    base = np.array([0.16, 0.30, 0.20, 0.08, 0.16, 0.07, 0.03])
    tilt = np.linspace(-1.0, 1.0, len(levels))
    weights = base[None, :] * np.exp(tilt[None, :] * (appetite[:, None] - 0.4) * 2.0)
    weights = np.where(feasible, weights, 0.0)
    return conditional_categorical(rng, levels, weights)


def _sample_occupation(rng, education_rank):
    """Occupation depends on education: higher rank favours professional."""
    n = len(education_rank)
    rank = education_rank / (len(EDUCATION_LEVELS) - 1)
    weights = np.empty((n, len(OCCUPATIONS)))
    weights[:, 0] = 1.2 - rank          # blue_collar
    weights[:, 1] = 0.9 - 0.5 * rank    # service
    weights[:, 2] = 0.6 + 0.1 * rank    # sales
    weights[:, 3] = 0.3 + 0.9 * rank    # white_collar
    weights[:, 4] = 0.05 + 1.3 * rank ** 2  # professional
    weights = np.clip(weights, 0.01, None)
    return conditional_categorical(rng, np.array(OCCUPATIONS, dtype=object), weights)


def _sample_marital(rng, age):
    """Marital status driven by age."""
    n = len(age)
    young = np.clip((30.0 - age) / 13.0, 0.0, 1.0)
    old = np.clip((age - 40.0) / 50.0, 0.0, 1.0)
    weights = np.empty((n, len(MARITAL_STATUSES)))
    weights[:, 0] = 0.15 + 0.8 * young        # single
    weights[:, 1] = 0.55 - 0.35 * young       # married
    weights[:, 2] = 0.12 + 0.15 * old         # divorced
    weights[:, 3] = 0.02 + 0.3 * old          # widowed
    weights = np.clip(weights, 0.01, None)
    return conditional_categorical(rng, np.array(MARITAL_STATUSES, dtype=object), weights)


def generate_adult(n_instances=RAW_INSTANCES, seed=0, missing_fraction=None):
    """Sample the synthetic Adult dataset.

    Parameters
    ----------
    n_instances:
        Raw row count before cleaning (paper: 48 842).
    seed:
        RNG seed; the full pipeline is deterministic in it.
    missing_fraction:
        Fraction of rows to corrupt with missing cells.  Defaults to the
        rate that reproduces Table I's 48 842 -> 32 561 cleaning.

    Returns
    -------
    (frame, labels):
        ``frame`` has missing values still present (call
        :func:`repro.data.preprocess.drop_missing`); ``labels`` is the
        0/1 income array aligned with the frame.
    """
    rng = np.random.default_rng(seed)
    if missing_fraction is None:
        missing_fraction = 1.0 - CLEAN_INSTANCES / RAW_INSTANCES

    # Exogenous roots.
    age = np.clip(rng.gamma(6.0, 4.5, size=n_instances) + 17.0, 17.0, 90.0)
    gender = (rng.random(n_instances) < 0.67).astype(np.float64)  # 1 = male
    native_us = (rng.random(n_instances) < 0.90).astype(np.float64)
    race = sample_categorical(
        rng, RACES, (0.855, 0.096, 0.031, 0.010, 0.008), n_instances)

    # Endogenous attributes (the causal chain the constraints reference).
    education = _sample_education(rng, age)
    education_rank = np.array(
        [EDUCATION_LEVELS.index(level) for level in education], dtype=np.float64)
    occupation = _sample_occupation(rng, education_rank)
    marital = _sample_marital(rng, age)
    workclass = sample_categorical(
        rng, WORKCLASSES, (0.70, 0.11, 0.13, 0.06), n_instances)

    occupation_rank = np.array(
        [OCCUPATIONS.index(level) for level in occupation], dtype=np.float64)
    hours = np.clip(
        HOURS_EQUATION["base"]
        + HOURS_EQUATION["per_occupation_rank"]
        * (occupation_rank - HOURS_EQUATION["anchor_rank"])
        + HOURS_EQUATION["gender_shift"] * gender
        + rng.normal(0.0, 9.0, size=n_instances),
        1.0, 99.0)

    married = (marital == "married").astype(np.float64)
    # Concave age effect: earnings peak mid-career (~48) and decline toward
    # retirement, as in the real survey data.  This matters for the paper's
    # feasibility experiments — for older individuals the classifier's age
    # gradient turns negative, so unconstrained CF methods suggest getting
    # younger, which the unary causal constraint rejects.
    age_peak = 48.0
    logits = (
        -6.6
        + 0.042 * age
        - 0.005 * (np.maximum(age - age_peak, 0.0) ** 2)
        + 0.55 * education_rank
        + 0.035 * hours
        + 0.35 * occupation_rank
        + 1.1 * married
        + 0.25 * gender
    )
    income = bernoulli_logit(rng, logits)

    frame = TabularFrame({
        "age": age,
        "hours_per_week": hours,
        "workclass": workclass,
        "education": education,
        "marital_status": marital,
        "occupation": occupation,
        "race": race,
        "gender": gender,
        "native_us": native_us,
    })
    frame = inject_missing(frame, ("workclass", "occupation"), missing_fraction, rng)
    return frame, income

"""Result container for generated counterfactual explanations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CFBatchResult"]


@dataclass
class CFBatchResult:
    """Counterfactuals for a batch of inputs, with per-row diagnostics.

    Attributes
    ----------
    x:
        Original encoded inputs, shape (n, d).
    x_cf:
        Generated encoded counterfactuals, shape (n, d).
    desired:
        Desired class per row.
    predicted:
        Black-box class of each counterfactual.
    valid:
        ``predicted == desired`` per row.
    feasible:
        All causal constraints satisfied per row.
    encoder:
        The fitted :class:`repro.data.TabularEncoder`, for decoding.
    """

    x: np.ndarray
    x_cf: np.ndarray
    desired: np.ndarray
    predicted: np.ndarray
    valid: np.ndarray
    feasible: np.ndarray
    encoder: object

    def __len__(self):
        return len(self.x)

    @property
    def validity_rate(self):
        """Fraction of counterfactuals achieving the desired class."""
        return float(self.valid.mean()) if len(self) else 0.0

    @property
    def feasibility_rate(self):
        """Fraction of counterfactuals satisfying every causal constraint."""
        return float(self.feasible.mean()) if len(self) else 0.0

    def decoded(self):
        """Counterfactuals decoded to a raw-attribute :class:`TabularFrame`."""
        return self.encoder.inverse_transform(self.x_cf)

    def decoded_inputs(self):
        """Original inputs decoded to a raw-attribute frame."""
        return self.encoder.inverse_transform(self.x)

    def comparison(self, index, digits=2):
        """Side-by-side "x true vs x pred" rendering of one row (Table V style)."""
        originals = self.decoded_inputs().row(index)
        counterfactuals = self.decoded().row(index)
        lines = [f"{'feature':<20} {'x true':>14} {'x pred':>14}"]
        for name, original in originals.items():
            new = counterfactuals[name]
            if isinstance(original, (float, np.floating)):
                lines.append(f"{name:<20} {original:>14.{digits}f} {new:>14.{digits}f}")
            else:
                lines.append(f"{name:<20} {str(original):>14} {str(new):>14}")
        return "\n".join(lines)

"""Training configuration for the feasibility CF-VAE, incl. Table III.

``paper_config(dataset, kind)`` returns the hyperparameters the paper
reports in Table III (learning rate, batch size 2048, epochs 25/50),
plus the loss weights — which the paper leaves as "selected from
experimentation" — tuned for this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CFTrainingConfig",
    "DensityLossConfig",
    "CausalLossConfig",
    "paper_config",
    "TABLE3_SETTINGS",
    "fast_config",
    "inloss_config",
    "DEFAULT_INLOSS_DENSITY_WEIGHT",
    "DEFAULT_INLOSS_CAUSAL_WEIGHT",
]


@dataclass(frozen=True)
class DensityLossConfig:
    """Settings for the in-objective (differentiable) density term.

    ``kind`` selects the surrogate: ``"kde"`` is a Gaussian KDE over a
    subsampled reference population in encoded input space;
    ``"latent"`` is a soft-min kNN distance in the CF-VAE's latent
    space (the reference rows are re-encoded with the current encoder
    weights each step, so the term tracks the manifold as it trains).
    """

    kind: str = "kde"
    bandwidth_scale: float = 1.0
    temperature: float = 0.05
    max_reference: int = 256
    seed: int = 0

    def __post_init__(self):
        if self.kind not in ("kde", "latent"):
            raise ValueError(f"density loss kind must be 'kde' or 'latent', got {self.kind!r}")
        if self.bandwidth_scale <= 0:
            raise ValueError(f"bandwidth_scale must be positive, got {self.bandwidth_scale}")
        if self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if self.max_reference < 1:
            raise ValueError(f"max_reference must be >= 1, got {self.max_reference}")


@dataclass(frozen=True)
class CausalLossConfig:
    """Settings for the in-objective (differentiable) causal term.

    ``kind`` names the causal model the surrogate is built from —
    ``"scm"`` penalises squared residuals of the abduct→intervene
    structural equations, ``"mined"`` applies squared hinge penalties
    to mined monotone relations.
    """

    kind: str = "scm"

    def __post_init__(self):
        if self.kind not in ("scm", "mined"):
            raise ValueError(f"causal loss kind must be 'scm' or 'mined', got {self.kind!r}")


@dataclass(frozen=True)
class CFTrainingConfig:
    """Hyperparameters for the four-part counterfactual objective.

    The first three fields mirror Table III; the weight fields balance
    the loss terms of Eq. 3 (validity, proximity, feasibility, sparsity)
    plus the VAE's KL regulariser.
    """

    learning_rate: float = 1e-3
    batch_size: int = 2048
    epochs: int = 25
    optimizer: str = "adam"
    momentum: float = 0.9
    validity_weight: float = 1.0
    proximity_weight: float = 1.0
    feasibility_weight: float = 5.0
    sparsity_l1_weight: float = 0.1
    sparsity_l0_weight: float = 0.05
    sparsity_l0_tau: float = 0.05
    kl_weight: float = 0.01
    hinge_margin: float = 0.5
    latent_noise: float = 0.1
    warmstart_epochs: int = 15
    proximity_metric: str = "l1"
    density_weight_inloss: float = 0.0
    causal_weight_inloss: float = 0.0
    loss_density: DensityLossConfig = DensityLossConfig()
    loss_causal: CausalLossConfig = CausalLossConfig()

    def __post_init__(self):
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if self.proximity_metric not in ("l1", "l2"):
            raise ValueError(
                f"proximity_metric must be 'l1' or 'l2', got {self.proximity_metric!r}")
        # The artifact store round-trips configs through JSON manifests
        # (``CFTrainingConfig(**manifest["config"])``), where the nested
        # loss configs arrive back as plain dicts — coerce them here so
        # every constructor path yields the frozen dataclass form.
        if isinstance(self.loss_density, dict):
            object.__setattr__(self, "loss_density", DensityLossConfig(**self.loss_density))
        if isinstance(self.loss_causal, dict):
            object.__setattr__(self, "loss_causal", CausalLossConfig(**self.loss_causal))
        if self.density_weight_inloss < 0:
            raise ValueError(
                f"density_weight_inloss must be >= 0, got {self.density_weight_inloss}")
        if self.causal_weight_inloss < 0:
            raise ValueError(
                f"causal_weight_inloss must be >= 0, got {self.causal_weight_inloss}")

    def scaled_for(self, n_rows):
        """Adapt the batch size to small datasets (tests, examples).

        The paper's batch of 2048 assumes tens of thousands of training
        rows; on miniature datasets it would leave the optimiser with a
        handful of steps.  This keeps at least ~8 batches per epoch
        without exceeding the configured batch size.
        """
        target = max(16, min(self.batch_size, n_rows // 8))
        if n_rows >= 8 * self.batch_size:
            return self
        return replace(self, batch_size=target)


#: The hyperparameters exactly as Table III reports them (learning rate,
#: batch size, epochs).  The paper's learning rates drive *their* training
#: framework; on this numpy substrate the equivalent schedule is Adam at
#: 1e-3 (see EXPERIMENTS.md), so these rows keep the paper's epoch/batch
#: structure while ``learning_rate``/``optimizer`` hold the tuned values
#: and ``paper_learning_rate`` records the published number.
PAPER_TABLE3 = {
    ("adult", "unary"): {"learning_rate": 0.2, "batch_size": 2048, "epochs": 25},
    ("adult", "binary"): {"learning_rate": 0.2, "batch_size": 2048, "epochs": 50},
    ("kdd_census", "unary"): {"learning_rate": 0.1, "batch_size": 2048, "epochs": 25},
    ("kdd_census", "binary"): {"learning_rate": 0.1, "batch_size": 2048, "epochs": 25},
    ("law_school", "unary"): {"learning_rate": 0.2, "batch_size": 2048, "epochs": 25},
    ("law_school", "binary"): {"learning_rate": 0.2, "batch_size": 2048, "epochs": 50},
}

#: Per-dataset loss-weight adjustments.  KDD's 32 one-hot blocks squeeze
#: through the same fixed Table II widths as Adult's 5, so data fidelity
#: needs a stronger proximity/sparsity pull and a longer reconstruction
#: warm-start there.
_DATASET_OVERRIDES = {
    "kdd_census": {"proximity_weight": 3.0, "sparsity_l0_weight": 0.2,
                   "warmstart_epochs": 30},
}

TABLE3_SETTINGS = {
    key: CFTrainingConfig(batch_size=row["batch_size"], epochs=row["epochs"],
                          **_DATASET_OVERRIDES.get(key[0], {}))
    for key, row in PAPER_TABLE3.items()
}


def paper_config(dataset, kind):
    """Return the Table III-derived configuration for ``(dataset, kind)``."""
    key = (dataset, kind)
    if key not in TABLE3_SETTINGS:
        raise KeyError(f"no Table III setting for {key!r}")
    return TABLE3_SETTINGS[key]


def fast_config(epochs=8, batch_size=256):
    """A small configuration for tests and quick examples."""
    return CFTrainingConfig(
        learning_rate=3e-3, batch_size=batch_size, epochs=epochs,
        warmstart_epochs=8)


#: Default in-objective term weights, tuned on the smoke workload so the
#: density/causal pull reshapes the decoder without drowning the validity
#: hinge (see docs/performance.md for the candidates-per-valid-CF table).
DEFAULT_INLOSS_DENSITY_WEIGHT = 0.2
DEFAULT_INLOSS_CAUSAL_WEIGHT = 2.0


def inloss_config(base, density_weight=None, causal_weight=None,
                  loss_density=None, loss_causal=None):
    """Return ``base`` with the six-part in-objective terms switched on.

    ``density_weight``/``causal_weight`` default to the tuned module
    constants; pass ``0.0`` explicitly to disable one of the terms.
    ``loss_density``/``loss_causal`` optionally replace the nested
    surrogate configs.
    """
    updates = {
        "density_weight_inloss": DEFAULT_INLOSS_DENSITY_WEIGHT
        if density_weight is None else float(density_weight),
        "causal_weight_inloss": DEFAULT_INLOSS_CAUSAL_WEIGHT
        if causal_weight is None else float(causal_weight),
    }
    if loss_density is not None:
        updates["loss_density"] = loss_density
    if loss_causal is not None:
        updates["loss_causal"] = loss_causal
    return replace(base, **updates)

"""The paper's four-part counterfactual loss (Eq. 3 + Section III-C).

``total = validity (hinge) + proximity (L1) + feasibility (constraint
penalties) + sparsity (L0/L1 on the feature delta)``, plus the VAE's KL
regulariser.  Each term is weighted by the training config and reported
separately so experiments can inspect the trade-offs.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor, gaussian_kl, hinge_loss

__all__ = ["sparsity_penalty", "FourPartLoss"]


def sparsity_penalty(delta, l1_weight, l0_weight, tau):
    """Differentiable ``g(x' - x)`` sparsity term.

    Both pieces are *per-row sums averaged over the batch*, so their scale
    is independent of the encoded width: ``l1_weight`` scales the summed
    absolute delta, ``l0_weight`` scales a smooth L0 surrogate
    ``sum(1 - exp(-|delta| / tau))`` that approximates the number of
    changed features (``tau`` controls how sharply "changed" saturates).
    """
    delta = as_tensor(delta)
    absolute = delta.abs()
    term = Tensor(0.0)
    if l1_weight:
        term = term + absolute.sum(axis=1).mean() * l1_weight
    if l0_weight:
        soft_l0 = 1.0 - (absolute * (-1.0 / tau)).exp()
        term = term + soft_l0.sum(axis=1).mean() * l0_weight
    return term


class FourPartLoss:
    """Callable bundling the four loss components against a frozen classifier.

    Parameters
    ----------
    blackbox:
        Trained :class:`repro.models.BlackBoxClassifier`; its parameters
        receive no updates, only gradients *through* it reach the
        counterfactual.
    constraints:
        :class:`repro.constraints.ConstraintSet` providing the
        feasibility penalty.
    config:
        :class:`repro.core.config.CFTrainingConfig` with the term weights.
    """

    def __init__(self, blackbox, constraints, config):
        self.blackbox = blackbox
        self.constraints = constraints
        self.config = config
        # Freeze the classifier: gradients flow through, never into, it.
        for parameter in blackbox.parameters():
            parameter.requires_grad = False

    def __call__(self, x, x_cf, desired, mu=None, log_var=None):
        """Compute the weighted total and the individual parts.

        Parameters
        ----------
        x:
            Original encoded inputs (ndarray).
        x_cf:
            Generated counterfactuals (Tensor in the training graph).
        desired:
            0/1 array of desired classes per row.
        mu, log_var:
            Optional VAE posterior stats for the KL term.

        Returns
        -------
        (total, parts):
            ``total`` is the weighted scalar Tensor; ``parts`` maps each
            component name to its unweighted float value.
        """
        x = np.asarray(x)
        x_cf = as_tensor(x_cf)
        cfg = self.config

        logits = self.blackbox.forward(x_cf)
        validity = hinge_loss(logits, desired, margin=cfg.hinge_margin)
        # per-row distance (summed over columns, averaged over the batch)
        # so the proximity pressure does not shrink with encoded width.
        # Our method uses L1 (Eq. 3); Mahajan et al.'s ELBO-style objective
        # corresponds to the squared (l2) variant, which tolerates many
        # small drifts and is what costs it sparsity in Table IV.
        difference = x_cf - Tensor(x)
        if cfg.proximity_metric == "l2":
            proximity = (difference ** 2).sum(axis=1).mean()
        else:
            proximity = difference.abs().sum(axis=1).mean()
        feasibility = self.constraints.penalty(x, x_cf)
        sparsity = sparsity_penalty(
            x_cf - Tensor(x), cfg.sparsity_l1_weight, cfg.sparsity_l0_weight,
            cfg.sparsity_l0_tau)

        total = (validity * cfg.validity_weight
                 + proximity * cfg.proximity_weight
                 + feasibility * cfg.feasibility_weight
                 + sparsity)
        parts = {
            "validity": validity.item(),
            "proximity": proximity.item(),
            "feasibility": feasibility.item(),
            "sparsity": sparsity.item(),
        }
        if mu is not None and log_var is not None and cfg.kl_weight:
            kl = gaussian_kl(mu, log_var)
            total = total + kl * cfg.kl_weight
            parts["kl"] = kl.item()
        parts["total"] = total.item()
        return total, parts

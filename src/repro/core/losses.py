"""The paper's counterfactual loss (Eq. 3 + Section III-C), extensible to six parts.

``total = validity (hinge) + proximity (L1) + feasibility (constraint
penalties) + sparsity (L0/L1 on the feature delta)``, plus the VAE's KL
regulariser.  When the config sets ``density_weight_inloss`` /
``causal_weight_inloss`` and a fitted surrogate is attached, two more
differentiable terms join the objective: a density pull toward the
reference population (:mod:`repro.density.differentiable`) and a causal
residual penalty built from the structural equations
(:mod:`repro.causal.differentiable`).  Each term is weighted by the
training config and reported separately so experiments can inspect the
trade-offs.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor, gaussian_kl, hinge_loss

__all__ = ["sparsity_penalty", "FourPartLoss"]


def sparsity_penalty(delta, l1_weight, l0_weight, tau):
    """Differentiable ``g(x' - x)`` sparsity term.

    Both pieces are *per-row sums averaged over the batch*, so their scale
    is independent of the encoded width: ``l1_weight`` scales the summed
    absolute delta, ``l0_weight`` scales a smooth L0 surrogate
    ``sum(1 - exp(-|delta| / tau))`` that approximates the number of
    changed features (``tau`` controls how sharply "changed" saturates).
    """
    delta = as_tensor(delta)
    absolute = delta.abs()
    term = Tensor(0.0)
    if l1_weight:
        term = term + absolute.sum(axis=1).mean() * l1_weight
    if l0_weight:
        soft_l0 = 1.0 - (absolute * (-1.0 / tau)).exp()
        term = term + soft_l0.sum(axis=1).mean() * l0_weight
    return term


class FourPartLoss:
    """Callable bundling the loss components against a frozen classifier.

    Historically four parts (validity, proximity, feasibility, sparsity);
    with in-loss surrogates attached and their config weights non-zero it
    grows to six.  The four-part path is bit-identical whenever both
    in-loss weights are zero, regardless of attached surrogates.

    Parameters
    ----------
    blackbox:
        Trained :class:`repro.models.BlackBoxClassifier`; its parameters
        receive no updates, only gradients *through* it reach the
        counterfactual.  Construction freezes it non-destructively:
        :meth:`release` restores the prior ``requires_grad`` flags so the
        same instance stays retrainable (rollover, ensembling).
    constraints:
        :class:`repro.constraints.ConstraintSet` providing the
        feasibility penalty.
    config:
        :class:`repro.core.config.CFTrainingConfig` with the term weights.
    density_model:
        Optional fitted in-loss density surrogate exposing
        ``penalty(x_cf, desired) -> Tensor`` (see
        :mod:`repro.density.differentiable`).
    causal_model:
        Optional fitted in-loss causal surrogate exposing
        ``penalty(x, x_cf) -> Tensor`` (see
        :mod:`repro.causal.differentiable`).
    """

    def __init__(self, blackbox, constraints, config, density_model=None,
                 causal_model=None):
        self.blackbox = blackbox
        self.constraints = constraints
        self.config = config
        self.density_model = density_model
        self.causal_model = causal_model
        self._prior_flags = None
        # Freeze the classifier: gradients flow through, never into, it.
        self.freeze()

    # -- blackbox freeze lifecycle ------------------------------------
    def freeze(self):
        """Switch the blackbox's ``requires_grad`` flags off, remembering
        the prior values.

        Idempotent: calling twice does not overwrite the recorded flags,
        so ``freeze(); freeze(); release()`` still restores the original
        state.  The freeze must span the whole forward *and* backward of
        a training step — the autograd checks ``requires_grad`` at
        backward time, so releasing early would leak gradients into the
        classifier.
        """
        if self._prior_flags is None:
            self._prior_flags = [
                (tensor, tensor.requires_grad)
                for _, tensor in self.blackbox.named_parameters(include_frozen=True)
            ]
        for tensor, _ in self._prior_flags:
            tensor.requires_grad = False
        return self

    def release(self):
        """Restore the ``requires_grad`` flags recorded by :meth:`freeze`.

        After release the blackbox is trainable again — a later
        ``train_classifier`` (e.g. a serving rollover retrain) sees its
        parameters.  No-op if the loss never froze anything.
        """
        if self._prior_flags is None:
            return self
        for tensor, flag in self._prior_flags:
            tensor.requires_grad = flag
        self._prior_flags = None
        return self

    def __call__(self, x, x_cf, desired, mu=None, log_var=None):
        """Compute the weighted total and the individual parts.

        Parameters
        ----------
        x:
            Original encoded inputs (ndarray).
        x_cf:
            Generated counterfactuals (Tensor in the training graph).
        desired:
            0/1 array of desired classes per row.
        mu, log_var:
            Optional VAE posterior stats for the KL term.

        Returns
        -------
        (total, parts):
            ``total`` is the weighted scalar Tensor; ``parts`` maps each
            component name to its unweighted float value.
        """
        x = np.asarray(x)
        x_cf = as_tensor(x_cf)
        cfg = self.config

        logits = self.blackbox.forward(x_cf)
        validity = hinge_loss(logits, desired, margin=cfg.hinge_margin)
        # per-row distance (summed over columns, averaged over the batch)
        # so the proximity pressure does not shrink with encoded width.
        # Our method uses L1 (Eq. 3); Mahajan et al.'s ELBO-style objective
        # corresponds to the squared (l2) variant, which tolerates many
        # small drifts and is what costs it sparsity in Table IV.
        difference = x_cf - Tensor(x)
        if cfg.proximity_metric == "l2":
            proximity = (difference ** 2).sum(axis=1).mean()
        else:
            proximity = difference.abs().sum(axis=1).mean()
        feasibility = self.constraints.penalty(x, x_cf)
        sparsity = sparsity_penalty(
            difference, cfg.sparsity_l1_weight, cfg.sparsity_l0_weight,
            cfg.sparsity_l0_tau)

        total = (validity * cfg.validity_weight
                 + proximity * cfg.proximity_weight
                 + feasibility * cfg.feasibility_weight
                 + sparsity)
        parts = {
            "validity": validity.item(),
            "proximity": proximity.item(),
            "feasibility": feasibility.item(),
            "sparsity": sparsity.item(),
        }
        if cfg.density_weight_inloss and self.density_model is not None:
            density = self.density_model.penalty(x_cf, desired)
            total = total + density * cfg.density_weight_inloss
            parts["density"] = density.item()
        if cfg.causal_weight_inloss and self.causal_model is not None:
            causal = self.causal_model.penalty(x, x_cf)
            total = total + causal * cfg.causal_weight_inloss
            parts["causal"] = causal.item()
        if mu is not None and log_var is not None and cfg.kl_weight:
            kl = gaussian_kl(mu, log_var)
            total = total + kl * cfg.kl_weight
            parts["kl"] = kl.item()
        parts["total"] = total.item()
        return total, parts

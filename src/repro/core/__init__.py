"""The paper's contribution: feasibility-aware counterfactual generation.

Four-part loss (Eq. 3 + constraints + sparsity, extensible to six parts
with in-objective density/causal terms), the CF-VAE training loop
(Figure 4) and the :class:`FeasibleCFExplainer` public API.
"""

from .config import (
    CFTrainingConfig,
    CausalLossConfig,
    DEFAULT_INLOSS_CAUSAL_WEIGHT,
    DEFAULT_INLOSS_DENSITY_WEIGHT,
    DensityLossConfig,
    PAPER_TABLE3,
    TABLE3_SETTINGS,
    fast_config,
    inloss_config,
    paper_config,
)
from .explainer import FeasibleCFExplainer
from .generator import CFVAEGenerator
from .losses import FourPartLoss, sparsity_penalty
from .result import CFBatchResult
from .selection import CandidateSet, DensityCFSelector, generate_candidates

__all__ = [
    "CFTrainingConfig", "paper_config", "TABLE3_SETTINGS", "PAPER_TABLE3", "fast_config",
    "DensityLossConfig", "CausalLossConfig", "inloss_config",
    "DEFAULT_INLOSS_DENSITY_WEIGHT", "DEFAULT_INLOSS_CAUSAL_WEIGHT",
    "FourPartLoss", "sparsity_penalty",
    "CFVAEGenerator", "CFBatchResult", "FeasibleCFExplainer",
    "CandidateSet", "DensityCFSelector", "generate_candidates",
]

"""The paper's contribution: feasibility-aware counterfactual generation.

Four-part loss (Eq. 3 + constraints + sparsity), the CF-VAE training
loop (Figure 4) and the :class:`FeasibleCFExplainer` public API.
"""

from .config import CFTrainingConfig, PAPER_TABLE3, TABLE3_SETTINGS, fast_config, paper_config
from .explainer import FeasibleCFExplainer
from .generator import CFVAEGenerator
from .losses import FourPartLoss, sparsity_penalty
from .result import CFBatchResult
from .selection import CandidateSet, DensityCFSelector, generate_candidates

__all__ = [
    "CFTrainingConfig", "paper_config", "TABLE3_SETTINGS", "PAPER_TABLE3", "fast_config",
    "FourPartLoss", "sparsity_penalty",
    "CFVAEGenerator", "CFBatchResult", "FeasibleCFExplainer",
    "CandidateSet", "DensityCFSelector", "generate_candidates",
]

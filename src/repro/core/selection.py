"""Density-aware counterfactual selection (the paper's Figure 3).

The paper's third theme — *density* — argues that among several feasible
counterfactuals one should pick an example that is (a) close to the
input and (b) inside a dense region of other feasible examples, rejecting
both infeasible candidates and feasible outliers ("a much more demanding
way of getting the loan").

This module makes that story executable:

* :func:`generate_candidates` draws a diverse candidate set per input by
  perturbing the CF-VAE's latent code (the mechanism of Section III-C).
* :class:`DensityCFSelector` scores each candidate by proximity and by
  the local density of feasible examples around it (mean k-NN distance
  to a feasible reference population), then picks the best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..utils.validation import check_2d, check_positive

__all__ = ["CandidateSet", "generate_candidates", "DensityCFSelector",
           "candidate_noise_defaults", "perturb_latents"]


def candidate_noise_defaults(explainer, noise_scale=None, rng=None):
    """Shared latent-noise defaults for candidate sweeps.

    One definition of the diversity stream — the ``seed + 500`` rng and
    the ``max(latent_noise, 0.05)`` floor — used by both
    :func:`generate_candidates` and the engine's diverse
    ``CoreCFStrategy`` so the two can never drift apart.
    """
    rng = rng or np.random.default_rng(explainer.seed + 500)
    if noise_scale is None:
        noise_scale = max(explainer.generator.config.latent_noise, 0.05)
    return noise_scale, rng


def perturb_latents(mu, n_candidates, noise_scale, rng):
    """Perturbed latent grid: per row, candidate 0 is the zero-noise decode.

    Noise for every row is drawn in a single generator call in row-major
    order, so the grid is identical to sampling each row sequentially.
    Returns the ``(n_rows * n_candidates, latent_dim)`` stack in
    ``np.repeat`` order.
    """
    n_rows, latent_dim = mu.shape
    noise = rng.normal(0.0, noise_scale, size=(n_rows, n_candidates, latent_dim))
    noise[:, 0, :] = 0.0  # always include the deterministic candidate
    return (mu[:, None, :] + noise).reshape(n_rows * n_candidates, latent_dim)


@dataclass
class CandidateSet:
    """Candidate counterfactuals for a single input row.

    Attributes
    ----------
    x:
        The input row, shape (d,).
    candidates:
        Candidate counterfactuals, shape (n, d).
    valid:
        Black-box reaches the desired class, per candidate.
    feasible:
        Causal constraints satisfied, per candidate.
    """

    x: np.ndarray
    candidates: np.ndarray
    valid: np.ndarray
    feasible: np.ndarray

    def __len__(self):
        return len(self.candidates)

    @property
    def usable_mask(self):
        """Valid AND feasible candidates (the paper's acceptance set)."""
        return self.valid & self.feasible


def generate_candidates(explainer, x, n_candidates=20, noise_scale=None,
                        desired=None, rng=None):
    """Draw diverse counterfactual candidates via latent perturbation.

    For each row of ``x`` the trained generator is sampled
    ``n_candidates`` times with Gaussian latent noise — the "perturbed
    the output of the encoder" step of Section III-C used as a diversity
    mechanism.  Returns a list of :class:`CandidateSet`, one per row.

    Fully vectorized: all ``n_rows * n_candidates`` latents decode in one
    batched pass through the graph-free VAE path, followed by ONE
    black-box validity call and ONE fused feasibility pass through the
    compiled constraint kernel.  Immutable projection and feasibility
    both evaluate *tiled* — input-side terms broadcast over the
    candidates — so the repeated input matrix is never materialised.
    The noise for every row is drawn in a single generator call in
    row-major order, so the output is identical to sampling each row
    sequentially (``_generate_candidates_loop``, the per-row reference
    kept for the parity test in
    ``tests/core/test_selection_vectorized.py``).
    """
    x, n_candidates, rng, noise_scale, desired = _candidate_args(
        explainer, x, n_candidates, noise_scale, desired, rng)
    generator = explainer.generator
    vae = generator.vae
    vae.eval()
    mu, _ = vae.encode_array(x, desired)

    n_rows = len(mu)
    z = perturb_latents(mu, n_candidates, noise_scale, rng)
    labels = np.repeat(np.asarray(desired, dtype=np.float64), n_candidates)
    decoded = vae.decode_latent(z, labels)
    decoded = generator.projector.project(
        x, decoded.reshape(n_rows, n_candidates, -1)).reshape(len(z), -1)

    valid = explainer.blackbox.predict(decoded) == np.repeat(desired, n_candidates)
    feasible = _feasibility_kernel(explainer).satisfied(x, decoded)

    sets = []
    for i in range(n_rows):
        rows = slice(i * n_candidates, (i + 1) * n_candidates)
        sets.append(CandidateSet(
            x=x[i],
            candidates=decoded[rows],
            valid=valid[rows],
            feasible=feasible[rows],
        ))
    return sets


def _feasibility_kernel(explainer):
    """The explainer's compiled constraint kernel (compiled once, cached)."""
    kernel = getattr(explainer, "compiled_constraints", None)
    if kernel is None:
        kernel = explainer.constraints.compile()
    return kernel


def _candidate_args(explainer, x, n_candidates, noise_scale, desired, rng):
    """Shared validation/defaults for the vectorized and loop generators."""
    if explainer.generator is None:
        raise RuntimeError("explainer is not fitted; call fit() first")
    x = check_2d(x, "x")
    if n_candidates < 1:
        raise ValueError(f"n_candidates must be >= 1, got {n_candidates}")
    noise_scale, rng = candidate_noise_defaults(explainer, noise_scale, rng)
    if desired is None:
        desired = 1 - explainer.blackbox.predict(x)
    return x, n_candidates, rng, noise_scale, desired


def _generate_candidates_loop(explainer, x, n_candidates=20, noise_scale=None,
                              desired=None, rng=None):
    """Per-row reference implementation of :func:`generate_candidates`.

    This is the original (pre-vectorization) loop, kept as the ground
    truth the batched path must reproduce exactly: same rng consumption
    order, same per-row decode/validity/feasibility semantics.  Only the
    parity tests should call it.
    """
    x, n_candidates, rng, noise_scale, desired = _candidate_args(
        explainer, x, n_candidates, noise_scale, desired, rng)
    generator = explainer.generator
    vae = generator.vae
    vae.eval()
    mu, _ = vae.encode_array(x, desired)

    sets = []
    for i in range(len(x)):
        noise = rng.normal(0.0, noise_scale,
                           size=(n_candidates, mu.shape[1]))
        noise[0] = 0.0
        z = mu[i][None, :] + noise
        labels = np.full(n_candidates, desired[i], dtype=np.float64)
        decoded = vae.decode_latent(z, labels)
        inputs = np.repeat(x[i][None, :], n_candidates, axis=0)
        decoded = generator.projector.project(inputs, decoded)
        sets.append(CandidateSet(
            x=x[i],
            candidates=decoded,
            valid=explainer.blackbox.predict(decoded) == desired[i],
            feasible=explainer.constraints.satisfied(inputs, decoded),
        ))
    return sets


class DensityCFSelector:
    """Pick counterfactuals that are close *and* in dense feasible regions.

    Parameters
    ----------
    explainer:
        A fitted :class:`repro.core.FeasibleCFExplainer`.
    density_weight:
        Trade-off ``lambda`` between proximity and density: the score of a
        candidate ``c`` for input ``x`` is
        ``-||c - x||_1 - lambda * meanknn(c)`` where ``meanknn`` is the
        mean distance to the k nearest feasible reference examples.
    k_neighbors:
        Number of reference neighbours in the density estimate.
    """

    def __init__(self, explainer, density_weight=1.0, k_neighbors=10):
        self.explainer = explainer
        self.density_weight = check_positive(density_weight, "density_weight")
        self.k_neighbors = int(k_neighbors)
        self._tree = None
        self._reference = None

    def fit_reference(self, x_reference, desired=None):
        """Build the feasible-example reference population.

        Generates counterfactuals for ``x_reference``, keeps the valid &
        feasible ones and indexes them for k-NN density queries.
        Returns ``self``.
        """
        x_reference = check_2d(x_reference, "x_reference")
        result = self.explainer.explain(x_reference, desired)
        keep = result.valid & result.feasible
        if keep.sum() < self.k_neighbors:
            raise ValueError(
                f"only {int(keep.sum())} feasible reference examples; "
                f"need at least k_neighbors={self.k_neighbors}")
        self._reference = result.x_cf[keep]
        self._tree = cKDTree(self._reference)
        return self

    @property
    def n_reference(self):
        """Size of the feasible reference population."""
        return 0 if self._reference is None else len(self._reference)

    def density_score(self, candidates):
        """Mean distance to the k nearest feasible references (lower = denser)."""
        if self._tree is None:
            raise RuntimeError("selector has no reference; call fit_reference()")
        candidates = check_2d(candidates, "candidates")
        k = min(self.k_neighbors, len(self._reference))
        distances, _ = self._tree.query(candidates, k=k)
        if k == 1:
            return distances
        return distances.mean(axis=1)

    @staticmethod
    def _standardize(values):
        spread = values.std()
        if spread < 1e-12:
            return np.zeros_like(values)
        return (values - values.mean()) / spread

    def score(self, candidate_set):
        """Combined score per candidate (higher is better).

        Proximity and region-sparsity are standardised within the
        candidate set so ``density_weight`` is a genuine trade-off knob
        rather than a unit conversion.
        """
        proximity = np.abs(
            candidate_set.candidates - candidate_set.x[None, :]).sum(axis=1)
        sparsity_of_region = self.density_score(candidate_set.candidates)
        return (-self._standardize(proximity)
                - self.density_weight * self._standardize(sparsity_of_region))

    def select(self, candidate_set):
        """Choose the best candidate index per the Figure 3 policy.

        Preference order: valid & feasible candidates; then valid-only;
        then any.  Within the preferred pool the combined
        proximity+density score decides.
        """
        scores = self.score(candidate_set)
        for mask in (candidate_set.usable_mask, candidate_set.valid,
                     np.ones(len(candidate_set), dtype=bool)):
            if mask.any():
                pool = np.flatnonzero(mask)
                return int(pool[np.argmax(scores[pool])])
        raise RuntimeError("empty candidate set")  # pragma: no cover

    def explain(self, x, n_candidates=20, desired=None, rng=None):
        """Full density-aware explanation for a batch.

        Returns ``(x_cf, diagnostics)`` where ``x_cf`` stacks the selected
        counterfactual per row and ``diagnostics`` is a list of dicts with
        the chosen index, candidate counts and score.
        """
        candidate_sets = generate_candidates(
            self.explainer, x, n_candidates=n_candidates, desired=desired,
            rng=rng)
        chosen = []
        diagnostics = []
        for candidate_set in candidate_sets:
            index = self.select(candidate_set)
            chosen.append(candidate_set.candidates[index])
            diagnostics.append({
                "chosen": index,
                "n_usable": int(candidate_set.usable_mask.sum()),
                "n_valid": int(candidate_set.valid.sum()),
                "score": float(self.score(candidate_set)[index]),
            })
        return np.array(chosen), diagnostics

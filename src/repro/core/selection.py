"""Density-aware counterfactual selection (the paper's Figure 3).

The paper's third theme — *density* — argues that among several feasible
counterfactuals one should pick an example that is (a) close to the
input and (b) inside a dense region of other feasible examples, rejecting
both infeasible candidates and feasible outliers ("a much more demanding
way of getting the loan").

This module makes that story executable:

* :func:`generate_candidates` draws a diverse candidate set per input by
  perturbing the CF-VAE's latent code (the mechanism of Section III-C).
* :class:`DensityCFSelector` scores each candidate by proximity and by
  the local density of feasible examples around it (mean k-NN distance
  to a feasible reference population), then picks the best.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..density import KnnDensity
from ..utils.validation import check_2d, check_encoded_rows, check_positive

__all__ = ["CandidateSet", "generate_candidates", "DensityCFSelector",
           "candidate_noise_defaults", "perturb_latents",
           "standardize_rows", "argmax_by_pools"]


def candidate_noise_defaults(explainer, noise_scale=None, rng=None):
    """Shared latent-noise defaults for candidate sweeps.

    One definition of the diversity stream — the ``seed + 500`` rng and
    the ``max(latent_noise, 0.05)`` floor — used by both
    :func:`generate_candidates` and the engine's diverse
    ``CoreCFStrategy`` so the two can never drift apart.
    """
    rng = rng or np.random.default_rng(explainer.seed + 500)
    if noise_scale is None:
        noise_scale = max(explainer.generator.config.latent_noise, 0.05)
    return noise_scale, rng


def perturb_latents(mu, n_candidates, noise_scale, rng):
    """Perturbed latent grid: per row, candidate 0 is the zero-noise decode.

    Noise for every row is drawn in a single generator call in row-major
    order, so the grid is identical to sampling each row sequentially.
    Returns the ``(n_rows * n_candidates, latent_dim)`` stack in
    ``np.repeat`` order.
    """
    n_rows, latent_dim = mu.shape
    noise = rng.normal(0.0, noise_scale, size=(n_rows, n_candidates, latent_dim))
    noise[:, 0, :] = 0.0  # always include the deterministic candidate
    return (mu[:, None, :] + noise).reshape(n_rows * n_candidates, latent_dim)


@dataclass
class CandidateSet:
    """Candidate counterfactuals for a single input row.

    Attributes
    ----------
    x:
        The input row, shape (d,).
    candidates:
        Candidate counterfactuals, shape (n, d).
    valid:
        Black-box reaches the desired class, per candidate.
    feasible:
        Causal constraints satisfied, per candidate.
    """

    x: np.ndarray
    candidates: np.ndarray
    valid: np.ndarray
    feasible: np.ndarray

    def __len__(self):
        return len(self.candidates)

    @property
    def usable_mask(self):
        """Valid AND feasible candidates (the paper's acceptance set)."""
        return self.valid & self.feasible


def generate_candidates(explainer, x, n_candidates=20, noise_scale=None,
                        desired=None, rng=None):
    """Draw diverse counterfactual candidates via latent perturbation.

    For each row of ``x`` the trained generator is sampled
    ``n_candidates`` times with Gaussian latent noise — the "perturbed
    the output of the encoder" step of Section III-C used as a diversity
    mechanism.  Returns a list of :class:`CandidateSet`, one per row.

    Fully vectorized: all ``n_rows * n_candidates`` latents decode in one
    batched pass through the graph-free VAE path, followed by ONE
    black-box validity call and ONE fused feasibility pass through the
    compiled constraint kernel.  Immutable projection and feasibility
    both evaluate *tiled* — input-side terms broadcast over the
    candidates — so the repeated input matrix is never materialised.
    The noise for every row is drawn in a single generator call in
    row-major order, so the output is identical to sampling each row
    sequentially (``_generate_candidates_loop``, the per-row reference
    kept for the parity test in
    ``tests/core/test_selection_vectorized.py``).
    """
    x, n_candidates, rng, noise_scale, desired = _candidate_args(
        explainer, x, n_candidates, noise_scale, desired, rng)
    generator = explainer.generator
    vae = generator.vae
    vae.eval()
    mu, _ = vae.encode_array(x, desired)

    n_rows = len(mu)
    z = perturb_latents(mu, n_candidates, noise_scale, rng)
    labels = np.repeat(np.asarray(desired, dtype=np.float64), n_candidates)
    decoded = vae.decode_latent(z, labels)
    decoded = generator.projector.project(
        x, decoded.reshape(n_rows, n_candidates, -1)).reshape(len(z), -1)

    valid = explainer.blackbox.predict(decoded) == np.repeat(desired, n_candidates)
    feasible = _feasibility_kernel(explainer).satisfied(x, decoded)

    sets = []
    for i in range(n_rows):
        rows = slice(i * n_candidates, (i + 1) * n_candidates)
        sets.append(CandidateSet(
            x=x[i],
            candidates=decoded[rows],
            valid=valid[rows],
            feasible=feasible[rows],
        ))
    return sets


def _feasibility_kernel(explainer):
    """The explainer's compiled constraint kernel (compiled once, cached)."""
    kernel = getattr(explainer, "compiled_constraints", None)
    if kernel is None:
        kernel = explainer.constraints.compile()
    return kernel


def _candidate_args(explainer, x, n_candidates, noise_scale, desired, rng):
    """Shared validation/defaults for the vectorized and loop generators."""
    if explainer.generator is None:
        raise RuntimeError("explainer is not fitted; call fit() first")
    x = check_2d(x, "x")
    if n_candidates < 1:
        raise ValueError(f"n_candidates must be >= 1, got {n_candidates}")
    noise_scale, rng = candidate_noise_defaults(explainer, noise_scale, rng)
    if desired is None:
        desired = 1 - explainer.blackbox.predict(x)
    return x, n_candidates, rng, noise_scale, desired


def _generate_candidates_loop(explainer, x, n_candidates=20, noise_scale=None,
                              desired=None, rng=None):
    """Per-row reference implementation of :func:`generate_candidates`.

    This is the original (pre-vectorization) loop, kept as the ground
    truth the batched path must reproduce exactly: same rng consumption
    order, same per-row decode/validity/feasibility semantics.  Only the
    parity tests should call it.
    """
    x, n_candidates, rng, noise_scale, desired = _candidate_args(
        explainer, x, n_candidates, noise_scale, desired, rng)
    generator = explainer.generator
    vae = generator.vae
    vae.eval()
    mu, _ = vae.encode_array(x, desired)

    sets = []
    for i in range(len(x)):
        noise = rng.normal(0.0, noise_scale,
                           size=(n_candidates, mu.shape[1]))
        noise[0] = 0.0
        z = mu[i][None, :] + noise
        labels = np.full(n_candidates, desired[i], dtype=np.float64)
        decoded = vae.decode_latent(z, labels)
        inputs = np.repeat(x[i][None, :], n_candidates, axis=0)
        decoded = generator.projector.project(inputs, decoded)
        sets.append(CandidateSet(
            x=x[i],
            candidates=decoded,
            valid=explainer.blackbox.predict(decoded) == desired[i],
            feasible=explainer.constraints.satisfied(inputs, decoded),
        ))
    return sets


def standardize_rows(values):
    """Row-wise :meth:`DensityCFSelector._standardize`: zero near-constant rows.

    Each row of ``values`` is standardised independently with exactly the
    per-candidate-set math of the scalar helper, so the batched selection
    path reproduces the per-row loop bit for bit.
    """
    mean = values.mean(axis=1, keepdims=True)
    spread = values.std(axis=1, keepdims=True)
    degenerate = spread < 1e-12
    return np.where(degenerate, 0.0, (values - mean) / np.where(degenerate, 1.0, spread))


def argmax_by_pools(scores, pools):
    """Per-row argmax of ``scores`` under a preference-ordered pool cascade.

    ``pools`` is an iterable of ``(n, m)`` boolean masks in preference
    order; each row picks the highest-scoring candidate inside its first
    non-empty pool (an all-ones fallback pool is appended).  Equivalent
    to ``pool[np.argmax(scores[pool])]`` applied row by row — including
    the first-occurrence tie-break.
    """
    n = len(scores)
    chosen = np.zeros(n, dtype=int)
    remaining = np.ones(n, dtype=bool)
    for pool in (*pools, np.ones(scores.shape, dtype=bool)):
        hit = remaining & pool.any(axis=1)
        if hit.any():
            masked = np.where(pool[hit], scores[hit], -np.inf)
            chosen[hit] = np.argmax(masked, axis=1)
            remaining &= ~hit
    return chosen


class DensityCFSelector:
    """Pick counterfactuals that are close *and* in dense feasible regions.

    Parameters
    ----------
    explainer:
        A fitted :class:`repro.core.FeasibleCFExplainer`.
    density_weight:
        Trade-off ``lambda`` between proximity and density: the score of a
        candidate ``c`` for input ``x`` is
        ``-||c - x||_1 - lambda * density(c)`` where ``density`` is the
        estimator's region-sparsity cost (mean feasible-reference k-NN
        distance by default).
    k_neighbors:
        Number of reference neighbours in the default k-NN estimate.
    density_model:
        Optional :class:`repro.density.DensityModel` to score with
        (fitted by :meth:`fit_reference` on the feasible reference
        population).  Defaults to :class:`repro.density.KnnDensity`,
        which reproduces the historical selector bit for bit.
    """

    def __init__(self, explainer, density_weight=1.0, k_neighbors=10,
                 density_model=None):
        self.explainer = explainer
        self.density_weight = check_positive(density_weight, "density_weight")
        self.k_neighbors = int(k_neighbors)
        self.density_model = density_model

    def fit_reference(self, x_reference, desired=None):
        """Build the feasible-example reference population.

        Generates counterfactuals for ``x_reference``, keeps the valid &
        feasible ones and fits the density estimator on them.  A
        population smaller than ``k_neighbors`` degrades gracefully (the
        k-NN estimator clamps k at query time) with a warning; an empty
        one raises.  Wrong-width reference rows raise
        :class:`repro.utils.validation.SchemaMismatchError` before any
        generation runs.  Returns ``self``.
        """
        x_reference = check_encoded_rows(
            x_reference, self.explainer.encoder, "x_reference")
        result = self.explainer.explain(x_reference, desired)
        keep = result.valid & result.feasible
        n_keep = int(keep.sum())
        if n_keep == 0:
            raise ValueError(
                "no valid & feasible reference examples were generated; "
                "provide more reference rows or relax the constraints")
        if self.density_model is None:
            self.density_model = KnnDensity(k_neighbors=self.k_neighbors)
        # the clamping claim only holds for k-NN-backed estimators; a
        # KDE has no k and its scores are unaffected by the population
        # being small
        model_k = getattr(self.density_model, "k_neighbors", None)
        if model_k is not None and n_keep < model_k:
            warnings.warn(
                f"only {n_keep} feasible reference examples for "
                f"k_neighbors={model_k}; density scores will use "
                f"k={n_keep}", stacklevel=2)
        self.density_model.fit(result.x_cf[keep])
        return self

    @property
    def n_reference(self):
        """Size of the feasible reference population."""
        return 0 if self.density_model is None else self.density_model.n_reference

    @property
    def _reference(self):
        """The fitted reference matrix (None before ``fit_reference``)."""
        return getattr(self.density_model, "reference_", None)

    def density_score(self, candidates):
        """The estimator's region-sparsity cost (lower = denser)."""
        if self.n_reference == 0:
            raise RuntimeError("selector has no reference; call fit_reference()")
        candidates = check_2d(candidates, "candidates")
        return self.density_model.score(candidates)

    @staticmethod
    def _standardize(values):
        spread = values.std()
        if spread < 1e-12:
            return np.zeros_like(values)
        return (values - values.mean()) / spread

    def score(self, candidate_set):
        """Combined score per candidate (higher is better).

        Proximity and region-sparsity are standardised within the
        candidate set so ``density_weight`` is a genuine trade-off knob
        rather than a unit conversion.
        """
        proximity = np.abs(
            candidate_set.candidates - candidate_set.x[None, :]).sum(axis=1)
        sparsity_of_region = self.density_score(candidate_set.candidates)
        return (-self._standardize(proximity)
                - self.density_weight * self._standardize(sparsity_of_region))

    def select(self, candidate_set):
        """Choose the best candidate index per the Figure 3 policy.

        Preference order: valid & feasible candidates; then valid-only;
        then any.  Within the preferred pool the combined
        proximity+density score decides.
        """
        scores = self.score(candidate_set)
        for mask in (candidate_set.usable_mask, candidate_set.valid,
                     np.ones(len(candidate_set), dtype=bool)):
            if mask.any():
                pool = np.flatnonzero(mask)
                return int(pool[np.argmax(scores[pool])])
        raise RuntimeError("empty candidate set")  # pragma: no cover

    def select_batch(self, candidate_sets):
        """One-pass batched selection over pre-generated candidate sets.

        The whole batch is scored at once: one tiled density query over
        every candidate of every row
        (:meth:`repro.density.DensityModel.score_tiled`), one broadcast
        proximity computation, one row-standardised combined score reused
        for both selection and diagnostics.  Outputs are bit-identical to
        :meth:`_select_loop` (the historical per-row path, which also
        scored every candidate set twice); the perfbench ``density``
        section gates the speedup between the two.
        """
        if self.n_reference == 0:
            raise RuntimeError("selector has no reference; call fit_reference()")

        inputs = np.stack([cs.x for cs in candidate_sets])
        candidates = np.stack([cs.candidates for cs in candidate_sets])
        valid = np.stack([cs.valid for cs in candidate_sets])
        usable = np.stack([cs.usable_mask for cs in candidate_sets])

        proximity = np.abs(candidates - inputs[:, None, :]).sum(axis=2)
        sparsity_of_region = self.density_model.score_tiled(candidates)
        scores = (-standardize_rows(proximity)
                  - self.density_weight * standardize_rows(sparsity_of_region))
        chosen = argmax_by_pools(scores, (usable, valid))

        rows = np.arange(len(candidate_sets))
        x_cf = candidates[rows, chosen]
        diagnostics = [{
            "chosen": int(chosen[i]),
            "n_usable": int(usable[i].sum()),
            "n_valid": int(valid[i].sum()),
            "score": float(scores[i, chosen[i]]),
        } for i in rows]
        return x_cf, diagnostics

    def explain(self, x, n_candidates=20, desired=None, rng=None):
        """Full density-aware explanation for a batch, loop-free.

        Returns ``(x_cf, diagnostics)`` where ``x_cf`` stacks the selected
        counterfactual per row and ``diagnostics`` is a list of dicts with
        the chosen index, candidate counts and score.  Candidate
        generation is one vectorized sweep and selection is one batched
        score pass (:meth:`select_batch`).
        """
        candidate_sets = generate_candidates(
            self.explainer, x, n_candidates=n_candidates, desired=desired,
            rng=rng)
        return self.select_batch(candidate_sets)

    def _select_loop(self, candidate_sets):
        """Per-row reference for :meth:`select_batch`.

        The original (pre-density-layer) selection loop, kept as the
        ground truth the batched path must reproduce exactly — including
        its separate score pass per candidate set for the diagnostics
        (one in :meth:`select`, one for the reported score).  Only the
        parity tests and the perfbench should call it.
        """
        chosen = []
        diagnostics = []
        for candidate_set in candidate_sets:
            index = self.select(candidate_set)
            chosen.append(candidate_set.candidates[index])
            diagnostics.append({
                "chosen": index,
                "n_usable": int(candidate_set.usable_mask.sum()),
                "n_valid": int(candidate_set.valid.sum()),
                "score": float(self.score(candidate_set)[index]),
            })
        return np.array(chosen), diagnostics

    def _explain_loop(self, x, n_candidates=20, desired=None, rng=None):
        """Per-row reference implementation of :meth:`explain`."""
        candidate_sets = generate_candidates(
            self.explainer, x, n_candidates=n_candidates, desired=desired,
            rng=rng)
        return self._select_loop(candidate_sets)

"""Public API: :class:`FeasibleCFExplainer`.

Ties the whole pipeline together — black-box training, constraint
construction, CF-VAE training and counterfactual generation — behind the
interface the examples, experiments and benchmarks use:

.. code-block:: python

    bundle = load_dataset("adult", n_instances=5000)
    explainer = FeasibleCFExplainer(bundle.encoder, constraint_kind="unary")
    explainer.fit(*bundle.split("train"))
    result = explainer.explain(bundle.split("test")[0])
    print(result.validity_rate, result.feasibility_rate)
"""

from __future__ import annotations

import numpy as np

from ..constraints import ConstraintSet, ImmutableProjector, build_constraints
from ..models import BlackBoxClassifier, ConditionalVAE, train_classifier
from ..utils.validation import check_binary_labels, check_encoded_rows
from .config import CFTrainingConfig
from .generator import CFVAEGenerator

__all__ = ["FeasibleCFExplainer"]


class FeasibleCFExplainer:
    """Feasible counterfactual explanations with causality and sparsity.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder` describing the dataset.
    constraint_kind:
        ``"unary"`` (Eq. 1) or ``"binary"`` (Eq. 2) — which causal model
        to train, as in the paper's two model variants.  Alternatively
        pass ``constraints`` explicitly.
    constraints:
        Optional explicit :class:`repro.constraints.ConstraintSet`,
        overriding the catalog lookup.
    config:
        :class:`CFTrainingConfig`; defaults to the class defaults.
    blackbox:
        Optionally a pre-trained classifier to explain.  When omitted,
        :meth:`fit` trains the paper's two-linear-layer model first.
    seed:
        Single seed controlling model init, training and generation.
    """

    def __init__(self, encoder, constraint_kind="unary", constraints=None,
                 config=None, blackbox=None, seed=0):
        self.encoder = encoder
        self.config = config or CFTrainingConfig()
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

        if constraints is not None:
            self.constraints = constraints if isinstance(constraints, ConstraintSet) \
                else ConstraintSet(constraints)
            self.constraint_kind = "custom"
        else:
            self.constraints = build_constraints(encoder, constraint_kind)
            self.constraint_kind = constraint_kind

        self.blackbox = blackbox
        self.projector = ImmutableProjector(encoder)
        self.generator = None
        self._compiled = None
        self._runner = None

    @classmethod
    def from_trained(cls, encoder, blackbox, vae, constraint_kind="unary",
                     config=None, seed=0):
        """Assemble a ready-to-explain pipeline from trained components.

        The warm-start twin of ``__init__`` + :meth:`fit`: both models
        arrive already trained (e.g. restored from an artifact store), so
        no training pass runs.  The returned explainer produces outputs
        identical to the instance that trained the weights.
        """
        explainer = cls(encoder, constraint_kind=constraint_kind, config=config,
                        blackbox=blackbox, seed=seed)
        explainer.generator = CFVAEGenerator.from_trained(
            vae, blackbox, explainer.constraints, explainer.projector,
            explainer.config, rng=np.random.default_rng(explainer.seed + 4))
        return explainer

    def _check_rows(self, x, name):
        """2-D + schema-width validation against the training encoder."""
        return check_encoded_rows(x, self.encoder, name)

    # -- training -----------------------------------------------------------
    def fit(self, x_train, y_train, blackbox_epochs=30, balanced=True,
            verbose=False):
        """Train the pipeline: black-box (if needed), then the CF-VAE.

        Parameters
        ----------
        x_train:
            Encoded training matrix.
        y_train:
            0/1 labels for the black-box stage.
        blackbox_epochs:
            Epochs for the classifier stage (skipped when a pre-trained
            ``blackbox`` was supplied).
        balanced:
            Class-balance the classifier loss (recommended: the benchmark
            datasets are skewed toward the undesired class).
        """
        x_train = self._check_rows(x_train, "x_train")
        y_train = check_binary_labels(y_train, "y_train")

        if self.blackbox is None:
            self.blackbox = BlackBoxClassifier(
                self.encoder.n_encoded, np.random.default_rng(self.seed + 1))
            train_classifier(
                self.blackbox, x_train, y_train, epochs=blackbox_epochs,
                rng=np.random.default_rng(self.seed + 2), balanced=balanced,
                verbose=verbose)

        vae = ConditionalVAE(
            self.encoder.n_encoded, np.random.default_rng(self.seed + 3))
        self.generator = CFVAEGenerator(
            vae, self.blackbox, self.constraints, self.projector,
            self.config, rng=np.random.default_rng(self.seed + 4))
        if self.config.density_weight_inloss or self.config.causal_weight_inloss:
            self._prepare_inloss(x_train, y_train)
        self.generator.fit(x_train, verbose=verbose)
        return self

    def _prepare_inloss(self, x_train, y_train):
        """Fit the six-part loss surrogates before the CF-VAE stage.

        The density reference is the desired-class slice of the training
        rows (the region a counterfactual should land in — the same
        policy as ``fit_class_density``); the causal surrogate wraps the
        dataset's causal model named by ``config.loss_causal``.
        """
        cfg = self.config
        desired_class = int(self.encoder.schema.desired_class)
        reference = None
        if cfg.density_weight_inloss:
            reference = x_train[np.asarray(y_train) == desired_class]
            if len(reference) == 0:
                reference = x_train
        causal = None
        if cfg.causal_weight_inloss:
            from ..causal import fit_causal

            causal = fit_causal(cfg.loss_causal.kind, self.encoder, x_train, y_train)
        self.generator.prepare_inloss(
            reference=reference, causal=causal, desired_class=desired_class)

    @property
    def history(self):
        """Per-epoch averaged loss parts from the CF-VAE stage."""
        if self.generator is None:
            return []
        return self.generator.history

    # -- engine integration -----------------------------------------------------
    @property
    def compiled_constraints(self):
        """Compiled feasibility kernel over this explainer's constraint set.

        Compiled once and cached; bit-identical to the per-constraint
        loop (``self.constraints.satisfied``), which remains available as
        the parity reference.
        """
        if self._compiled is None:
            self._compiled = self.constraints.compile()
        return self._compiled

    def as_strategy(self, name=None, n_candidates=1, noise_scale=None, rng=None):
        """Expose this explainer through the engine's strategy API.

        With ``n_candidates=1`` the strategy proposes the deterministic
        decode :meth:`explain` uses; larger values propose a diverse
        latent-perturbation sweep for density-aware selection.
        """
        from ..engine import CoreCFStrategy

        return CoreCFStrategy(self, name=name, n_candidates=n_candidates,
                              noise_scale=noise_scale, rng=rng)

    def _engine_runner(self):
        """Cached :class:`repro.engine.EngineRunner` over this pipeline."""
        from ..engine import EngineRunner

        if self._runner is None or self._runner.blackbox is not self.blackbox:
            self._runner = EngineRunner(
                self.encoder, self.blackbox,
                constraints=self.compiled_constraints)
        return self._runner

    # -- explanation ------------------------------------------------------------
    def explain(self, x, desired=None):
        """Generate counterfactuals for encoded rows ``x``.

        Returns a :class:`CFBatchResult` with validity/feasibility flags
        computed against the black-box and the constraint set.  A thin
        adapter over the shared engine runner: projection, validity and
        the fused feasibility pass all happen in
        :meth:`repro.engine.EngineRunner.run`.
        """
        if self.generator is None:
            raise RuntimeError("explainer is not fitted; call fit() first")
        return self._engine_runner().run(self.as_strategy(), x, desired)

    def explain_frame(self, frame, desired=None):
        """Convenience wrapper: explain raw rows from a TabularFrame."""
        return self.explain(self.encoder.transform(frame), desired)

"""Training loop for the feasibility-aware counterfactual VAE.

Implements the architecture of Figure 4: inputs flow through the
conditional VAE (encoder -> perturbed latent -> decoder), immutable
attributes are frozen, and the four-part loss — validity through the
frozen black-box, proximity, causal-constraint feasibility and sparsity —
trains the generator to emit feasible counterfactuals directly.  With
``density_weight_inloss`` / ``causal_weight_inloss`` configured the
objective grows to six parts: :meth:`CFVAEGenerator.prepare_inloss`
hosts the fitted differentiable surrogates
(:mod:`repro.density.differentiable`, :mod:`repro.causal.differentiable`)
and attaches them to the loss for the duration of training.
"""

from __future__ import annotations

import numpy as np

from ..nn import SGD, Adam, Tensor
from ..utils.validation import check_2d
from .losses import FourPartLoss

__all__ = ["CFVAEGenerator"]


class CFVAEGenerator:
    """Feasible-counterfactual generator (the paper's model).

    Parameters
    ----------
    vae:
        :class:`repro.models.ConditionalVAE` (Table II architecture).
    blackbox:
        Trained :class:`repro.models.BlackBoxClassifier`.  Frozen for
        the duration of :meth:`fit` (and released afterwards, so the
        same instance stays retrainable).
    constraints:
        :class:`repro.constraints.ConstraintSet` — the unary or binary
        causal model.
    projector:
        :class:`repro.constraints.ImmutableProjector` freezing immutable
        attributes.
    config:
        :class:`repro.core.config.CFTrainingConfig`.
    rng:
        Generator for batching and latent perturbation noise.
    """

    def __init__(self, vae, blackbox, constraints, projector, config, rng=None):
        self.vae = vae
        self.blackbox = blackbox
        self.constraints = constraints
        self.projector = projector
        self.config = config
        self.rng = rng or np.random.default_rng(0)
        self.loss_fn = FourPartLoss(blackbox, constraints, config)
        self.history = []
        #: Per-epoch histories of *earlier* :meth:`fit` calls, oldest
        #: first; :attr:`history` always holds the latest fit only.
        self.history_segments = []
        self.inloss_density = None
        self.inloss_causal = None
        self._fitted = False

    @classmethod
    def from_trained(cls, vae, blackbox, constraints, projector, config, rng=None):
        """Wrap an already-trained VAE as a ready-to-generate generator.

        The warm-start entry point for the serving layer: weights come
        from an artifact store, so no :meth:`fit` call happens.  The
        generator starts in eval mode and :meth:`generate` works
        immediately; the blackbox is released (generation needs no
        gradients, and a serving rollover must be able to retrain it).
        """
        generator = cls(vae, blackbox, constraints, projector, config, rng=rng)
        generator.loss_fn.release()
        generator.vae.eval()
        generator._fitted = True
        return generator

    # -- helpers -----------------------------------------------------------
    def _desired_classes(self, x, desired):
        """Default desired class: the opposite of the black-box prediction.

        Scalars broadcast to every row (like the engine and serving
        APIs); anything that is not a scalar or a matching 1-D vector
        raises a clean ``ValueError``.
        """
        if desired is None:
            return 1 - self.blackbox.predict(x)
        desired = np.asarray(desired)
        if desired.ndim == 0:
            return np.full(len(x), int(desired), dtype=int)
        if desired.ndim != 1:
            raise ValueError(
                f"desired must be a scalar or 1-D vector, got shape {desired.shape}")
        if len(desired) != len(x):
            raise ValueError(
                f"desired ({len(desired)}) and x ({len(x)}) row counts differ")
        return desired.astype(int)

    def _generate_batch(self, x, desired, perturb):
        """One differentiable pass input -> counterfactual Tensor."""
        mu, log_var = self.vae.encode(Tensor(x), desired)
        z = self.vae.reparameterize(mu, log_var)
        if perturb and self.config.latent_noise:
            noise = self.rng.normal(0.0, self.config.latent_noise, size=z.shape)
            z = z + noise
        decoded = self.vae.decode(z, desired)
        projected = self.projector.project_tensor(x, decoded)
        return projected, mu, log_var

    # -- in-loss surrogates -------------------------------------------------
    def prepare_inloss(self, reference=None, causal=None, desired_class=1):
        """Fit/attach the in-objective surrogates the config asks for.

        Parameters
        ----------
        reference:
            Encoded rows of the population counterfactuals should land
            in (typically the desired-class training rows); required
            when ``config.density_weight_inloss`` is set, unless a
            fitted surrogate was attached already.
        causal:
            A fitted causal model (wrapped automatically) or a loss
            surrogate exposing ``penalty(x, x_cf)``; required when
            ``config.causal_weight_inloss`` is set.
        desired_class:
            Class label the latent density surrogate conditions on.
        """
        cfg = self.config
        if cfg.density_weight_inloss and reference is not None:
            from ..density.differentiable import build_inloss_density

            model = build_inloss_density(
                cfg.loss_density, vae=self.vae, desired_class=desired_class)
            self.inloss_density = model.fit(reference)
        if cfg.causal_weight_inloss and causal is not None:
            if hasattr(causal, "penalty"):
                self.inloss_causal = causal
            else:
                from ..causal.differentiable import causal_loss_surrogate

                self.inloss_causal = causal_loss_surrogate(causal)
        return self

    # -- training ----------------------------------------------------------
    def fit(self, x, desired=None, verbose=False):
        """Train the generator on encoded inputs ``x``.

        ``desired`` defaults to flipping the black-box prediction of each
        row, which matches the CF definition (input class vs the desired,
        opposite class).  Returns ``self``; per-epoch loss-part averages
        accumulate in :attr:`history` (a re-fit moves the previous run
        into :attr:`history_segments` first).
        """
        x = check_2d(x, "x")  # rejects empty batches with a clean ValueError
        cfg = self.config.scaled_for(len(x))
        desired = self._desired_classes(x, desired)

        if self.history:
            self.history_segments.append(self.history)
        self.history = []

        if cfg.density_weight_inloss and self.inloss_density is None:
            # standalone fallback: the training rows are the reference
            from ..density.differentiable import build_inloss_density

            self.inloss_density = build_inloss_density(
                cfg.loss_density, vae=self.vae).fit(x)
        if cfg.causal_weight_inloss and self.inloss_causal is None:
            raise RuntimeError(
                "causal_weight_inloss is set but no causal surrogate is "
                "attached; call prepare_inloss(causal=...) first (the "
                "explainer's fit() does this automatically)")
        self.loss_fn.density_model = self.inloss_density
        self.loss_fn.causal_model = self.inloss_causal

        if cfg.warmstart_epochs:
            # Reconstruction warm-start: "the decoder must conduct a
            # faithful representation of the input data" (Section III-C).
            # Starting the CF objective from a faithful decoder prevents
            # the validity hinge from saturating the sigmoid outputs
            # before proximity/sparsity can anchor them.
            from ..models.training import train_reconstruction_vae

            train_reconstruction_vae(
                self.vae, x, desired, epochs=cfg.warmstart_epochs,
                lr=3e-3, batch_size=cfg.batch_size, beta=0.02, rng=self.rng)
            self.vae.train()

        if cfg.optimizer == "adam":
            optimizer = Adam(self.vae.parameters(), lr=cfg.learning_rate)
        else:
            optimizer = SGD(self.vae.parameters(), lr=cfg.learning_rate,
                            momentum=cfg.momentum)

        self.vae.train()
        n_rows = len(x)
        self.loss_fn.freeze()
        try:
            for epoch in range(cfg.epochs):
                order = self.rng.permutation(n_rows)
                epoch_parts = []
                for start in range(0, n_rows, cfg.batch_size):
                    batch = order[start:start + cfg.batch_size]
                    optimizer.zero_grad()
                    x_cf, mu, log_var = self._generate_batch(
                        x[batch], desired[batch], perturb=True)
                    total, parts = self.loss_fn(
                        x[batch], x_cf, desired[batch], mu, log_var)
                    total.backward()
                    optimizer.step()
                    epoch_parts.append(parts)
                averaged = {
                    key: float(np.mean([p[key] for p in epoch_parts]))
                    for key in epoch_parts[0]
                }
                self.history.append(averaged)
                if verbose:
                    rendered = ", ".join(f"{k}={v:.4f}" for k, v in averaged.items())
                    print(f"epoch {epoch + 1}/{cfg.epochs}  {rendered}")
        finally:
            # the classifier leaves training exactly as retrainable as it
            # arrived — a later train_classifier/rollover must see its
            # parameters again
            self.loss_fn.release()
        self.vae.eval()
        self._fitted = True
        return self

    # -- generation -----------------------------------------------------------
    def generate(self, x, desired=None, perturb=False):
        """Generate counterfactuals for encoded rows ``x`` (ndarray out).

        Uses the deterministic posterior mean (plus optional perturbation
        when ``perturb=True``) and projects immutable attributes back to
        their input values — the paper's "incorporated them again in the
        final prediction".  Runs entirely on the graph-free fast path:
        no autograd node is allocated.
        """
        if not self._fitted:
            raise RuntimeError("generator is not fitted; call fit() first")
        x = check_2d(x, "x")
        desired = self._desired_classes(x, desired)
        self.vae.eval()
        z, _ = self.vae.encode_array(x, desired)
        if perturb and self.config.latent_noise:
            z = z + self.rng.normal(0.0, self.config.latent_noise, size=z.shape)
        decoded = self.vae.decode_array(z, desired)
        return self.projector.project(x, decoded)

"""Training loop for the feasibility-aware counterfactual VAE.

Implements the architecture of Figure 4: inputs flow through the
conditional VAE (encoder -> perturbed latent -> decoder), immutable
attributes are frozen, and the four-part loss — validity through the
frozen black-box, proximity, causal-constraint feasibility and sparsity —
trains the generator to emit feasible counterfactuals directly.
"""

from __future__ import annotations

import numpy as np

from ..nn import SGD, Adam, Tensor
from ..utils.validation import check_2d
from .losses import FourPartLoss

__all__ = ["CFVAEGenerator"]


class CFVAEGenerator:
    """Feasible-counterfactual generator (the paper's model).

    Parameters
    ----------
    vae:
        :class:`repro.models.ConditionalVAE` (Table II architecture).
    blackbox:
        Trained, frozen :class:`repro.models.BlackBoxClassifier`.
    constraints:
        :class:`repro.constraints.ConstraintSet` — the unary or binary
        causal model.
    projector:
        :class:`repro.constraints.ImmutableProjector` freezing immutable
        attributes.
    config:
        :class:`repro.core.config.CFTrainingConfig`.
    rng:
        Generator for batching and latent perturbation noise.
    """

    def __init__(self, vae, blackbox, constraints, projector, config, rng=None):
        self.vae = vae
        self.blackbox = blackbox
        self.constraints = constraints
        self.projector = projector
        self.config = config
        self.rng = rng or np.random.default_rng(0)
        self.loss_fn = FourPartLoss(blackbox, constraints, config)
        self.history = []
        self._fitted = False

    @classmethod
    def from_trained(cls, vae, blackbox, constraints, projector, config, rng=None):
        """Wrap an already-trained VAE as a ready-to-generate generator.

        The warm-start entry point for the serving layer: weights come
        from an artifact store, so no :meth:`fit` call happens.  The
        generator starts in eval mode and :meth:`generate` works
        immediately.
        """
        generator = cls(vae, blackbox, constraints, projector, config, rng=rng)
        generator.vae.eval()
        generator._fitted = True
        return generator

    # -- helpers -----------------------------------------------------------
    def _desired_classes(self, x, desired):
        """Default desired class: the opposite of the black-box prediction."""
        if desired is None:
            return 1 - self.blackbox.predict(x)
        desired = np.asarray(desired, dtype=int)
        if len(desired) != len(x):
            raise ValueError(
                f"desired ({len(desired)}) and x ({len(x)}) row counts differ")
        return desired

    def _generate_batch(self, x, desired, perturb):
        """One differentiable pass input -> counterfactual Tensor."""
        mu, log_var = self.vae.encode(Tensor(x), desired)
        z = self.vae.reparameterize(mu, log_var)
        if perturb and self.config.latent_noise:
            noise = self.rng.normal(0.0, self.config.latent_noise, size=z.shape)
            z = z + noise
        decoded = self.vae.decode(z, desired)
        projected = self.projector.project_tensor(x, decoded)
        return projected, mu, log_var

    # -- training ----------------------------------------------------------
    def fit(self, x, desired=None, verbose=False):
        """Train the generator on encoded inputs ``x``.

        ``desired`` defaults to flipping the black-box prediction of each
        row, which matches the CF definition (input class vs the desired,
        opposite class).  Returns ``self``; per-epoch loss-part averages
        accumulate in :attr:`history`.
        """
        x = check_2d(x, "x")
        cfg = self.config.scaled_for(len(x))
        desired = self._desired_classes(x, desired)

        if cfg.warmstart_epochs:
            # Reconstruction warm-start: "the decoder must conduct a
            # faithful representation of the input data" (Section III-C).
            # Starting the CF objective from a faithful decoder prevents
            # the validity hinge from saturating the sigmoid outputs
            # before proximity/sparsity can anchor them.
            from ..models.training import train_reconstruction_vae

            train_reconstruction_vae(
                self.vae, x, desired, epochs=cfg.warmstart_epochs,
                lr=3e-3, batch_size=cfg.batch_size, beta=0.02, rng=self.rng)
            self.vae.train()

        if cfg.optimizer == "adam":
            optimizer = Adam(self.vae.parameters(), lr=cfg.learning_rate)
        else:
            optimizer = SGD(self.vae.parameters(), lr=cfg.learning_rate,
                            momentum=cfg.momentum)

        self.vae.train()
        n_rows = len(x)
        for epoch in range(cfg.epochs):
            order = self.rng.permutation(n_rows)
            epoch_parts = []
            for start in range(0, n_rows, cfg.batch_size):
                batch = order[start:start + cfg.batch_size]
                optimizer.zero_grad()
                x_cf, mu, log_var = self._generate_batch(
                    x[batch], desired[batch], perturb=True)
                total, parts = self.loss_fn(x[batch], x_cf, desired[batch], mu, log_var)
                total.backward()
                optimizer.step()
                epoch_parts.append(parts)
            averaged = {
                key: float(np.mean([p[key] for p in epoch_parts]))
                for key in epoch_parts[0]
            }
            self.history.append(averaged)
            if verbose:
                rendered = ", ".join(f"{k}={v:.4f}" for k, v in averaged.items())
                print(f"epoch {epoch + 1}/{cfg.epochs}  {rendered}")
        self.vae.eval()
        self._fitted = True
        return self

    # -- generation -----------------------------------------------------------
    def generate(self, x, desired=None, perturb=False):
        """Generate counterfactuals for encoded rows ``x`` (ndarray out).

        Uses the deterministic posterior mean (plus optional perturbation
        when ``perturb=True``) and projects immutable attributes back to
        their input values — the paper's "incorporated them again in the
        final prediction".  Runs entirely on the graph-free fast path:
        no autograd node is allocated.
        """
        if not self._fitted:
            raise RuntimeError("generator is not fitted; call fit() first")
        x = check_2d(x, "x")
        desired = self._desired_classes(x, desired)
        self.vae.eval()
        z, _ = self.vae.encode_array(x, desired)
        if perturb and self.config.latent_noise:
            z = z + self.rng.normal(0.0, self.config.latent_noise, size=z.shape)
        decoded = self.vae.decode_array(z, desired)
        return self.projector.project(x, decoded)

"""Binary (paired) causal constraints (paper Eq. 2).

The canonical example couples education and age on the Adult dataset:

* if education increases, age must strictly increase, and
* if education stays the same, age must not decrease.

The cause may be an ordinal categorical attribute (education: the rank of
the one-hot block defines its ordinal value) or a continuous one (school
``tier`` on Law School).  The effect is continuous.

The differentiable penalty follows the paper's parametrised form
``(x2 - c1 - c2 * x1)``-style: with ``delta_cause`` and ``delta_effect``
the (encoded) changes, the penalty is ``relu(c2 * relu(delta_cause) +
c1 * 1[delta_cause > 0] - delta_effect)``, which is zero exactly when the
effect rises at least ``c2`` per unit of cause increase (plus margin
``c1``) and never falls while the cause is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import FeatureType
from ..nn import Tensor, as_tensor
from .base import Constraint

__all__ = ["OrdinalImplicationConstraint"]


class OrdinalImplicationConstraint(Constraint):
    """"Cause up implies effect up" constraint (Eq. 2).

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`.
    cause:
        Name of the causing attribute (categorical-ordinal or continuous),
        e.g. ``education`` (Adult/KDD) or ``tier`` (Law School).
    effect:
        Name of the continuous effect attribute, e.g. ``age`` or ``lsat``.
    slope:
        Penalty parameter ``c2``: minimum effect increase (encoded units)
        required per unit of cause increase.  "Selected from
        experimentation" in the paper; defaults are set per dataset in
        :mod:`repro.constraints.catalog`.
    margin:
        Penalty parameter ``c1``: extra strict-inequality margin applied
        when the cause increased.
    tolerance:
        Float slack for the boolean satisfaction checks.
    """

    def __init__(self, encoder, cause, effect, slope=0.02, margin=0.0,
                 tolerance=1e-6):
        self.encoder = encoder
        self.cause = cause
        self.effect = effect
        self.slope = float(slope)
        self.margin = float(margin)
        self.tolerance = float(tolerance)
        self.name = f"binary[{cause} up => {effect} up]"

        cause_spec = encoder.schema.feature(cause)
        self._cause_is_categorical = cause_spec.ftype is FeatureType.CATEGORICAL
        if self._cause_is_categorical:
            self._cause_block = encoder.feature_slices[cause]
            self._rank_weights = encoder.category_rank_weights(cause)
        else:
            self._cause_column = encoder.column_of(cause)
        self._effect_column = encoder.column_of(effect)

    # -- cause value extraction ----------------------------------------------
    def _cause_values_np(self, x):
        """Ordinal cause value per row of a plain ndarray."""
        x = np.asarray(x)
        if self._cause_is_categorical:
            return x[:, self._cause_block] @ self._rank_weights
        return x[:, self._cause_column]

    def _cause_values_tensor(self, x_cf):
        """Differentiable ordinal cause value per row of a Tensor."""
        if self._cause_is_categorical:
            block = x_cf[:, self._cause_block]
            return block @ Tensor(self._rank_weights)
        return x_cf[:, self._cause_column]

    # -- evaluation -------------------------------------------------------------
    def satisfied(self, x, x_cf):
        """Eq. 2 truth value per row.

        ``cause`` strictly up requires ``effect`` strictly up; ``cause``
        unchanged requires ``effect`` non-decreasing; ``cause`` down is
        outside the implication, hence vacuously satisfied.
        """
        x = np.asarray(x)
        x_cf = np.asarray(x_cf)
        delta_cause = self._cause_values_np(x_cf) - self._cause_values_np(x)
        delta_effect = x_cf[:, self._effect_column] - x[:, self._effect_column]

        cause_up = delta_cause > self.tolerance
        cause_same = np.abs(delta_cause) <= self.tolerance
        ok_up = ~cause_up | (delta_effect > self.tolerance)
        ok_same = ~cause_same | (delta_effect >= -self.tolerance)
        return ok_up & ok_same

    # -- learning ----------------------------------------------------------------
    def penalty(self, x, x_cf):
        x = np.asarray(x)
        x_cf = as_tensor(x_cf)
        cause_before = self._cause_values_np(x)
        cause_after = self._cause_values_tensor(x_cf)
        delta_cause = cause_after - Tensor(cause_before)
        delta_effect = x_cf[:, self._effect_column] - Tensor(x[:, self._effect_column])

        required = delta_cause.clip_min(0.0) * self.slope
        if self.margin:
            # strict-increase margin active only when the cause moved up;
            # use a smooth gate so the penalty stays differentiable.
            gate = (delta_cause * 50.0).sigmoid()
            required = required + gate * self.margin
        shortfall = (required - delta_effect).clip_min(0.0)
        return shortfall.mean()

"""Automatic causal-constraint discovery (the paper's future work).

Section V: *"As future work we have already started working on analysing
the causal relations of various features in a dataset, so that we can
minimize the human involvement during the construction of the causal
constraint."*  This module implements that step: it mines candidate
"cause up implies effect up" relations directly from the cleaned data
and converts the strong ones into the same
:class:`~repro.constraints.binary.OrdinalImplicationConstraint` objects
the hand-written catalog provides.

The mining signal combines two ingredients:

* **rank correlation** — Spearman's rho between the cause's ordinal
  value and the effect (captures "effect tends to grow with cause");
* **floor monotonicity** — the fraction of adjacent cause levels whose
  low-quantile effect value increases (captures hard prerequisites such
  as "a doctorate is impossible before ~27", which is exactly what makes
  the education→age constraint causal rather than merely correlated).

On the benchmark datasets the miner re-discovers the paper's hand-made
constraints: education→age on Adult/KDD and tier→lsat on Law School.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..data.schema import FeatureType
from .base import ConstraintSet
from .binary import OrdinalImplicationConstraint

__all__ = ["DiscoveredRelation", "ConstraintMiner"]

_MIN_LEVELS = 3
_FLOOR_QUANTILE = 0.05


@dataclass(frozen=True)
class DiscoveredRelation:
    """One mined "cause up implies effect up" candidate.

    Attributes
    ----------
    cause, effect:
        Feature names (cause is ordinal-categorical or continuous;
        effect is continuous).
    rank_correlation:
        Spearman's rho between cause and effect.
    floor_monotonicity:
        Fraction of adjacent cause levels with increasing low-quantile
        effect (1.0 = every step raises the floor).
    suggested_slope:
        Recommended penalty slope ``c2`` in *encoded* effect units per
        cause level, from the median floor increase.
    score:
        Combined strength used for ranking.
    """

    cause: str
    effect: str
    rank_correlation: float
    floor_monotonicity: float
    suggested_slope: float
    score: float

    def describe(self):
        """One-line human-readable summary."""
        return (f"{self.cause} up => {self.effect} up "
                f"(rho={self.rank_correlation:.2f}, "
                f"floor-mono={self.floor_monotonicity:.2f}, "
                f"slope={self.suggested_slope:.4f})")


class ConstraintMiner:
    """Mine implication constraints from a cleaned :class:`TabularFrame`.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder` (supplies the schema
        and the encoded-unit normalisation for suggested slopes).
    min_correlation:
        Minimum Spearman's rho to keep a relation.
    min_floor_monotonicity:
        Minimum fraction of adjacent levels with a rising effect floor.
    n_bins:
        Number of quantile bins used to ordinalise continuous causes.
    """

    def __init__(self, encoder, min_correlation=0.15,
                 min_floor_monotonicity=0.7, n_bins=5):
        self.encoder = encoder
        self.min_correlation = float(min_correlation)
        self.min_floor_monotonicity = float(min_floor_monotonicity)
        self.n_bins = int(n_bins)

    # -- feature views -----------------------------------------------------
    def _cause_levels(self, frame, spec):
        """Ordinal level per row for a candidate cause, or None.

        Rows whose cause value is missing (None / NaN) or outside the
        schema vocabulary get a NaN level; ``_evaluate_pair`` masks them
        out, so a partially dirty column degrades to mining on the
        observed rows instead of crashing.
        """
        column = frame[spec.name]
        if spec.ftype is FeatureType.CATEGORICAL:
            if spec.n_categories < _MIN_LEVELS:
                return None
            lookup = {label: rank for rank, label in enumerate(spec.categories)}
            return np.array(
                [lookup.get(value, np.nan) for value in column], dtype=float)
        if spec.ftype is FeatureType.CONTINUOUS:
            values = np.asarray(column.astype(float), dtype=float)
            finite = np.isfinite(values)
            observed = np.unique(values[finite])
            if len(observed) == 0:
                return None
            levels = np.full(len(values), np.nan)
            if len(observed) <= self.n_bins:
                # already a small ordinal grid (e.g. tier 1..6)
                levels[finite] = np.searchsorted(observed, values[finite])
            else:
                edges = np.quantile(
                    values[finite], np.linspace(0, 1, self.n_bins + 1)[1:-1])
                levels[finite] = np.digitize(values[finite], edges)
            return levels
        return None  # binary causes carry no ordinal direction worth mining

    # -- scoring ---------------------------------------------------------------
    def _floor_profile(self, levels, effect):
        """Low-quantile effect per cause level (only populated levels)."""
        floors = []
        for level in np.unique(levels):
            members = effect[levels == level]
            if len(members) >= 5:
                floors.append(float(np.quantile(members, _FLOOR_QUANTILE)))
        return np.array(floors)

    def _evaluate_pair(self, frame, cause_spec, effect_spec):
        levels = self._cause_levels(frame, cause_spec)
        if levels is None:
            return None
        effect = np.asarray(frame[effect_spec.name].astype(float), dtype=float)
        # Degenerate guards: missing cells are masked out, and a pair is
        # skipped silently when too few observed rows remain, the cause
        # collapses below _MIN_LEVELS levels, the effect is constant
        # (rank correlation undefined — scipy would warn) or the
        # effect's encoded range is unusable (e.g. an all-missing
        # column fitted NaN bounds).
        observed = np.isfinite(levels) & np.isfinite(effect)
        if observed.sum() < _MIN_LEVELS * 5:
            return None
        levels, effect = levels[observed], effect[observed]
        if len(np.unique(levels)) < _MIN_LEVELS or effect.std() == 0:
            return None
        low, high = self.encoder.ranges[effect_spec.name]
        if not np.isfinite(high - low) or high - low <= 0:
            return None
        rho = float(stats.spearmanr(levels, effect).statistic)
        if not np.isfinite(rho) or rho <= 0:
            return None

        floors = self._floor_profile(levels, effect)
        if len(floors) < _MIN_LEVELS:
            return None
        steps = np.diff(floors)
        floor_monotonicity = float((steps > 0).mean())
        if floor_monotonicity < self.min_floor_monotonicity:
            return None

        total_floor_rise = (floors[-1] - floors[0]) / (high - low)
        # Acceptance: either the bulk correlation is clear, or the floor
        # signature is unambiguous — a strictly rising minimum with a
        # material total rise is the fingerprint of a hard prerequisite
        # (education -> age) even when the bulk correlation is weak.
        strong_floor = floor_monotonicity >= 0.99 and total_floor_rise >= 0.05
        if rho < self.min_correlation and not strong_floor:
            return None

        raw_slope = float(np.median(steps[steps > 0])) if (steps > 0).any() else 0.0
        suggested_slope = raw_slope / (high - low)
        score = max(rho, total_floor_rise) * floor_monotonicity
        return DiscoveredRelation(
            cause=cause_spec.name,
            effect=effect_spec.name,
            rank_correlation=rho,
            floor_monotonicity=floor_monotonicity,
            suggested_slope=suggested_slope,
            score=score,
        )

    # -- public API ----------------------------------------------------------------
    def mine(self, frame, max_relations=None):
        """Return discovered relations, strongest first.

        Candidate causes: ordinal categorical features (≥3 levels) and
        continuous features; candidate effects: continuous features.
        Immutable features are excluded on both sides (a constraint over
        an unchangeable attribute is vacuous for recourse).
        """
        schema = self.encoder.schema
        relations = []
        for cause_spec in schema.features:
            if cause_spec.immutable:
                continue
            for effect_spec in schema.continuous:
                if effect_spec.immutable or effect_spec.name == cause_spec.name:
                    continue
                relation = self._evaluate_pair(frame, cause_spec, effect_spec)
                if relation is not None:
                    relations.append(relation)
        relations.sort(key=lambda relation: relation.score, reverse=True)
        if max_relations is not None:
            relations = relations[:max_relations]
        return relations

    def to_constraints(self, relations):
        """Convert relations into an executable :class:`ConstraintSet`."""
        constraints = []
        for relation in relations:
            constraints.append(OrdinalImplicationConstraint(
                self.encoder, relation.cause, relation.effect,
                slope=max(relation.suggested_slope, 1e-3)))
        return ConstraintSet(constraints)

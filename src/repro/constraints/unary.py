"""Unary causal constraints (paper Eq. 1).

The canonical example: ``x_cf_age >= x_age`` — a counterfactual may not
make an individual younger.  The training-time penalty is the paper's
``-min(0, x_cf - x)`` term, i.e. a hinge on the (signed) decrease.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor
from .base import Constraint

__all__ = ["MonotonicIncreaseConstraint"]


class MonotonicIncreaseConstraint(Constraint):
    """Require a continuous feature not to decrease (Eq. 1).

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder` — supplies the encoded
        column index of the feature.
    feature:
        Name of the continuous (or binary) feature, e.g. ``"age"``.
    tolerance:
        Slack in encoded units when checking satisfaction; generated
        values within ``tolerance`` below the original still count as
        satisfied (guards against float noise in decoded outputs).
    """

    def __init__(self, encoder, feature, tolerance=1e-6):
        self.encoder = encoder
        self.feature = feature
        self.column = encoder.column_of(feature)
        self.tolerance = float(tolerance)
        self.name = f"unary[{feature} non-decreasing]"

    def satisfied(self, x, x_cf):
        x = np.asarray(x)
        x_cf = np.asarray(x_cf)
        return x_cf[:, self.column] >= x[:, self.column] - self.tolerance

    def penalty(self, x, x_cf):
        x = np.asarray(x)
        x_cf = as_tensor(x_cf)
        # -min(0, x_cf - x) == relu(x - x_cf): penalise any decrease.
        decrease = Tensor(x[:, self.column]) - x_cf[:, self.column]
        return decrease.clip_min(0.0).mean()

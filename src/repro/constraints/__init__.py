"""Causal constraints: unary (Eq. 1), binary (Eq. 2), immutables, catalog."""

from .base import Constraint, ConstraintSet
from .binary import OrdinalImplicationConstraint
from .catalog import CONSTRAINT_KINDS, build_constraints, constraint_recipes
from .discovery import ConstraintMiner, DiscoveredRelation
from .immutables import ImmutableProjector, ImmutablesRespected
from .unary import MonotonicIncreaseConstraint

__all__ = [
    "Constraint", "ConstraintSet",
    "MonotonicIncreaseConstraint", "OrdinalImplicationConstraint",
    "ImmutableProjector", "ImmutablesRespected",
    "build_constraints", "constraint_recipes", "CONSTRAINT_KINDS",
    "ConstraintMiner", "DiscoveredRelation",
]

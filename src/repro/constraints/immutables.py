"""Immutable-attribute handling (Section III-C, "Immutable Attributes").

The paper disables immutable attributes (race, gender, sex) during VAE
training and re-inserts them in the final prediction.  We implement that
as a projection: generated outputs are overwritten with the original
values on every encoded column belonging to an immutable feature — both
inside the differentiable training graph and at generation time.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor
from .base import Constraint

__all__ = ["ImmutableProjector", "ImmutablesRespected"]


class ImmutableProjector:
    """Force immutable encoded columns of a counterfactual back to the input."""

    def __init__(self, encoder):
        self.encoder = encoder
        self.mask = encoder.immutable_mask()

    @property
    def has_immutables(self):
        """Whether the schema declares any immutable feature."""
        return bool(self.mask.any())

    def project(self, x, x_cf):
        """ndarray version: returns ``x_cf`` with immutable columns from ``x``.

        ``x_cf`` may be a flat ``(n, d)`` matrix or a candidate tensor of
        shape ``(n, m, d)`` holding ``m`` candidates per input row.  The
        3-D form projects the whole batch in one broadcast assignment —
        no per-candidate loop and no materialised ``np.repeat(x, m)``.
        """
        x = np.asarray(x)
        x_cf = np.asarray(x_cf, dtype=np.float64).copy()
        if x_cf.ndim == 3:
            x_cf[:, :, self.mask] = x[:, None, self.mask]
        else:
            x_cf[:, self.mask] = x[:, self.mask]
        return x_cf

    def project_tensor(self, x, x_cf):
        """Differentiable version used inside the training loss.

        Gradients flow only through mutable columns — immutable columns
        are replaced by constants, exactly "disabling" them for training.
        """
        x_cf = as_tensor(x_cf)
        cond = np.broadcast_to(self.mask, x_cf.shape)
        return Tensor.where(cond, Tensor(np.asarray(x)), x_cf)


class ImmutablesRespected(Constraint):
    """Evaluation-only constraint: immutable columns must be unchanged.

    Useful for auditing third-party explainers that do not project; the
    penalty is the L1 drift on immutable columns, so it can also be used
    as a soft training signal if projection is disabled.
    """

    def __init__(self, encoder, tolerance=1e-6):
        self.encoder = encoder
        self.mask = encoder.immutable_mask()
        self.tolerance = float(tolerance)
        names = ", ".join(encoder.schema.immutable_names)
        self.name = f"immutable[{names}]"

    def satisfied(self, x, x_cf):
        x = np.asarray(x)
        x_cf = np.asarray(x_cf)
        if not self.mask.any():
            return np.ones(len(x), dtype=bool)
        drift = np.abs(x_cf[:, self.mask] - x[:, self.mask])
        return (drift <= self.tolerance).all(axis=1)

    def penalty(self, x, x_cf):
        x = np.asarray(x)
        x_cf = as_tensor(x_cf)
        if not self.mask.any():
            return Tensor(0.0)
        columns = np.flatnonzero(self.mask)
        drift = x_cf[:, columns] - Tensor(x[:, columns])
        return drift.abs().mean()

"""Per-dataset constraint catalog (Section IV-E).

The paper's experiments use:

* **Adult / KDD-Census** — unary: ``age`` non-decreasing (Eq. 1);
  binary: ``education`` up implies ``age`` up (Eq. 2).
* **Law School** — unary: ``lsat`` non-decreasing; binary: ``tier`` up
  implies ``lsat`` up.

``build_constraints(encoder, kind)`` returns the matching
:class:`~repro.constraints.base.ConstraintSet` for the encoder's schema.
"""

from __future__ import annotations

from .base import ConstraintSet
from .binary import OrdinalImplicationConstraint
from .unary import MonotonicIncreaseConstraint

__all__ = ["build_constraints", "constraint_recipes", "CONSTRAINT_KINDS"]

CONSTRAINT_KINDS = ("unary", "binary")

#: dataset -> kind -> list of (constraint class, kwargs) recipes.
_RECIPES = {
    "adult": {
        "unary": [(MonotonicIncreaseConstraint, {"feature": "age"})],
        "binary": [(OrdinalImplicationConstraint,
                    {"cause": "education", "effect": "age", "slope": 0.02})],
    },
    "kdd_census": {
        "unary": [(MonotonicIncreaseConstraint, {"feature": "age"})],
        "binary": [(OrdinalImplicationConstraint,
                    {"cause": "education", "effect": "age", "slope": 0.02})],
    },
    "law_school": {
        "unary": [(MonotonicIncreaseConstraint, {"feature": "lsat"})],
        "binary": [(OrdinalImplicationConstraint,
                    {"cause": "tier", "effect": "lsat", "slope": 0.05})],
    },
}


def constraint_recipes(dataset_name):
    """Return the recipe mapping for a dataset (for introspection/tests)."""
    if dataset_name not in _RECIPES:
        raise KeyError(f"no constraint recipes for dataset {dataset_name!r}")
    return _RECIPES[dataset_name]


def build_constraints(encoder, kind):
    """Instantiate the paper's constraint set for ``encoder``'s dataset.

    Parameters
    ----------
    encoder:
        Fitted :class:`repro.data.TabularEncoder`; its schema name picks
        the recipe.
    kind:
        ``"unary"`` (Eq. 1 model) or ``"binary"`` (Eq. 2 model).  The
        binary model also includes the unary constraint — Eq. 2's second
        clause subsumes it only when education is unchanged, and the
        paper evaluates both feasibility columns on the binary model.
    """
    if kind not in CONSTRAINT_KINDS:
        raise ValueError(f"kind must be one of {CONSTRAINT_KINDS}, got {kind!r}")
    recipes = constraint_recipes(encoder.schema.name)
    selected = list(recipes["unary"]) if kind == "unary" else \
        list(recipes["unary"]) + list(recipes["binary"])
    constraints = [cls(encoder, **kwargs) for cls, kwargs in selected]
    return ConstraintSet(constraints)

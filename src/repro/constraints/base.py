"""Causal-constraint interface.

A constraint judges pairs ``(x, x_cf)`` in *encoded* space and plays two
roles in the paper:

1. **Evaluation** — :meth:`Constraint.satisfied` returns a boolean per
   row; the feasibility score of Section IV-D is the satisfied
   percentage.
2. **Learning** — :meth:`Constraint.penalty` returns a differentiable
   scalar that is zero exactly when every row satisfies the constraint;
   it is added to the four-part training loss (Section III-C).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Constraint", "ConstraintSet"]


class Constraint(ABC):
    """One logical causal constraint over encoded feature matrices."""

    #: Human-readable identifier used in reports.
    name = "constraint"

    @abstractmethod
    def satisfied(self, x, x_cf):
        """Boolean array: does each row of ``x_cf`` satisfy the constraint?

        Both arguments are encoded matrices of identical shape.
        """

    @abstractmethod
    def penalty(self, x, x_cf):
        """Differentiable scalar :class:`repro.nn.Tensor` penalty.

        ``x`` is a plain ndarray (the fixed input); ``x_cf`` is a Tensor
        so gradients flow into the generator.  Must be non-negative and
        zero when :meth:`satisfied` holds everywhere.
        """

    def satisfaction_rate(self, x, x_cf):
        """Fraction of rows satisfying the constraint (the paper's score / 100)."""
        flags = self.satisfied(x, x_cf)
        return float(np.mean(flags)) if len(flags) else 1.0

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


class ConstraintSet:
    """A collection of constraints evaluated and penalised together."""

    def __init__(self, constraints):
        self.constraints = tuple(constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self):
        return len(self.constraints)

    def satisfied(self, x, x_cf):
        """Row-wise AND over all member constraints."""
        x = np.asarray(x)
        flags = np.ones(len(x), dtype=bool)
        for constraint in self.constraints:
            flags &= constraint.satisfied(x, x_cf)
        return flags

    def satisfaction_rate(self, x, x_cf):
        """Fraction of rows satisfying *every* constraint."""
        if not self.constraints:
            return 1.0
        flags = self.satisfied(x, x_cf)
        return float(np.mean(flags)) if len(flags) else 1.0

    def penalty(self, x, x_cf):
        """Sum of member penalties (Tensor scalar, 0 when all satisfied)."""
        from ..nn import Tensor

        total = Tensor(0.0)
        for constraint in self.constraints:
            total = total + constraint.penalty(x, x_cf)
        return total

"""Causal-constraint interface.

A constraint judges pairs ``(x, x_cf)`` in *encoded* space and plays two
roles in the paper:

1. **Evaluation** — :meth:`Constraint.satisfied` returns a boolean per
   row; the feasibility score of Section IV-D is the satisfied
   percentage.
2. **Learning** — :meth:`Constraint.penalty` returns a differentiable
   scalar that is zero exactly when every row satisfies the constraint;
   it is added to the four-part training loss (Section III-C).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Constraint", "ConstraintSet"]


class Constraint(ABC):
    """One logical causal constraint over encoded feature matrices."""

    #: Human-readable identifier used in reports.
    name = "constraint"

    @abstractmethod
    def satisfied(self, x, x_cf):
        """Boolean array: does each row of ``x_cf`` satisfy the constraint?

        Both arguments are encoded matrices of identical shape.
        """

    @abstractmethod
    def penalty(self, x, x_cf):
        """Differentiable scalar :class:`repro.nn.Tensor` penalty.

        ``x`` is a plain ndarray (the fixed input); ``x_cf`` is a Tensor
        so gradients flow into the generator.  Must be non-negative and
        zero when :meth:`satisfied` holds everywhere.
        """

    def satisfaction_rate(self, x, x_cf):
        """Fraction of rows satisfying the constraint (the paper's score / 100).

        Uses ``flags.size`` rather than ``len(flags)`` so 2-D masks (e.g. a
        per-column drift matrix) and 0-row inputs behave consistently: an
        empty evaluation is vacuously satisfied.
        """
        flags = np.asarray(self.satisfied(x, x_cf))
        return float(np.mean(flags)) if flags.size else 1.0

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


class ConstraintSet:
    """A collection of constraints evaluated and penalised together."""

    def __init__(self, constraints):
        self.constraints = tuple(constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self):
        return len(self.constraints)

    def satisfied(self, x, x_cf):
        """Row-wise AND over all member constraints.

        This is the *loop evaluator*: one vectorized ``satisfied`` call per
        member constraint.  It is kept as the parity reference for the
        compiled kernel (see :meth:`compile`); hot paths should compile the
        set once and evaluate through the kernel instead.
        """
        x = np.asarray(x)
        flags = np.ones(len(x), dtype=bool)
        for constraint in self.constraints:
            flags &= constraint.satisfied(x, x_cf)
        return flags

    def satisfied_matrix(self, x, x_cf):
        """Per-constraint ``(n, k)`` satisfaction mask via the loop evaluator.

        Column ``j`` is ``constraints[j].satisfied(x, x_cf)``.  The compiled
        kernel reproduces this matrix bit-for-bit in a single fused pass;
        parity tests compare the two.
        """
        x = np.asarray(x)
        x_cf = np.asarray(x_cf)
        if not self.constraints:
            return np.ones((len(x), 0), dtype=bool)
        return np.column_stack(
            [constraint.satisfied(x, x_cf) for constraint in self.constraints])

    def satisfaction_rate(self, x, x_cf):
        """Fraction of rows satisfying *every* constraint."""
        if not self.constraints:
            return 1.0
        flags = np.asarray(self.satisfied(x, x_cf))
        return float(np.mean(flags)) if flags.size else 1.0

    def compile(self):
        """Lower the set into a :class:`repro.engine.CompiledConstraintSet`.

        The compiled kernel evaluates every member constraint in one fused
        vectorized pass — returning the full ``(n, k)`` satisfaction mask,
        the row-wise AND and per-constraint rates — and supports tiled
        candidate sweeps (``n * m`` counterfactual rows against ``n``
        inputs) without materialising ``np.repeat(x, m)``.  Unknown
        constraint types fall back to their own ``satisfied`` method, so
        compilation never changes semantics.
        """
        from ..engine.kernel import CompiledConstraintSet

        return CompiledConstraintSet(self)

    def penalty(self, x, x_cf):
        """Sum of member penalties (Tensor scalar, 0 when all satisfied)."""
        from ..nn import Tensor

        total = Tensor(0.0)
        for constraint in self.constraints:
            total = total + constraint.penalty(x, x_cf)
        return total

"""Reconstruction training for the conditional VAE.

The paper's CF-VAE training (validity + proximity + feasibility +
sparsity) lives in :mod:`repro.core.generator`.  This module provides the
plain data-fidelity objective — reconstruction + KL — that the REVISE and
C-CHVAE baselines need (both search the latent space of an ordinary VAE)
and that is also useful for warm-starting the CF model.
"""

from __future__ import annotations

import numpy as np

from ..nn import Adam, gaussian_kl, mse_loss
from ..utils.validation import check_2d

__all__ = ["train_reconstruction_vae"]


def train_reconstruction_vae(vae, x, labels, epochs=30, lr=1e-3, batch_size=256,
                             rng=None, beta=0.5, verbose=False):
    """Fit ``vae`` to reconstruct ``x`` conditioned on ``labels``.

    Loss per batch: ``MSE(x_hat, x) + beta * KL(q(z|x) || N(0, I))``.
    Returns the per-epoch loss history.
    """
    x = check_2d(x, "x")
    labels = np.asarray(labels, dtype=np.float64)
    if len(labels) != len(x):
        raise ValueError(f"labels ({len(labels)}) and x ({len(x)}) row counts differ")
    rng = rng or np.random.default_rng(0)

    optimizer = Adam(vae.parameters(), lr=lr)
    vae.train()
    history = []
    n_rows = len(x)
    for _ in range(epochs):
        order = rng.permutation(n_rows)
        losses = []
        for start in range(0, n_rows, batch_size):
            batch = order[start:start + batch_size]
            optimizer.zero_grad()
            reconstruction, mu, log_var, _ = vae(x[batch], labels[batch])
            loss = mse_loss(reconstruction, x[batch]) + gaussian_kl(mu, log_var) * beta
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
        if verbose:
            print(f"vae loss {history[-1]:.5f}")
    vae.eval()
    return history

"""Black-box ensembles: K model variants scored in one batched pass.

"Density-Guided Robust Counterfactual Explanations on Tabular Data under
Model Multiplicity" (PAPERS.md) shows that counterfactuals validated
against a single trained classifier frequently stop flipping the label
once the model is retrained — fatal for a serving system whose cached
explanations outlive model versions.  :class:`BlackBoxEnsemble` is the
repo's answer: K retrained variants of the shared
:class:`~repro.models.blackbox.BlackBoxClassifier` (different seed
streams, optionally bootstrap-resampled training rows) behind ONE
batched scoring call, so the engine can ask "how many plausible models
does this candidate flip?" for a whole ``(n * m, d)`` candidate sweep at
close to single-model cost.

The batched path exploits the members' shared two-linear-layer shape:
the K first-layer weight matrices concatenate into one ``(d, K * h)``
block, so the hidden activations of every member come out of a single
GEMM; the K scalar heads then reduce the ``(n, K, h)`` hidden tensor
with one einsum.  The per-member loop (:meth:`predict_logits_loop`, the
exact pre-ensemble code path: one ``forward_array`` per member) is kept
as the parity and throughput reference, mirroring every prior layer's
batched-vs-loop contract.  Hard predictions are bit-identical to the
loop; raw logits may differ at float precision because BLAS blocking
varies with the fused batch shape — the same caveat
:meth:`repro.density.DensityModel.score_tiled` documents for its
matmul-backed estimators.

State round trips through the flat array-or-scalar dict contract shared
with :class:`repro.density.DensityModel` and
:class:`repro.causal.CausalModel`, so the artifact store persists
ensembles as a standard fingerprinted overlay next to the pipeline.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_2d, check_2d_fast, check_binary_labels
from .blackbox import BlackBoxClassifier, train_classifier

__all__ = ["ENSEMBLE_MODES", "BlackBoxEnsemble", "train_ensemble"]

#: Retraining modes :func:`train_ensemble` accepts: ``seed`` retrains
#: each member from a different weight-init/batching stream on the full
#: split; ``bootstrap`` additionally resamples the training rows with
#: replacement per member.
ENSEMBLE_MODES = ("seed", "bootstrap")


class BlackBoxEnsemble:
    """K same-architecture classifier variants scored in one pass.

    Parameters
    ----------
    members:
        Trained :class:`BlackBoxClassifier` instances.  All members must
        agree on ``n_features`` and ``hidden`` — the fused scoring path
        stacks their weights into one block.
    mode:
        How the members were produced (``"seed"`` / ``"bootstrap"``);
        provenance only, recorded in the persisted state.
    seed:
        Root seed of the training sweep; provenance only.
    """

    kind = "ensemble"

    #: State keys excluded from :meth:`fingerprint` (none for ensembles;
    #: the attribute completes the shared ``Persistable`` contract).
    fingerprint_excludes = ()

    def __init__(self, members, mode="seed", seed=0):
        members = list(members)
        if not members:
            raise ValueError("an ensemble needs at least one member")
        first = members[0]
        for index, member in enumerate(members):
            if not isinstance(member, BlackBoxClassifier):
                raise TypeError(
                    f"member {index} is {type(member).__name__}, expected BlackBoxClassifier"
                )
            if member.n_features != first.n_features or member.hidden != first.hidden:
                raise ValueError(
                    f"member {index} has shape ({member.n_features}, {member.hidden}), "
                    f"expected ({first.n_features}, {first.hidden}): the fused "
                    f"scoring path needs one shared architecture"
                )
        if mode not in ENSEMBLE_MODES:
            raise ValueError(f"mode must be one of {ENSEMBLE_MODES}, got {mode!r}")
        self.members = members
        self.mode = mode
        self.seed = int(seed)
        self._stack = None

    def __len__(self):
        return len(self.members)

    @property
    def n_members(self):
        """Number of model variants (K)."""
        return len(self.members)

    @property
    def n_features(self):
        """Shared encoded input width of every member."""
        return self.members[0].n_features

    @property
    def hidden(self):
        """Shared hidden width of every member."""
        return self.members[0].hidden

    # -- fused scoring -------------------------------------------------------
    def _stacked_weights(self):
        """Member weights fused into block matrices (built once, cached).

        Layer 1 concatenates along the output axis — ``(d, K * h)`` plus
        a ``(K * h,)`` bias — so one GEMM produces every member's hidden
        activations.  Layer 2 keeps the per-member ``(K, h)`` heads and
        ``(K,)`` biases for the einsum reduction.
        """
        if self._stack is None:
            w1 = np.concatenate(
                [m.network.layers[0].weight.data for m in self.members], axis=1
            )
            b1 = np.concatenate([m.network.layers[0].bias.data for m in self.members])
            w2 = np.stack([m.network.layers[2].weight.data[:, 0] for m in self.members])
            b2 = np.asarray([m.network.layers[2].bias.data[0] for m in self.members])
            self._stack = (w1, b1, w2, b2)
        return self._stack

    def predict_logits_all(self, x):
        """Logits of every member for rows ``x``, shape ``(n, K)``.

        ONE fused pass for the whole ensemble: a single ``(n, d) @
        (d, K*h)`` GEMM for all first layers, a shared ReLU, and one
        einsum over the ``(n, K, h)`` hidden tensor for the K scalar
        heads.  Hard sign decisions match :meth:`predict_logits_loop`
        bit for bit; raw floats may differ at BLAS blocking precision.
        """
        x = check_2d_fast(x, "x")
        w1, b1, w2, b2 = self._stacked_weights()
        if x.dtype != w1.dtype:
            x = x.astype(w1.dtype)
        hidden = np.maximum(x @ w1 + b1, 0.0)
        hidden = hidden.reshape(len(x), self.n_members, self.hidden)
        return np.einsum("nkh,kh->nk", hidden, w2) + b2

    def predict_logits_loop(self, x):
        """Per-member reference for :meth:`predict_logits_all`.

        The pre-ensemble shape — one graph-free ``forward_array`` call
        per member — kept as the parity and benchmark reference.  Only
        parity tests and the perfbench should call it.
        """
        x = check_2d_fast(x, "x")
        return np.stack([m.predict_logits(x) for m in self.members], axis=1)

    def predict_all(self, x):
        """Hard 0/1 predictions of every member, shape ``(n, K)``."""
        return (self.predict_logits_all(x) > 0.0).astype(int)

    def agreement(self, x, desired):
        """Fraction of members classifying each row as its ``desired`` class.

        The cross-model validity score of a candidate batch: shape
        ``(n,)``, values in ``[0, 1]``.  ``desired`` broadcasts against
        the rows.
        """
        desired = np.asarray(desired, dtype=int)
        votes = self.predict_all(x) == desired.reshape(-1, 1)
        return votes.mean(axis=1)

    def predict(self, x):
        """Majority-vote hard predictions, ties broken by mean logit sign."""
        logits = self.predict_logits_all(x)
        votes = (logits > 0.0).mean(axis=1)
        majority = np.where(votes == 0.5, logits.mean(axis=1) > 0.0, votes > 0.5)
        return majority.astype(int)

    # -- persistence ---------------------------------------------------------
    def get_state(self):
        """Flat state dict: ``kind`` + scalars + per-member weight arrays.

        Keys follow ``member<i>.<param>`` with the parameter names of
        :meth:`repro.nn.Module.state_dict`, so the artifact store's
        overlay machinery (arrays to npz, scalars to the json sidecar)
        persists an ensemble exactly like density or causal state.
        """
        state = {
            "kind": self.kind,
            "mode": self.mode,
            "seed": self.seed,
            "n_members": self.n_members,
            "n_features": int(self.n_features),
            "hidden": int(self.hidden),
        }
        for index, member in enumerate(self.members):
            for name, value in member.state_dict().items():
                state[f"member{index}.{name}"] = value
        return state

    @classmethod
    def from_state(cls, state):
        """Rebuild a trained ensemble from :meth:`get_state` output."""
        if state.get("kind") != cls.kind:
            raise ValueError(
                f"state kind {state.get('kind')!r} is not an ensemble state"
            )
        n_members = int(state["n_members"])
        members = []
        for index in range(n_members):
            prefix = f"member{index}."
            weights = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            if not weights:
                raise ValueError(f"ensemble state is missing member {index}")
            member = BlackBoxClassifier(
                int(state["n_features"]),
                np.random.default_rng(0),
                hidden=int(state["hidden"]),
            )
            member.load_state_dict(weights)
            member.eval()
            members.append(member)
        return cls(members, mode=state.get("mode", "seed"), seed=int(state.get("seed", 0)))

    def fingerprint(self):
        """Deterministic hash of the member weights, for caches and the store.

        Delegates to the shared :func:`repro.serve.persist.fingerprint_state`
        contract (arrays hashed by content, scalars canonically
        JSON-encoded) — the exact contract of
        ``DensityModel.fingerprint`` and ``CausalModel.fingerprint``, so
        the store and the serving cache treat ensemble staleness
        identically to density/causal staleness.
        """
        from ..serve.persist import fingerprint_state

        return fingerprint_state(self.get_state(), self.fingerprint_excludes)


def train_ensemble(
    x_train,
    y_train,
    n_members=5,
    mode="seed",
    seed=0,
    epochs=10,
    hidden=16,
    batch_size=256,
    lr=0.05,
    balanced=True,
    include=None,
):
    """Train K classifier variants; returns a :class:`BlackBoxEnsemble`.

    Each member trains on the same split with its own weight-init and
    batching streams (``seed + 100 * (i + 1)`` and ``+ 1`` — disjoint
    from the pipeline's ``seed + 10/11`` streams, so member 0 is a
    genuine retrain of the primary model, not a copy).  ``bootstrap``
    mode additionally resamples the training rows with replacement per
    member, widening the plausible-model set beyond seed variance.

    ``include`` prepends an already-trained classifier (the pipeline's
    primary model) as member 0 without retraining it, for ensembles that
    must contain the model actually being served.
    """
    x_train = check_2d(x_train, "x_train")
    y_train = check_binary_labels(y_train, "y_train")
    if mode not in ENSEMBLE_MODES:
        raise ValueError(f"mode must be one of {ENSEMBLE_MODES}, got {mode!r}")
    if n_members < 1:
        raise ValueError(f"n_members must be >= 1, got {n_members}")

    members = []
    if include is not None:
        members.append(include)
    n_trained = int(n_members) - len(members)
    n_features = x_train.shape[1]
    for index in range(n_trained):
        member_seed = int(seed) + 100 * (index + 1)
        x, y = x_train, y_train
        if mode == "bootstrap":
            rows = np.random.default_rng(member_seed + 2).integers(
                0, len(x_train), size=len(x_train)
            )
            x, y = x_train[rows], y_train[rows]
        member = BlackBoxClassifier(
            n_features, np.random.default_rng(member_seed), hidden=hidden
        )
        train_classifier(
            member,
            x,
            y,
            epochs=epochs,
            lr=lr,
            batch_size=batch_size,
            rng=np.random.default_rng(member_seed + 1),
            balanced=balanced,
        )
        members.append(member)
    return BlackBoxEnsemble(members, mode=mode, seed=seed)

"""Models: the black-box classifier and the Table II conditional VAE."""

from .blackbox import BlackBoxClassifier, accuracy, train_classifier
from .ensemble import ENSEMBLE_MODES, BlackBoxEnsemble, train_ensemble
from .training import train_reconstruction_vae
from .vae import DECODER_WIDTHS, ENCODER_WIDTHS, LATENT_DIM, ConditionalVAE

__all__ = [
    "BlackBoxClassifier", "train_classifier", "accuracy",
    "BlackBoxEnsemble", "train_ensemble", "ENSEMBLE_MODES",
    "ConditionalVAE", "LATENT_DIM", "ENCODER_WIDTHS", "DECODER_WIDTHS",
    "train_reconstruction_vae",
]

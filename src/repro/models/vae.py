"""The class-conditional Variational Autoencoder of Table II.

Architecture (paper Table II):

* Encoder: ``num_features + 1`` -> 20 -> 16 -> 14 -> 12 -> latent, ReLU
  after every layer, 30% dropout, sigmoid on the final mean head.  The
  "+1" is the class conditioning — the desired class is appended as an
  extra input column (the paper trains the generator towards the desired
  class, following Mahajan et al.).
* Decoder: ``latent + 1`` -> 12 -> 14 -> 16 -> 18 -> ``num_features``,
  ReLU + dropout per layer, sigmoid output so reconstructions live in
  [0, 1] like the min-max/one-hot encoding.  (Table II lists the last
  decoder input as 20 where the previous output is 18; we treat that as
  a typo and keep the consistent 18.)
* Latent dimension 10 ("The size Latent space vector is adjusted to 10
  features").

The encoder produces ``(mu, log_var)``; sampling uses the standard
reparameterisation trick so gradients flow to both heads.
"""

from __future__ import annotations

import numpy as np

from ..nn import Dropout, Linear, Module, ReLU, Sequential, Tensor, no_grad
from ..nn.functional import sigmoid_forward

__all__ = ["ConditionalVAE", "LATENT_DIM", "ENCODER_WIDTHS", "DECODER_WIDTHS"]

LATENT_DIM = 10
ENCODER_WIDTHS = (20, 16, 14, 12)
DECODER_WIDTHS = (12, 14, 16, 18)
DROPOUT_P = 0.3


def _mlp(widths, rng, dropout_rng, dropout_p):
    """Stack of Linear -> ReLU -> Dropout blocks following ``widths``."""
    layers = []
    for in_width, out_width in zip(widths[:-1], widths[1:]):
        layers.append(Linear(in_width, out_width, rng, init="he"))
        layers.append(ReLU())
        layers.append(Dropout(dropout_p, dropout_rng))
    return Sequential(*layers)


class ConditionalVAE(Module):
    """Table II VAE, conditioned on the (desired) class label.

    Parameters
    ----------
    n_features:
        Width of the encoded tabular input.
    rng:
        Seeded generator for weight init; an independent stream is split
        off for dropout masks and reparameterisation noise.
    latent_dim:
        Latent width (paper: 10).
    dropout:
        Per-layer dropout probability (paper: 0.3).
    """

    def __init__(self, n_features, rng, latent_dim=LATENT_DIM, dropout=DROPOUT_P):
        super().__init__()
        self.n_features = n_features
        self.latent_dim = latent_dim
        noise_seed = int(rng.integers(0, 2 ** 63 - 1))
        self._noise_rng = np.random.default_rng(noise_seed)

        encoder_widths = (n_features + 1,) + ENCODER_WIDTHS
        self.encoder_trunk = _mlp(encoder_widths, rng, self._noise_rng, dropout)
        self.mu_head = Linear(ENCODER_WIDTHS[-1], latent_dim, rng, init="xavier")
        self.log_var_head = Linear(ENCODER_WIDTHS[-1], latent_dim, rng, init="xavier")

        decoder_widths = (latent_dim + 1,) + DECODER_WIDTHS
        self.decoder_trunk = _mlp(decoder_widths, rng, self._noise_rng, dropout)
        self.output_head = Linear(DECODER_WIDTHS[-1], n_features, rng, init="xavier")

    # -- pieces ------------------------------------------------------------
    @staticmethod
    def _with_class(x, labels):
        """Append the class label as an extra column (dtype follows x)."""
        labels = np.asarray(labels, dtype=x.data.dtype).reshape(-1, 1)
        column = Tensor(labels)
        return Tensor.concatenate([x, column], axis=1)

    def encode(self, x, labels):
        """Map inputs + class to ``(mu, log_var)``.

        ``mu`` passes through a sigmoid (Table II's "L5 + Sigmoid"), so
        the latent mean lives in (0, 1); ``log_var`` is unconstrained but
        clipped in :meth:`reparameterize` for numerical safety.
        """
        hidden = self.encoder_trunk(self._with_class(x, labels))
        mu = self.mu_head(hidden).sigmoid()
        log_var = self.log_var_head(hidden)
        return mu, log_var

    def reparameterize(self, mu, log_var):
        """Sample ``z = mu + sigma * eps`` with pathwise gradients."""
        eps = self._noise_rng.standard_normal(mu.shape).astype(
            mu.data.dtype, copy=False)
        floor = Tensor(np.full(log_var.shape, -10.0, dtype=log_var.data.dtype))
        sigma = (log_var * 0.5).maximum(floor).exp()
        return mu + sigma * eps

    def decode(self, z, labels):
        """Map latent + class back to feature space, sigmoid bounded."""
        hidden = self.decoder_trunk(self._with_class(z, labels))
        return self.output_head(hidden).sigmoid()

    def forward(self, x, labels=None):
        """Full pass: returns ``(reconstruction, mu, log_var, z)``."""
        if labels is None:
            labels = np.zeros(len(x) if hasattr(x, "__len__") else x.shape[0])
        mu, log_var = self.encode(x, labels)
        z = self.reparameterize(mu, log_var)
        return self.decode(z, labels), mu, log_var, z

    def __call__(self, x, labels=None):
        from ..nn import as_tensor
        return self.forward(as_tensor(x), labels)

    # -- inference helpers (graph-free fast path) -----------------------------
    # These run entirely on :meth:`repro.nn.Module.forward_array`; no
    # Tensor node is allocated.  They share the numpy kernels of
    # :mod:`repro.nn.functional` with the graph ops, so outputs are
    # numerically identical to the ``no_grad`` graph path.
    @staticmethod
    def _with_class_array(x, labels):
        """ndarray twin of :meth:`_with_class` (dtype-preserving)."""
        x = np.asarray(x)
        if x.dtype.kind != "f":
            x = x.astype(np.float64)
        labels = np.asarray(labels, dtype=x.dtype).reshape(-1, 1)
        return np.concatenate([x, labels], axis=1)

    def encode_array(self, x, labels):
        """Graph-free :meth:`encode`: ``(mu, log_var)`` as plain ndarrays."""
        hidden = self.encoder_trunk.forward_array(self._with_class_array(x, labels))
        mu = sigmoid_forward(self.mu_head.forward_array(hidden))
        log_var = self.log_var_head.forward_array(hidden)
        return mu, log_var

    def decode_array(self, z, labels):
        """Graph-free :meth:`decode`: features as a plain ndarray."""
        hidden = self.decoder_trunk.forward_array(self._with_class_array(z, labels))
        return sigmoid_forward(self.output_head.forward_array(hidden))

    def reconstruct(self, x, labels):
        """Deterministic eval-mode reconstruction (z = mu), as ndarray."""
        self.eval()
        mu, _ = self.encode_array(x, labels)
        return self.decode_array(mu, labels)

    def sample_latent(self, x, labels):
        """Eval-mode stochastic latent samples, as ndarray.

        Encoding runs graph-free; the sample itself reuses the single
        :meth:`reparameterize` implementation (under ``no_grad``) so the
        sigma formula and its log-var floor live in exactly one place.
        """
        self.eval()
        mu, log_var = self.encode_array(x, labels)
        with no_grad():
            return self.reparameterize(Tensor(mu), Tensor(log_var)).data

    def decode_latent(self, z, labels):
        """Eval-mode decode of plain latent ndarray (graph-free)."""
        self.eval()
        return self.decode_array(z, labels)

"""The black-box classifier the counterfactuals must flip.

Section III-C, "Model Steps": *"At first, we train a black box model, in
this case two linear layers, to classify the input data into two
classes."*  This module implements exactly that — a two-linear-layer
network with a ReLU in between — plus its training loop.  The trained
model is frozen and reused by every explainer (ours and the baselines)
for validity prediction.
"""

from __future__ import annotations

import numpy as np

from ..nn import SGD, Adam, Linear, Module, ReLU, Sequential, bce_with_logits
from ..nn.functional import sigmoid_forward
from ..utils.validation import check_2d, check_2d_fast, check_binary_labels

__all__ = ["BlackBoxClassifier", "train_classifier", "accuracy"]


class BlackBoxClassifier(Module):
    """Two-linear-layer binary classifier.

    Parameters
    ----------
    n_features:
        Width of the encoded input.
    hidden:
        Width of the single hidden layer (default 16).
    rng:
        Seeded generator for weight init.
    """

    def __init__(self, n_features, rng, hidden=16):
        super().__init__()
        self.n_features = n_features
        self.hidden = hidden
        self.network = Sequential(
            Linear(n_features, hidden, rng, init="he"),
            ReLU(),
            Linear(hidden, 1, rng, init="xavier"),
        )

    def forward(self, x):
        """Raw logits of shape (batch,); positive favours class 1."""
        return self.network(x).reshape(-1)

    # -- inference helpers (graph-free fast path) --------------------------
    def predict_logits(self, x):
        """Logits as a plain ndarray, via the graph-free fast path.

        Uses :meth:`repro.nn.Module.forward_array`, so no Tensor node is
        allocated — this is the hot validity-check path every explainer
        and the candidate sweep hammer with small batches.
        """
        x = check_2d_fast(x, "x")
        return self.network.forward_array(x).reshape(-1)

    def predict_proba(self, x):
        """P(class = 1) per row."""
        return sigmoid_forward(self.predict_logits(x))

    def predict(self, x):
        """Hard 0/1 predictions."""
        return (self.predict_logits(x) > 0.0).astype(int)


def accuracy(model, x, y):
    """Fraction of rows of ``x`` classified as ``y``."""
    y = check_binary_labels(y, "y")
    return float((model.predict(x) == y).mean())


def train_classifier(model, x, y, epochs=30, lr=0.05, batch_size=256,
                     rng=None, optimizer="adam", balanced=False, verbose=False):
    """Train the black-box classifier with mini-batch BCE.

    With ``balanced=True`` examples are weighted inversely to their class
    frequency, which keeps the classifier from collapsing to the majority
    class on skewed datasets (KDD Census has ~12% positives).

    Returns the per-epoch mean loss history.  The classifier is left in
    eval mode, ready to be frozen inside the explainers.
    """
    x = check_2d(x, "x")
    y = check_binary_labels(y, "y").astype(np.float64)
    if len(x) != len(y):
        raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
    rng = rng or np.random.default_rng(0)

    sample_weights = None
    if balanced:
        positive_rate = float(y.mean())
        if 0.0 < positive_rate < 1.0:
            weight_pos = 0.5 / positive_rate
            weight_neg = 0.5 / (1.0 - positive_rate)
            sample_weights = np.where(y == 1.0, weight_pos, weight_neg)

    if optimizer == "adam":
        opt = Adam(model.parameters(), lr=lr)
    elif optimizer == "sgd":
        opt = SGD(model.parameters(), lr=lr, momentum=0.9)
    else:
        raise ValueError(f"unknown optimizer {optimizer!r}")

    model.train()
    history = []
    n_rows = len(x)
    for epoch in range(epochs):
        order = rng.permutation(n_rows)
        losses = []
        for start in range(0, n_rows, batch_size):
            batch = order[start:start + batch_size]
            opt.zero_grad()
            logits = model.forward(x[batch])
            batch_weights = None if sample_weights is None else sample_weights[batch]
            loss = bce_with_logits(logits, y[batch], weights=batch_weights)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}  bce={history[-1]:.4f}")
    model.eval()
    return history

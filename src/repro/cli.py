"""Command-line interface for regenerating the paper's artifacts.

Usage (after ``pip install -e .``)::

    python -m repro.cli table1 --scale fast
    python -m repro.cli table4 --dataset adult --scale smoke
    python -m repro.cli figure6 --dataset law_school --out results/
    python -m repro.cli all --scale fast --out results/fast

Each command prints the rendered artifact and optionally writes it to
``--out``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

__all__ = ["build_parser", "main"]

_DATASETS = ("adult", "kdd_census", "law_school")
_DATASET_LABELS = {
    "adult": "Adult Income dataset",
    "kdd_census": "KDD-Census Income dataset",
    "law_school": "Law School dataset",
}


def build_parser():
    """Construct the argparse parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate tables/figures of the feasible-counterfactual paper.")
    parser.add_argument("command",
                        choices=["table1", "table2", "table3", "table4",
                                 "table5", "figure6", "discover", "serve-demo",
                                 "run-scenario", "list-scenarios", "all"],
                        help="which artifact to regenerate")
    parser.add_argument("--dataset", choices=_DATASETS, default="adult",
                        help="dataset for table4/table5/figure6/discover")
    parser.add_argument("--scale", default="fast",
                        choices=["smoke", "fast", "standard", "paper"],
                        help="experiment scale (see repro.experiments.SCALES)")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument("--out", default=None,
                        help="directory to also write artifacts into")
    parser.add_argument("--artifact-dir", default="artifacts",
                        help="pipeline artifact store directory (serve-demo)")
    parser.add_argument("--rows", type=int, default=128,
                        help="batch size the serve-demo answers")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="serve-demo replica count: N > 1 serves the "
                             "batch through a consistent-hash-routed "
                             "WorkerPool of N warm replicas sharing one "
                             "pipeline and prints per-replica stats")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="serve-demo answers through the asyncio "
                             "coalescing front (single-row requests "
                             "micro-batched into pool flushes) instead of "
                             "one synchronous batch call")
    parser.add_argument("--scenario", default=None,
                        help="registered scenario name, e.g. adult/face "
                             "(run-scenario)")
    parser.add_argument("--strategy", default=None,
                        help="strategy name filter (list-scenarios) or the "
                             "strategy serve-demo serves instead of the core "
                             "generator, e.g. dice_random")
    parser.add_argument("--density", default=None,
                        choices=["knn", "kde", "latent"],
                        help="density estimator: run-scenario runs the "
                             "scenario's density variant; serve-demo fits it, "
                             "persists it to the artifact store and serves "
                             "density-aware from the warm start")
    parser.add_argument("--density-backend", default=None,
                        choices=["exact", "ann"],
                        help="neighbour backend for the density estimator: "
                             "run-scenario overrides the scenario's "
                             "density_backend field; serve-demo re-indexes "
                             "the served density overlay (requires "
                             "--density). 'exact' is the bit-identical "
                             "default; 'ann' runs the batched IVF index for "
                             "large reference populations")
    parser.add_argument("--causal", default=None,
                        choices=["scm", "mined"],
                        help="causal model: run-scenario runs the scenario's "
                             "causal variant (candidates repaired before "
                             "feasibility); serve-demo fits it, persists it "
                             "to the artifact store and serves causally "
                             "repaired from the warm start")
    parser.add_argument("--ensemble", type=int, default=None, metavar="K",
                        help="ensemble size: run-scenario runs the scenario's "
                             "+robust variant with K retrained black-box "
                             "members scoring every candidate; serve-demo "
                             "trains the ensemble, persists it to the "
                             "artifact store and serves robust-aware from "
                             "the warm start")
    parser.add_argument("--inloss", action="store_true",
                        help="run-scenario runs the scenario's +inloss "
                             "variant: the core CF-VAE trained under the "
                             "six-part objective with differentiable "
                             "density and causal terms (ours_* strategies "
                             "only)")
    parser.add_argument("--engine", default=None,
                        choices=["staged", "plan"],
                        help="run-scenario execution path: 'staged' runs the "
                             "classic stage-by-stage EngineRunner chain, "
                             "'plan' compiles it into an ExplainPlan and "
                             "replays it fused (default: plan exactly when "
                             "the scenario has a non-default backend "
                             "assigned)")
    parser.add_argument("--backend", default=None,
                        help="plan backend for run-scenario --engine plan "
                             "(e.g. numpy, float32; default: the scenario's "
                             "assigned backend)")
    return parser


def _emit(text, out_dir, name):
    print(text)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / name).write_text(text + "\n")


def _run_table4(dataset, scale, seed, out_dir):
    from .experiments import build_table4, run_table4

    reports = run_table4(dataset, scale=scale, seed=seed, verbose=True)
    text, _ = build_table4(reports, _DATASET_LABELS[dataset])
    _emit(text, out_dir, f"table4_{dataset}.txt")


def _run_table5(dataset, scale, seed, out_dir):
    from .core import FeasibleCFExplainer, paper_config
    from .experiments import build_table5, prepare_context

    context = prepare_context(dataset, scale=scale, seed=seed)
    explainer = FeasibleCFExplainer(
        context.bundle.encoder, constraint_kind="binary",
        config=paper_config(dataset, "binary"),
        blackbox=context.blackbox, seed=seed)
    explainer.fit(context.x_train, context.y_train)
    batch = explainer.explain(context.x_explain, context.desired)
    _emit(build_table5(batch)[0], out_dir, f"table5_{dataset}.txt")


def _run_figure6(dataset, scale, seed, out_dir):
    from .experiments import build_figure6

    figure = build_figure6(dataset, scale=scale, seed=seed)
    _emit(figure.render(), out_dir, f"figure6_{dataset}.txt")


def _run_discover(dataset, scale, seed, out_dir):
    from .constraints import ConstraintMiner
    from .data import load_dataset
    from .experiments import get_scale
    from .utils.tables import render_table

    scale_obj = get_scale(scale)
    bundle = load_dataset(dataset, n_instances=scale_obj.instances_for(dataset),
                          seed=seed)
    relations = ConstraintMiner(bundle.encoder).mine(bundle.frame,
                                                     max_relations=10)
    rows = [[r.cause, r.effect, r.rank_correlation, r.floor_monotonicity,
             r.suggested_slope] for r in relations]
    text = render_table(
        ["cause", "effect", "rho", "floor-mono", "slope"], rows,
        title=f"Discovered constraints ({dataset})", digits=3)
    _emit(text, out_dir, f"discovered_{dataset}.txt")


def _run_serve_demo(dataset, scale, seed, out_dir, artifact_dir, rows,
                    strategy_name=None, density_name=None,
                    density_backend=None, causal_name=None,
                    ensemble_size=None, workers=1, use_async=False):
    """Train-or-load an artifact, then serve a warm-start batch twice.

    Demonstrates the full serving loop: ensure a fresh artifact in the
    store (training only when missing/stale), warm-start an
    ExplanationService from disk, answer a batch, answer it again from
    the result cache, and report the cold/warm timings.  With
    ``--strategy`` the service serves that baseline strategy (fitted on
    the training split) on top of the warm-started pipeline instead of
    the core generator.  With ``--density`` the named estimator is
    fitted on the desired-class training rows, persisted next to the
    artifact and served from the warm start (``density="store"``): the
    default core path then picks each row's counterfactual from a
    diverse candidate sweep by the Figure 3 proximity+density score,
    while single-candidate baseline strategies gain density scoring and
    density-fingerprinted caching without a selection change.  With
    ``--causal`` the named causal model is fitted on the training split,
    persisted next to the artifact and served from the warm start
    (``causal="store"``): every served batch is causally repaired before
    validity/feasibility, whichever strategy answers it.  With
    ``--ensemble K`` a K-member black-box ensemble (the artifact's own
    model plus K-1 retrained variants) is trained, persisted next to the
    artifact and served from the warm start (``ensemble="store"``):
    every served batch is scored against all members and quorum-robust
    candidates win selection.

    With ``--workers N`` (N > 1) or ``--async`` the same batch is
    additionally served through the scaled tier: a
    :class:`repro.serve.WorkerPool` of N warm replicas sharing one
    pipeline (shared-memory weights, one compiled execution state,
    consistent-hash routing), answered either as one routed batch call
    or — with ``--async`` — one row at a time through the
    :class:`repro.serve.AsyncExplanationService` coalescing front.  A
    per-replica stats table (requests, cache hit rate, mean coalesced
    batch size) from the pool-level ``stats()`` aggregation is printed
    below the timings.
    """
    import time

    from .core import fast_config
    from .serve import ArtifactStore, ExplanationService
    from .utils.tables import render_table

    store = ArtifactStore(artifact_dir)
    start = time.perf_counter()
    pipeline, was_cached = store.ensure(
        dataset, scale=scale, seed=seed, config=fast_config())
    ensure_seconds = time.perf_counter() - start
    name = store.default_name(dataset, pipeline.constraint_kind, seed)

    from .serve import load_bundle

    bundle = pipeline.bundle or load_bundle(dataset, scale=scale, seed=seed)
    x_test, _ = bundle.split("test")
    batch = x_test[:max(1, rows)]

    start = time.perf_counter()
    strategy = None
    if strategy_name is not None:
        from .engine import build_strategy

        strategy = build_strategy(
            strategy_name, pipeline.encoder, pipeline.blackbox,
            dataset=dataset, seed=seed)
        strategy.fit(*bundle.split("train"))
    fit_seconds = time.perf_counter() - start

    density = None
    fit_density_seconds = 0.0
    if density_name is not None:
        from .density import fit_class_density

        start = time.perf_counter()
        x_train, y_train = bundle.split("train")
        model = fit_class_density(
            density_name, x_train, y_train, bundle.schema.desired_class,
            vae=pipeline.explainer.generator.vae)
        store.save_overlay(name, "density", model)
        density = "store"  # prove the round trip: serve from disk state
        fit_density_seconds = time.perf_counter() - start

    causal = None
    fit_causal_seconds = 0.0
    if causal_name is not None:
        from .causal import fit_causal

        start = time.perf_counter()
        x_train, y_train = bundle.split("train")
        model = fit_causal(causal_name, pipeline.encoder, x_train, y_train)
        store.save_overlay(name, "causal", model)
        causal = "store"  # prove the round trip: serve from disk state
        fit_causal_seconds = time.perf_counter() - start

    ensemble = None
    fit_ensemble_seconds = 0.0
    if ensemble_size is not None:
        from .experiments import get_scale
        from .models import train_ensemble

        start = time.perf_counter()
        x_train, y_train = bundle.split("train")
        model = train_ensemble(
            x_train, y_train, n_members=ensemble_size, seed=seed,
            epochs=get_scale(scale).blackbox_epochs,
            include=pipeline.blackbox)
        store.save_overlay(name, "ensemble", model)
        ensemble = "store"  # prove the round trip: serve from disk state
        fit_ensemble_seconds = time.perf_counter() - start

    start = time.perf_counter()
    overlays = {
        kind: spec
        for kind, spec in (("density", density), ("causal", causal),
                           ("ensemble", ensemble))
        if spec is not None
    }
    if density_backend is not None and density_name is None:
        raise SystemExit(
            "--density-backend requires --density on serve-demo: there is "
            "no density overlay to re-index otherwise")
    service = ExplanationService.warm_start(
        store, name, strategy=strategy, overlays=overlays,
        density_backend=density_backend)
    result = service.explain_batch(batch)
    warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    service.explain_batch(batch)
    cached_seconds = time.perf_counter() - start

    stats = service.stats
    served = strategy_name or "core generator"
    if density_name is not None:
        served += f" + {density_name} density"
        if density_backend is not None:
            served += f" ({density_backend})"
    if causal_name is not None:
        served += f" + {causal_name} causal"
    if ensemble_size is not None:
        served += f" + K{ensemble_size} ensemble"
    table_rows = [
        ["ensure artifact", ensure_seconds,
         "cache hit" if was_cached else "cold train + save"],
        ["warm-start batch", warm_seconds,
         f"{len(batch)} rows, validity {result.validity_rate:.2f}"],
        ["cached batch", cached_seconds,
         f"{stats['cache_hits']} cache hits"],
    ]
    if ensemble_size is not None:
        table_rows.insert(1, ["fit + persist ensemble", fit_ensemble_seconds,
                              f"K{ensemble_size}, served from store state"])
    if causal_name is not None:
        table_rows.insert(1, ["fit + persist causal", fit_causal_seconds,
                              f"{causal_name}, served from store state"])
    if density_name is not None:
        table_rows.insert(1, ["fit + persist density", fit_density_seconds,
                              f"{density_name}, served from store state"])
    if strategy is not None:
        table_rows.insert(1, ["fit strategy", fit_seconds, served])

    pool_table = None
    if workers > 1 or use_async:
        from .serve import AsyncExplanationService, WorkerPool

        start = time.perf_counter()
        pool = WorkerPool(store, name, n_replicas=max(1, workers),
                          strategy=strategy, overlays=overlays)
        pool_warm_seconds = time.perf_counter() - start
        try:
            start = time.perf_counter()
            if use_async:
                import asyncio

                async def _serve_async():
                    front = AsyncExplanationService(pool)
                    results = await front.explain_many(batch)
                    await front.aclose()
                    return results

                async_results = asyncio.run(_serve_async())
                validity = (
                    sum(r["valid"] for r in async_results) / len(batch))
                mode = f"async front ({pool.n_replicas} replicas)"
            else:
                pool_result = pool.explain_batch(batch)
                validity = pool_result.validity_rate
                mode = f"pool batch ({pool.n_replicas} replicas)"
            pool_seconds = time.perf_counter() - start
            pool_stats = pool.stats()
        finally:
            pool.close()
        table_rows.append(
            ["warm-start pool", pool_warm_seconds,
             f"{pool.n_replicas} replicas, shared weights "
             f"{pool_stats['aggregate']['shared_weight_bytes']} bytes"])
        table_rows.append(
            [mode, pool_seconds,
             f"{len(batch)} rows, validity {validity:.2f}"])
        replica_rows = [
            [entry["replica"], entry["requests"],
             f"{100 * entry['hit_rate']:.1f}%",
             round(entry["mean_batch_size"], 2)]
            for entry in pool_stats["per_replica"]
        ]
        aggregate = pool_stats["aggregate"]
        replica_rows.append(
            ["all", aggregate["requests"],
             f"{100 * aggregate['hit_rate']:.1f}%",
             round(aggregate["mean_batch_size"], 2)])
        pool_table = render_table(
            ["replica", "requests", "cache hit rate", "mean batch size"],
            replica_rows,
            title=f"POOL STATS ({aggregate['replicas']} replicas, "
                  f"{aggregate['backend']} backend)")

    table = render_table(
        ["stage", "seconds", "detail"], table_rows,
        title=f"SERVE DEMO ({dataset}, artifact {name}, strategy {served})",
        digits=4)
    if pool_table is not None:
        table = f"{table}\n\n{pool_table}"
    _emit(table, out_dir, f"serve_demo_{dataset}.txt")


def _run_scenario(scenario_name, scale, seed, out_dir, density=None,
                  density_backend=None, causal=None, ensemble=None,
                  engine=None, backend=None, inloss=False):
    """Run one registered scenario and print its Table IV-style row.

    ``density`` / ``causal`` switch to the scenario's ``+<model>``
    registry variant (building an ad-hoc variant when none is
    registered, e.g. ``latent`` on a baseline — which then fails with
    the registry's clear error instead of a silent fallback); ``inloss``
    does the same for the ``+inloss`` six-part-objective variant.
    ``ensemble`` switches to the ``+robust`` variant, resized to K
    members when K differs from the registered default.
    ``density_backend`` overrides the scenario's neighbour backend (an
    ``@ann`` ad-hoc variant) without touching the registry.  ``engine`` /
    ``backend`` pick the execution path (staged chain vs compiled
    :class:`repro.engine.ExplainPlan`) and the plan backend.
    """
    import dataclasses

    from .engine import get_scenario, run_scenario
    from .utils.tables import render_table

    scenario = get_scenario(scenario_name)
    if inloss and not scenario.inloss:
        variant = f"{scenario.name}+inloss"
        try:
            scenario = get_scenario(variant)
        except KeyError:
            # ad-hoc variant; non-ours strategies fail with the
            # registry's clear validation error below
            from .engine.scenarios import register_scenario

            scenario = register_scenario(
                dataclasses.replace(scenario, name=variant, inloss=True))
    for field_name, wanted in (("density", density), ("causal", causal)):
        if wanted is None or getattr(scenario, field_name) == wanted:
            continue
        variant = f"{scenario.name}+{wanted}"
        try:
            scenario = get_scenario(variant)
        except KeyError:
            scenario = dataclasses.replace(
                scenario, name=variant, **{field_name: wanted})
    if density_backend is not None and scenario.density_backend != density_backend:
        scenario = dataclasses.replace(
            scenario, name=f"{scenario.name}@{density_backend}",
            density_backend=density_backend)
    if ensemble is not None and scenario.ensemble == 0:
        variant = f"{scenario.name}+robust"
        try:
            scenario = get_scenario(variant)
        except KeyError:
            scenario = dataclasses.replace(scenario, name=variant)
    if ensemble is not None and scenario.ensemble != ensemble:
        scenario = dataclasses.replace(scenario, ensemble=ensemble)
    result = run_scenario(scenario, scale=scale, seed=seed, engine=engine,
                          backend=backend)
    report = result.report
    rows = [
        ["validity", report.validity],
        ["feasibility (unary)", report.feasibility_unary],
        ["feasibility (binary)", report.feasibility_binary],
        ["continuous proximity", report.continuous_proximity],
        ["categorical proximity", report.categorical_proximity],
        ["sparsity", report.sparsity],
        ["density (mean kNN dist)", report.mean_knn_distance],
        ["causal plausibility (%)", report.causal_plausibility],
        ["cross-model validity (%)", report.cross_model_validity],
        ["robust validity (%)", report.robust_validity],
        ["rows explained", result.n_explained],
        ["blackbox accuracy", result.blackbox_accuracy],
    ]
    text = render_table(
        ["metric", "value"],
        [[label, "-" if value is None else value] for label, value in rows],
        title=f"SCENARIO {scenario.name} (scale {scale})", digits=2)
    safe = scenario_file_name(scenario.name)
    _emit(text, out_dir, f"scenario_{safe}.txt")


def scenario_file_name(name):
    """Scenario name as a filesystem-safe artifact file stem."""
    return name.replace("/", "_")


def _run_list_scenarios(strategy, out_dir):
    """Print the scenario registry, optionally filtered by strategy."""
    from .engine import iter_scenarios
    from .utils.tables import render_table

    rows = [[s.name, s.dataset, s.strategy, s.constraint_kind, s.desired,
             s.density or "-", s.causal or "-",
             f"K{s.ensemble}" if s.ensemble else "-",
             "six-part" if s.inloss else "-"]
            for s in iter_scenarios(strategy=strategy)]
    text = render_table(
        ["scenario", "dataset", "strategy", "kind", "desired", "density",
         "causal", "robust", "inloss"], rows,
        title=f"Scenario registry ({len(rows)} entries)")
    _emit(text, out_dir, "scenarios.txt")


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    out_dir = pathlib.Path(args.out) if args.out else None

    from .experiments import build_table1, build_table2, build_table3

    if args.command in ("table1", "all"):
        _emit(build_table1(scale=args.scale, seed=args.seed)[0],
              out_dir, "table1.txt")
    if args.command in ("table2", "all"):
        _emit(build_table2(n_features=9)[0], out_dir, "table2.txt")
    if args.command in ("table3", "all"):
        _emit(build_table3()[0], out_dir, "table3.txt")
    if args.command == "table4":
        _run_table4(args.dataset, args.scale, args.seed, out_dir)
    if args.command == "table5":
        _run_table5(args.dataset, args.scale, args.seed, out_dir)
    if args.command == "figure6":
        _run_figure6(args.dataset, args.scale, args.seed, out_dir)
    if args.command == "discover":
        _run_discover(args.dataset, args.scale, args.seed, out_dir)
    if args.command == "serve-demo":
        _run_serve_demo(args.dataset, args.scale, args.seed, out_dir,
                        args.artifact_dir, args.rows,
                        strategy_name=args.strategy,
                        density_name=args.density,
                        density_backend=args.density_backend,
                        causal_name=args.causal,
                        ensemble_size=args.ensemble,
                        workers=args.workers,
                        use_async=args.use_async)
    if args.command == "run-scenario":
        if args.scenario is None:
            print("run-scenario requires --scenario (see list-scenarios)")
            return 2
        _run_scenario(args.scenario, args.scale, args.seed, out_dir,
                      density=args.density,
                      density_backend=args.density_backend,
                      causal=args.causal,
                      ensemble=args.ensemble, engine=args.engine,
                      backend=args.backend, inloss=args.inloss)
    if args.command == "list-scenarios":
        _run_list_scenarios(args.strategy, out_dir)
    if args.command == "all":
        for dataset in _DATASETS:
            _run_table4(dataset, args.scale, args.seed, out_dir)
            _run_figure6(dataset, args.scale, args.seed, out_dir)
        _run_table5("adult", args.scale, args.seed, out_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Experiment harness: train once, run every method, collect Table IV rows.

``prepare_context`` loads a dataset and trains the shared black-box;
``run_method`` trains/fits one explainer and evaluates it; ``run_table4``
produces the full method-comparison table for one dataset in the paper's
row order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import (
    CCHVAEExplainer,
    CEMExplainer,
    DiceRandomExplainer,
    FACEExplainer,
    MahajanExplainer,
    ReviseExplainer,
)
from ..core import FeasibleCFExplainer, paper_config
from ..metrics import ProximityStats, evaluate_counterfactuals
from ..models import accuracy
from .runconfig import get_scale

__all__ = ["ExperimentContext", "prepare_context", "run_method", "run_table4",
           "TABLE4_METHOD_ORDER"]

#: Row order of the paper's Table IV.
TABLE4_METHOD_ORDER = (
    "mahajan_unary", "mahajan_binary",
    "revise", "cchvae", "cem", "dice_random", "face",
    "ours_unary", "ours_binary",
)


@dataclass
class ExperimentContext:
    """Shared state for one dataset's experiments."""

    bundle: object
    blackbox: object
    stats: ProximityStats
    x_train: np.ndarray
    y_train: np.ndarray
    x_explain: np.ndarray
    desired: np.ndarray
    scale: object
    seed: int
    blackbox_accuracy: float

    @property
    def dataset(self):
        """Dataset name."""
        return self.bundle.name


def prepare_context(dataset, scale="fast", seed=0, store=None,
                    constraint_kind="unary"):
    """Load data, train the shared black-box, pick the rows to explain.

    The explained rows are test-split instances the classifier assigns to
    the undesired class (the loan-denied population of the paper's
    motivating example), capped at ``scale.n_explain``.

    The build/train code itself lives in :mod:`repro.serve.pipeline` and
    is shared with the serving path; this function is a thin wrapper that
    adds the experiment-specific state (proximity stats, explain rows).
    With ``store`` (a :class:`repro.serve.ArtifactStore`) the shared
    black-box warm-starts from a fresh artifact instead of retraining —
    a stale or missing artifact is trained and saved transparently.
    """
    # Imported lazily: repro.serve imports this package for get_scale.
    from ..serve.pipeline import load_bundle, train_shared_blackbox

    scale = get_scale(scale)
    bundle = load_bundle(dataset, scale=scale, seed=seed)
    x_train, y_train = bundle.split("train")
    x_test, y_test = bundle.split("test")

    if store is None:
        blackbox = train_shared_blackbox(bundle, scale.blackbox_epochs, seed)
    else:
        pipeline, _ = store.ensure(
            dataset, scale=scale, seed=seed, constraint_kind=constraint_kind,
            bundle=bundle)
        blackbox = pipeline.blackbox

    undesired = bundle.schema.desired_class ^ 1
    explain_mask = blackbox.predict(x_test) == undesired
    x_explain = x_test[explain_mask][:scale.n_explain]
    desired = np.full(len(x_explain), bundle.schema.desired_class, dtype=int)

    return ExperimentContext(
        bundle=bundle,
        blackbox=blackbox,
        stats=ProximityStats(bundle.encoder).fit(x_train),
        x_train=x_train,
        y_train=y_train,
        x_explain=x_explain,
        desired=desired,
        scale=scale,
        seed=seed,
        blackbox_accuracy=accuracy(blackbox, x_test, y_test),
    )


def _build_method(context, method_name):
    """Instantiate (explainer, report_kinds, generate callable)."""
    encoder = context.bundle.encoder
    blackbox = context.blackbox
    dataset = context.dataset
    seed = context.seed

    if method_name in ("ours_unary", "ours_binary"):
        kind = method_name.split("_")[1]
        explainer = FeasibleCFExplainer(
            encoder, constraint_kind=kind, config=paper_config(dataset, kind),
            blackbox=blackbox, seed=seed)
        explainer.fit(context.x_train, context.y_train)
        return explainer, (kind,), \
            lambda x, desired: explainer.explain(x, desired).x_cf
    if method_name in ("mahajan_unary", "mahajan_binary"):
        kind = method_name.split("_")[1]
        explainer = MahajanExplainer(
            encoder, blackbox, constraint_kind=kind,
            config=paper_config(dataset, kind), seed=seed)
        explainer.fit(context.x_train, context.y_train)
        return explainer, (kind,), explainer.generate

    classes = {
        "revise": ReviseExplainer,
        "cchvae": CCHVAEExplainer,
        "cem": CEMExplainer,
        "dice_random": DiceRandomExplainer,
        "face": FACEExplainer,
    }
    if method_name not in classes:
        raise KeyError(f"unknown method {method_name!r}; "
                       f"options: {TABLE4_METHOD_ORDER}")
    explainer = classes[method_name](encoder, blackbox, seed=seed)
    explainer.fit(context.x_train, context.y_train)
    return explainer, ("unary", "binary"), explainer.generate


def run_method(context, method_name):
    """Fit one method and return its :class:`MethodReport` (Table IV row)."""
    _, report_kinds, generate = _build_method(context, method_name)
    x_cf = generate(context.x_explain, context.desired)
    return evaluate_counterfactuals(
        method_name, context.x_explain, x_cf, context.desired,
        context.blackbox, context.bundle.encoder, stats=context.stats,
        report_kinds=report_kinds)


def run_table4(dataset, scale="fast", seed=0, methods=TABLE4_METHOD_ORDER,
               verbose=False):
    """Run every Table IV method on ``dataset``; returns the report list."""
    context = prepare_context(dataset, scale=scale, seed=seed)
    reports = []
    for method_name in methods:
        report = run_method(context, method_name)
        reports.append(report)
        if verbose:
            print(f"  {method_name:<14} validity={report.validity:6.2f} "
                  f"sparsity={report.sparsity:5.2f}")
    return reports

"""Experiment harness: train once, run every method, collect Table IV rows.

``prepare_context`` loads a dataset and trains the shared black-box;
``run_method`` runs one scenario of the engine's registry against that
context; ``run_table4`` sweeps the dataset's full scenario row in the
paper's order.  All method construction and evaluation plumbing lives in
:mod:`repro.engine` — the harness only owns the experiment state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import EngineRunner, get_scenario, run_scenario
from ..engine.strategy import STRATEGY_NAMES
from ..metrics import ProximityStats
from ..models import accuracy
from .runconfig import get_scale

__all__ = ["ExperimentContext", "prepare_context", "run_method", "run_table4",
           "TABLE4_METHOD_ORDER"]

#: Row order of the paper's Table IV (the engine's strategy name order).
TABLE4_METHOD_ORDER = STRATEGY_NAMES


@dataclass
class ExperimentContext:
    """Shared state for one dataset's experiments."""

    bundle: object
    blackbox: object
    stats: ProximityStats
    x_train: np.ndarray
    y_train: np.ndarray
    x_explain: np.ndarray
    desired: np.ndarray
    scale: object
    seed: int
    blackbox_accuracy: float

    @property
    def dataset(self):
        """Dataset name."""
        return self.bundle.name


def prepare_context(dataset, scale="fast", seed=0, store=None,
                    constraint_kind="unary"):
    """Load data, train the shared black-box, pick the rows to explain.

    The explained rows are test-split instances the classifier assigns to
    the undesired class (the loan-denied population of the paper's
    motivating example), capped at ``scale.n_explain``.

    The build/train code itself lives in :mod:`repro.serve.pipeline` and
    is shared with the serving path; this function is a thin wrapper that
    adds the experiment-specific state (proximity stats, explain rows).
    With ``store`` (a :class:`repro.serve.ArtifactStore`) the shared
    black-box warm-starts from a fresh artifact instead of retraining —
    a stale or missing artifact is trained and saved transparently.
    """
    # Imported lazily: repro.serve imports this package for get_scale.
    from ..serve.pipeline import load_bundle, train_shared_blackbox

    scale = get_scale(scale)
    bundle = load_bundle(dataset, scale=scale, seed=seed)
    x_train, y_train = bundle.split("train")
    x_test, y_test = bundle.split("test")

    if store is None:
        blackbox = train_shared_blackbox(bundle, scale.blackbox_epochs, seed)
    else:
        pipeline, _ = store.ensure(
            dataset, scale=scale, seed=seed, constraint_kind=constraint_kind,
            bundle=bundle)
        blackbox = pipeline.blackbox

    undesired = bundle.schema.desired_class ^ 1
    explain_mask = blackbox.predict(x_test) == undesired
    x_explain = x_test[explain_mask][:scale.n_explain]
    desired = np.full(len(x_explain), bundle.schema.desired_class, dtype=int)

    return ExperimentContext(
        bundle=bundle,
        blackbox=blackbox,
        stats=ProximityStats(bundle.encoder).fit(x_train),
        x_train=x_train,
        y_train=y_train,
        x_explain=x_explain,
        desired=desired,
        scale=scale,
        seed=seed,
        blackbox_accuracy=accuracy(blackbox, x_test, y_test),
    )


def run_method(context, method_name, runner=None):
    """Fit one method and return its :class:`MethodReport` (Table IV row).

    A thin wrapper over the engine's scenario registry: the scenario
    named ``"<dataset>/<method>"`` runs against the already-prepared
    context, so the shared black-box trains exactly once per sweep.
    """
    scenario = get_scenario(f"{context.dataset}/{method_name}")
    result = run_scenario(scenario, context=context, runner=runner)
    return result.report


def run_table4(dataset, scale="fast", seed=0, methods=TABLE4_METHOD_ORDER,
               verbose=False):
    """Run every Table IV method on ``dataset``; returns the report list."""
    context = prepare_context(dataset, scale=scale, seed=seed)
    runner = EngineRunner(context.bundle.encoder, context.blackbox)
    reports = []
    for method_name in methods:
        report = run_method(context, method_name, runner=runner)
        reports.append(report)
        if verbose:
            print(f"  {method_name:<14} validity={report.validity:6.2f} "
                  f"sparsity={report.sparsity:5.2f}")
    return reports

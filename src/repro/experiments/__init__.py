"""Experiment harness: regenerate every table and figure of the paper."""

from .density_scale import DEFAULT_SIZES, run_density_at_scale
from .figures import Figure6Result, ManifoldView, build_figure6
from .perfbench import PERF_SCALES, PRE_PR_BASELINE, run_perfbench, write_bench
from .harness import (
    TABLE4_METHOD_ORDER,
    ExperimentContext,
    prepare_context,
    run_method,
    run_table4,
)
from .runconfig import SCALES, ExperimentScale, get_scale
from .tables import build_table1, build_table2, build_table3, build_table4, build_table5

__all__ = [
    "ExperimentScale", "SCALES", "get_scale",
    "ExperimentContext", "prepare_context", "run_method", "run_table4",
    "TABLE4_METHOD_ORDER",
    "build_table1", "build_table2", "build_table3", "build_table4", "build_table5",
    "ManifoldView", "Figure6Result", "build_figure6",
    "PERF_SCALES", "PRE_PR_BASELINE", "run_perfbench", "write_bench",
    "DEFAULT_SIZES", "run_density_at_scale",
]

"""Figure 6 reproduction: t-SNE manifolds of the CF-VAE latent space.

Following Section IV-E: sample points from the latent space of the
trained model, decode them into counterfactual examples, label each 0/1
by whether it satisfies the causal constraints, then t-SNE the latent
vectors into 2-D for three views — the training data, the latent samples
and the decoded (predicted) examples.  Separability of the feasible and
infeasible regions is quantified with the density diagnostics instead of
eyeballing colours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FeasibleCFExplainer, paper_config
from ..manifold import TSNE, centroid_separation, knn_label_agreement, render_scatter
from .harness import prepare_context

__all__ = ["ManifoldView", "Figure6Result", "build_figure6"]


@dataclass
class ManifoldView:
    """One of the three panels: embedding + feasibility labels + metrics."""

    name: str
    embedding: np.ndarray
    labels: np.ndarray
    knn_agreement: float
    centroid_separation: float

    def render(self, width=72, height=22):
        """ASCII scatter of the panel."""
        title = (f"{self.name}: knn-agreement={self.knn_agreement:.2f}, "
                 f"centroid-separation={self.centroid_separation:.2f}")
        return render_scatter(self.embedding, self.labels,
                              width=width, height=height, title=title)


@dataclass
class Figure6Result:
    """Figure 6 for one dataset: the three manifold views."""

    dataset: str
    views: list

    def render(self):
        """All panels, stacked."""
        header = f"Figure 6 ({self.dataset}): latent-space manifolds"
        return "\n\n".join([header] + [view.render() for view in self.views])


def build_figure6(dataset, scale="fast", seed=0, n_points=400,
                  constraint_kind="binary", tsne_iterations=400,
                  context=None, explainer=None):
    """Reproduce Figure 6 for one dataset.

    Returns a :class:`Figure6Result` with three :class:`ManifoldView`
    panels (training data, latent samples, decoded examples), each
    labelled feasible (1) / infeasible (0) by the constraint set of the
    trained model.
    """
    if context is None:
        context = prepare_context(dataset, scale=scale, seed=seed)
    if explainer is None:
        explainer = FeasibleCFExplainer(
            context.bundle.encoder, constraint_kind=constraint_kind,
            config=paper_config(dataset, constraint_kind),
            blackbox=context.blackbox, seed=seed)
        explainer.fit(context.x_train, context.y_train)

    rng = np.random.default_rng(seed + 99)
    n_points = min(n_points, len(context.x_train))
    picked = rng.choice(len(context.x_train), n_points, replace=False)
    x = context.x_train[picked]
    desired = 1 - context.blackbox.predict(x)

    # latent samples for the picked inputs, then decode + project
    vae = explainer.generator.vae
    z = vae.sample_latent(x, desired)
    decoded = vae.decode_latent(z, desired)
    decoded = explainer.projector.project(x, decoded)
    feasible = explainer.constraints.satisfied(x, decoded).astype(int)

    views = []
    for name, matrix in (("training data", x),
                         ("latent samples", z),
                         ("predicted examples", decoded)):
        perplexity = max(5.0, min(30.0, n_points / 8))
        embedding = TSNE(perplexity=perplexity, n_iter=tsne_iterations,
                         seed=seed).fit_transform(matrix)
        if len(np.unique(feasible)) < 2:
            separation = 0.0
        else:
            separation = centroid_separation(embedding, feasible)
        views.append(ManifoldView(
            name=name,
            embedding=embedding,
            labels=feasible,
            knn_agreement=knn_label_agreement(embedding, feasible),
            centroid_separation=separation,
        ))
    return Figure6Result(dataset=dataset, views=views)

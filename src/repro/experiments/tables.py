"""Builders that regenerate every table of the paper's evaluation section.

Each ``build_table*`` returns the rendered text table (and, where useful,
the underlying rows) in the same layout the paper prints.
"""

from __future__ import annotations

import numpy as np

from ..core import PAPER_TABLE3, paper_config
from ..data import load_dataset
from ..models import ConditionalVAE
from ..nn import Linear
from ..utils.tables import render_table
from .runconfig import get_scale

__all__ = ["build_table1", "build_table2", "build_table3", "build_table4",
           "build_table5"]

_DATASET_LABELS = {
    "adult": "Adult",
    "kdd_census": "KDD-Census Income",
    "law_school": "Law School Dataset",
}

_TARGET_LABELS = {
    "adult": "Income",
    "kdd_census": "Income",
    "law_school": "Pass the bar",
}


def build_table1(scale="fast", seed=0):
    """Table I: datasets overview (instances, cleaned, attribute mix, target)."""
    scale = get_scale(scale)
    rows = []
    for name in ("adult", "kdd_census", "law_school"):
        bundle = load_dataset(name, n_instances=scale.instances_for(name),
                              seed=seed)
        categorical, binary, numerical = bundle.schema.type_counts()
        rows.append([
            _DATASET_LABELS[name],
            bundle.n_raw,
            bundle.n_clean,
            f"{categorical}/{binary}/{numerical}",
            _TARGET_LABELS[name],
        ])
    text = render_table(
        ["Datasets", "# Instances", "# Instances (cleaned)",
         "# Attributes (cat/bin/num)", "Target class"],
        rows, title="TABLE I: Datasets: an overview")
    return text, rows


def build_table2(n_features=9):
    """Table II: the VAE's layer-by-layer implementation settings."""
    vae = ConditionalVAE(n_features, np.random.default_rng(0))
    rows = []

    def trunk_rows(part, trunk, final_name, final_layer):
        linears = [m for m in trunk.modules() if isinstance(m, Linear)]
        for index, layer in enumerate(linears, start=1):
            rows.append([part, f"L{index}", layer.in_features,
                         layer.out_features, "ReLU"])
        rows.append([part, f"L{len(linears) + 1} + Sigmoid",
                     final_layer.in_features, final_name, "Sigmoid"])

    trunk_rows("Encoder", vae.encoder_trunk, "Latent space vec.", vae.mu_head)
    trunk_rows("Decoder", vae.decoder_trunk, "Num. Features", vae.output_head)
    text = render_table(
        ["Part", "Layer", "Input", "Output", "Activation"],
        rows, title=f"TABLE II: VAE's implementation settings "
                    f"(Num. Features = {n_features}, latent = {vae.latent_dim})")
    return text, rows


def build_table3():
    """Table III: hyperparameters per dataset and constraint model."""
    rows = []
    for (dataset, kind), row in PAPER_TABLE3.items():
        config = paper_config(dataset, kind)
        rows.append([
            _DATASET_LABELS[dataset],
            f"{kind.capitalize()}-const",
            row["learning_rate"],
            config.batch_size,
            config.epochs,
        ])
    text = render_table(
        ["Datasets", "Method", "Learning rate (paper)", "Batch size", "Epochs"],
        rows, title="TABLE III: Implementation Settings")
    return text, rows


_METHOD_LABELS = {
    "mahajan_unary": "Mahajan et al. Unary",
    "mahajan_binary": "Mahajan et al. Binary",
    "revise": "REVISE",
    "cchvae": "C-CHVAE",
    "cem": "CEM",
    "dice_random": "DiCE random",
    "face": "FACE",
    "ours_unary": "Our method (a) Unary",
    "ours_binary": "Our method (b) Binary",
}


def build_table4(reports, dataset_label=""):
    """Table IV: method comparison from a list of MethodReports."""
    rows = []
    for report in reports:
        rows.append([
            _METHOD_LABELS.get(report.method, report.method),
            report.validity,
            report.feasibility_unary,
            report.feasibility_binary,
            report.continuous_proximity,
            report.categorical_proximity,
            report.sparsity,
        ])
    title = "TABLE IV: Results"
    if dataset_label:
        title += f" ({dataset_label})"
    text = render_table(
        ["Methods", "Validity", "Feasibility/Unary", "Feasibility/Binary",
         "Cont. proximity", "Cat. proximity", "Sparsity"],
        rows, title=title)
    return text, rows


def build_table5(result, index=None):
    """Table V: one successful counterfactual example, decoded to raw values.

    Picks the first row that is both valid and feasible unless ``index``
    is given; returns ``(text, row_index)`` or ``(message, None)`` when no
    row qualifies.
    """
    if index is None:
        qualifying = np.flatnonzero(result.valid & result.feasible)
        if len(qualifying) == 0:
            return "no valid & feasible counterfactual in the batch", None
        index = int(qualifying[0])
    text = "TABLE V: Successful CF example\n" + result.comparison(index)
    return text, index

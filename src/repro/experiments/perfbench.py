"""Engine throughput benchmark: train / predict / candidate generation.

This harness times the three hot paths the ROADMAP north-star cares
about ("as fast as the hardware allows"):

* **train** — black-box classifier training (autograd forward+backward
  +optimiser step), in rows/sec.
* **predict** — repeated request-sized ``BlackBoxClassifier.predict``
  calls (batch 16, the shape of per-request serving traffic), the
  validity-check path every explainer hammers, in rows/sec.  A second
  number covers the float32 fast mode when the engine supports it.
* **candidates** — the density sweep's ``generate_candidates`` (latent
  perturbation, batched decode, black-box validity, constraint
  feasibility), in input rows/sec and decoded candidates/sec.
* **serve** — cold-start (train + persist + answer a batch) vs
  warm-start (load the artifact store + answer the same batch) through
  :class:`repro.serve.ExplanationService`, plus the cache-hit replay
  rate.  Warm-start outputs are asserted bit-identical to the cold
  pipeline before any number is reported.
* **serve_scale** — the horizontally scaled tier
  (:class:`repro.serve.WorkerPool` behind consistent-hash routing) under
  a synthetic heavy-traffic single-row trace at 1, 2 and 4 replicas:
  sustained rows/sec plus per-request p50/p99 latency per replica
  count.  The workload pins the scaling mechanism this box can honestly
  measure — the working set exceeds one replica's LRU capacity but fits
  the pool's aggregate capacity at 4 replicas, so routed cache locality
  (not raw parallelism, which one core cannot provide) carries the
  speedup.  Single-replica async serving is asserted bit-identical to
  the synchronous service before timing, and 4 replicas must sustain
  >= 2x the single-replica rate.
* **constraint-eval** — the compiled feasibility kernel
  (:meth:`repro.constraints.ConstraintSet.compile`) against the
  per-constraint loop evaluator on a candidate-sweep feasibility report
  (AND-flags, per-kind rates, per-constraint rates).  The two outputs
  are asserted identical before timing, and the compiled path must hold
  a >= 3x speedup.
* **causal** — the batched causal repair
  (:meth:`repro.causal.CausalModel.repair_batch`: the full ``(n, m, d)``
  candidate sweep made causally consistent in ONE vectorized
  abduction-action-prediction pass) against the per-row ``_repair_loop``
  a pre-causal-layer stack would run per request.  Outputs are asserted
  bit-identical before timing and the batched path must hold a >= 3x
  speedup; the mined-relation model rides along as an informational
  rate.
* **robust** — the fused K-model ensemble scoring
  (:meth:`repro.models.BlackBoxEnsemble.predict_logits_all`: all K
  member forwards collapsed into ONE stacked GEMM + one einsum
  reduction) against the per-member ``predict_logits_loop`` a
  pre-ensemble stack would run per request.  The workload is the
  serving-request shape (batch 16) — the per-candidate robust-validity
  check ``EngineRunner(ensemble=)`` issues while answering one request
  — where fusing K member dispatches into one pays off; at large
  flattened sweeps the FLOPs are identical and the fused path holds no
  advantage.  Hard predictions are asserted bit-identical (logits agree
  to BLAS-blocking precision) before timing and the fused path must
  hold a >= 3x speedup.
* **plan** — the compiled :class:`repro.engine.ExplainPlan`
  (:meth:`repro.engine.EngineRunner.compile`: the fixed
  project/repair/validity/feasibility/select chain traced once and
  replayed as one fused sweep) against the per-request staged chain a
  pre-plan serving stack runs (one ``EngineRunner.run`` call per row).
  The workload is the C-CHVAE serving shape — a fixed 40-candidate
  sweep per row with a hosted SCM causal model and k-NN density — and
  the compiled path is asserted bit-identical to the batched staged
  path before timing and must hold a >= 3x speedup over the
  per-request chain; the tiled float32 backend rides along as an
  informational rate.
* **density** — the batched density-aware selection
  (:meth:`repro.core.DensityCFSelector.select_batch`: ONE tiled density
  query + one vectorized score pass for the whole sweep) against the
  per-row loop the pre-density-layer selector ran (two score passes per
  row — one in ``select``, one for the diagnostics).  Outputs are
  asserted bit-identical before timing and the batched path must hold a
  >= 3x speedup; the tiled k-NN scorer and the KDE estimator ride along
  as informational rates.

* **inloss** — sample efficiency of the six-part in-objective training
  (:func:`repro.core.inloss_config`): candidates-needed-per-accepted-CF
  at a fixed ``n_candidates`` sweep, four-part post-hoc baseline vs
  in-loss training on a shared black-box, acceptance = valid AND
  feasible AND in-distribution (k-NN distance to the desired-class
  reference within a held-out quantile) AND causally plausible (SCM
  repair fixpoint).  Validity is asserted no
  worse than the baseline and the reduction must hold the
  :data:`MIN_INLOSS_REDUCTION` floor.

The workload is fixed per scale so numbers are comparable across
commits; ``PRE_PR_BASELINE`` pins the numbers measured with this exact
harness on the pre-fast-path engine (commit 55714a9), and the emitted
``BENCH_engine.json`` reports the speedup of the current tree against
that baseline.  Run it with::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py --scale smoke

which writes ``BENCH_engine.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from ..core import FeasibleCFExplainer, fast_config
from ..core.selection import generate_candidates
from ..data import load_dataset
from ..models import BlackBoxClassifier, train_classifier

__all__ = ["INLOSS_CAUSAL_TOLERANCE", "INLOSS_DENSITY_QUANTILE",
           "MIN_ANN_RECALL", "MIN_ANN_SPEEDUP", "MIN_CAUSAL_SPEEDUP",
           "MIN_DENSITY_SPEEDUP", "MIN_INLOSS_REDUCTION",
           "MIN_KERNEL_SPEEDUP",
           "MIN_PLAN_SPEEDUP", "MIN_ROBUST_SPEEDUP",
           "MIN_SERVE_SCALE_SPEEDUP", "PERF_SCALES",
           "PRE_PR_BASELINE", "run_perfbench", "write_bench"]

#: Acceptance floor: the compiled feasibility kernel must beat the
#: per-constraint loop evaluator by at least this factor (the single
#: definition — the bench-runner gate imports it from here).
MIN_KERNEL_SPEEDUP = 3.0

#: Acceptance floor: the tiled density scorer must beat the per-row
#: query loop by at least this factor.
MIN_DENSITY_SPEEDUP = 3.0

#: Acceptance floor: the batched causal repair must beat the per-row
#: repair loop by at least this factor.
MIN_CAUSAL_SPEEDUP = 3.0

#: Acceptance floor: the fused K-model ensemble scoring must beat the
#: per-member prediction loop by at least this factor at the
#: serving-request batch shape.
MIN_ROBUST_SPEEDUP = 3.0

#: Acceptance floor: the compiled explain plan must beat the
#: per-request staged chain by at least this factor on the C-CHVAE
#: serving workload.
MIN_PLAN_SPEEDUP = 3.0

#: Acceptance floor: a 4-replica worker pool must sustain at least this
#: multiple of the single-replica rate on the cache-bound serving trace.
MIN_SERVE_SCALE_SPEEDUP = 2.0

#: Acceptance floor: the ANN density backend must beat the exact
#: cKDTree query rate by at least this factor at 100k+ reference rows
#: (the ``density_at_scale`` bench; smaller sizes are informational —
#: the IVF index only pulls ahead once the exact scan is memory-bound).
MIN_ANN_SPEEDUP = 5.0

#: Acceptance floor: measured recall@k of the ANN backend against the
#: exact neighbours, asserted *before* any timing is recorded — a fast
#: index that returns the wrong neighbours is a bug, not a win.
MIN_ANN_RECALL = 0.9

#: Acceptance floor: training with the in-objective density/causal
#: terms (the six-part loss) must cut candidates-needed-per-accepted-CF
#: by at least this factor against the post-hoc-only four-part baseline
#: at the same fixed ``n_candidates`` — the sample-efficiency claim of
#: the in-loss PR.
MIN_INLOSS_REDUCTION = 2.0

#: Density acceptance for the ``inloss`` section: a candidate counts as
#: in-distribution when its mean k-NN distance to the desired-class
#: reference is no worse than this quantile of *held-out* desired-class
#: rows' own scores (0.5 = at least as close to the manifold as the
#: median real desired-class row).
INLOSS_DENSITY_QUANTILE = 0.5

#: Causal acceptance for the ``inloss`` section: a candidate counts as
#: causally plausible when the SCM repair moves no coordinate by more
#: than this (in encoded [0, 1] units).
INLOSS_CAUSAL_TOLERANCE = 0.1

#: Workload definitions.  ``smoke`` finishes in well under a minute and is
#: what CI runs; ``full`` is for local trajectory tracking.
PERF_SCALES = {
    "smoke": {
        "n_instances": 1500,
        "train_rows": 512,
        "train_epochs": 6,
        "train_batch_size": 128,
        "predict_batch": 16,
        "candidate_rows": 32,
        "n_candidates": 16,
        "cf_epochs": 3,
        "serve_rows": 64,
        "constraint_rows": 64,
        "constraint_candidates": 24,
        "density_reference": 192,
        "density_rows": 96,
        "density_candidates": 16,
        "causal_rows": 96,
        "causal_candidates": 16,
        "robust_members": 8,
        "robust_batch": 16,
        "plan_rows": 48,
        "plan_candidates": 40,
        "serve_scale_rows": 64,
        "serve_scale_cache": 24,
        "serve_scale_passes": 6,
        "serve_scale_replicas": [1, 2, 4],
        "inloss_rows": 24,
        "inloss_candidates": 12,
        "inloss_epochs": 12,
        "min_seconds": 1.0,
    },
    "full": {
        "n_instances": 6000,
        "train_rows": 2048,
        "train_epochs": 10,
        "train_batch_size": 256,
        "predict_batch": 16,
        "candidate_rows": 96,
        "n_candidates": 24,
        "cf_epochs": 6,
        "serve_rows": 256,
        "constraint_rows": 128,
        "constraint_candidates": 32,
        "density_reference": 256,
        "density_rows": 192,
        "density_candidates": 16,
        "causal_rows": 192,
        "causal_candidates": 16,
        "robust_members": 8,
        "robust_batch": 16,
        "plan_rows": 96,
        "plan_candidates": 40,
        "serve_scale_rows": 128,
        "serve_scale_cache": 48,
        "serve_scale_passes": 8,
        "serve_scale_replicas": [1, 2, 4],
        "inloss_rows": 64,
        "inloss_candidates": 16,
        "inloss_epochs": 12,
        "min_seconds": 1.5,
    },
}

#: Throughput (rows/sec) measured with this harness at commit 55714a9,
#: i.e. before the fused-kernel / graph-free / vectorized-candidates
#: fast path landed.  These are the "before" numbers the acceptance
#: criterion compares against; they are overwritten only when the
#: harness workload itself changes.
PRE_PR_BASELINE = {
    "scale": "smoke",
    "train_rows_per_sec": 580000.0,
    "predict_rows_per_sec": 632200.0,
    "candidate_rows_per_sec": 6230.0,
    "candidates_per_sec": 99700.0,
}


def _throughput(fn, rows_per_call, min_seconds, chunks=5, min_calls=3):
    """Peak rows/sec over ``chunks`` timing windows.

    Reporting the best window (like ``timeit.repeat`` + ``min``) filters
    transient interference — host steal time, GC pauses — that would
    otherwise swing single-window numbers by 30% on shared machines.
    """
    fn()  # warm-up (first-call allocations, caches)
    best = 0.0
    total_calls = 0
    window = max(min_seconds / chunks, 0.05)
    for _ in range(chunks):
        calls = 0
        start = time.perf_counter()
        elapsed = 0.0
        while calls < min_calls or elapsed < window:
            fn()
            calls += 1
            elapsed = time.perf_counter() - start
        best = max(best, calls * rows_per_call / elapsed)
        total_calls += calls
    return best, total_calls


def _float32_predict_rate(blackbox, batch, min_seconds, seed):
    """Predict throughput in the float32 fast mode (None if unsupported).

    Clones the trained classifier into float32 parameters
    (``load_state_dict`` casts to the target dtype, and ``state_dict``
    includes frozen parameters) and feeds it a float32 batch, i.e. the
    recommended serving configuration.  Returns ``None`` on engines
    without a dtype mode so the harness also runs against the
    pre-fast-path code.
    """
    try:
        from ..nn import dtype_scope
    except ImportError:
        return None
    from ..models import BlackBoxClassifier as _BlackBox

    with dtype_scope("float32"):
        fast = _BlackBox(blackbox.n_features, np.random.default_rng(seed),
                         hidden=blackbox.hidden)
    fast.load_state_dict(blackbox.state_dict())
    fast.eval()
    batch32 = batch.astype(np.float32)
    disagree = fast.predict(batch32) != blackbox.predict(batch)
    if np.any(disagree & (np.abs(blackbox.predict_logits(batch)) > 1e-4)):
        raise AssertionError("float32 fast mode changed hard predictions")

    def predict_once():
        fast.predict(batch32)

    rate, _ = _throughput(predict_once, len(batch32), min_seconds)
    return rate


def _feasibility_report_loop(encoder, constraints, x, x_cf, m):
    """The pre-engine feasibility workload, per explained candidate sweep.

    Exactly what the stack did before the compiled kernel existed to
    produce one batch's feasibility report: materialise the repeated
    input matrix, AND-flags via the per-constraint loop, rebuild one
    constraint set per kind for the Table IV rates, and one more
    evaluation per constraint for the per-constraint rates.  Kept as the
    throughput *and* parity reference the compiled path is compared
    against.
    """
    from ..constraints import build_constraints
    from ..metrics.scores import feasibility_score

    inputs = np.repeat(x, m, axis=0)
    flags = constraints.satisfied(inputs, x_cf)
    kind_rates = {
        kind: feasibility_score(build_constraints(encoder, kind), inputs, x_cf)
        for kind in ("unary", "binary")
    }
    per_constraint = {
        constraint.name: constraint.satisfaction_rate(inputs, x_cf)
        for constraint in constraints
    }
    return flags, kind_rates, per_constraint


def _constraint_eval_section(bundle, spec, min_seconds, seed):
    """Time the compiled feasibility kernel against the loop evaluator.

    The workload is the engine's hot shape: a feasibility report
    (AND-flags + per-kind rates + per-constraint rates) for
    ``constraint_rows`` inputs with ``constraint_candidates`` decoded
    candidates each.  Outputs are asserted identical before timing, and
    the section refuses to report a speedup below the 3x acceptance
    floor.
    """
    from ..constraints import build_constraints

    encoder = bundle.encoder
    n = spec["constraint_rows"]
    m = spec["constraint_candidates"]
    x = bundle.encoded[:n]
    rng = np.random.default_rng(seed + 77)
    x_cf = np.clip(
        np.repeat(x, m, axis=0) + rng.normal(0.0, 0.05, (n * m, x.shape[1])),
        0.0, 1.0)

    constraints = build_constraints(encoder, "binary")
    kernel = constraints.compile()
    kind_members = {
        kind: [kernel.index_of(c.name)
               for c in build_constraints(encoder, kind)]
        for kind in ("unary", "binary")
    }

    def compiled_report():
        report = kernel.evaluate(x, x_cf)
        kind_rates = {kind: report.subset_rate(indices) * 100.0
                      for kind, indices in kind_members.items()}
        return report.satisfied, kind_rates, report.per_constraint_rates

    flags_loop, kinds_loop, per_loop = _feasibility_report_loop(
        encoder, constraints, x, x_cf, m)
    flags_fast, kinds_fast, per_fast = compiled_report()
    if not np.array_equal(flags_loop, flags_fast) or kinds_loop != kinds_fast \
            or per_loop != per_fast:
        raise AssertionError(
            "compiled feasibility kernel diverges from the loop evaluator")

    loop_rate, loop_calls = _throughput(
        lambda: _feasibility_report_loop(encoder, constraints, x, x_cf, m),
        n, min_seconds)
    fast_rate, fast_calls = _throughput(compiled_report, n, min_seconds)
    speedup = fast_rate / loop_rate
    if speedup < MIN_KERNEL_SPEEDUP:
        raise AssertionError(
            f"compiled kernel speedup {speedup:.2f}x is below the "
            f"{MIN_KERNEL_SPEEDUP}x floor")

    return {
        "rows": n,
        "n_candidates": m,
        "constraints": len(constraints),
        "rows_per_sec": round(fast_rate, 1),
        "rows_per_sec_loop": round(loop_rate, 1),
        "candidates_per_sec": round(fast_rate * m, 1),
        "speedup_compiled_vs_loop": round(speedup, 2),
        "calls": fast_calls + loop_calls,
    }


def _density_section(explainer, bundle, spec, min_seconds, seed):
    """Time batched density-aware selection against the per-row loop.

    The workload is the Figure 3 selection stage on a real candidate
    sweep: ``density_rows`` inputs x ``density_candidates`` generated
    candidates each, scored against a ``density_reference``-row k-NN
    estimator.  The loop reference is the historical selector path
    (two score passes per row — exactly what ``DensityCFSelector.explain``
    ran before the density layer); the batched path is ONE tiled density
    query plus one vectorized combined-score pass.  Outputs are asserted
    bit-identical before timing and the batched path must hold the 3x
    acceptance floor; the tiled scorer alone and the KDE estimator ride
    along as informational rates.
    """
    from ..core.selection import DensityCFSelector, generate_candidates
    from ..density import GaussianKdeDensity, KnnDensity

    n = spec["density_rows"]
    m = spec["density_candidates"]
    reference = bundle.encoded[:spec["density_reference"]]
    model = KnnDensity(k_neighbors=10).fit(reference)
    selector = DensityCFSelector(
        explainer, density_weight=2.0, density_model=model)

    x = bundle.encoded[:n]
    candidate_sets = generate_candidates(
        explainer, x, n_candidates=m, rng=np.random.default_rng(seed + 500))
    sweep = np.stack([cs.candidates for cs in candidate_sets])

    x_cf_fast, diag_fast = selector.select_batch(candidate_sets)
    x_cf_loop, diag_loop = selector._select_loop(candidate_sets)
    if not np.array_equal(x_cf_fast, x_cf_loop) or diag_fast != diag_loop:
        raise AssertionError(
            "batched density selection diverges from the per-row loop")
    if not np.array_equal(model.score_tiled(sweep), model.score_tiled_loop(sweep)):
        raise AssertionError(
            "tiled density scorer diverges from the per-row query loop")

    loop_rate, loop_calls = _throughput(
        lambda: selector._select_loop(candidate_sets), n, min_seconds)
    fast_rate, fast_calls = _throughput(
        lambda: selector.select_batch(candidate_sets), n, min_seconds)
    speedup = fast_rate / loop_rate
    if speedup < MIN_DENSITY_SPEEDUP:
        raise AssertionError(
            f"batched density-selection speedup {speedup:.2f}x is below "
            f"the {MIN_DENSITY_SPEEDUP}x floor")

    tiled_rate, _ = _throughput(lambda: model.score_tiled(sweep), n, min_seconds)
    kde = GaussianKdeDensity().fit(reference)
    kde_rate, _ = _throughput(lambda: kde.score_tiled(sweep), n, min_seconds)

    return {
        "rows": n,
        "n_candidates": m,
        "n_reference": len(reference),
        "rows_per_sec": round(fast_rate, 1),
        "rows_per_sec_loop": round(loop_rate, 1),
        "candidates_per_sec": round(fast_rate * m, 1),
        "speedup_batched_vs_loop": round(speedup, 2),
        "tiled_scorer_rows_per_sec": round(tiled_rate, 1),
        "kde_rows_per_sec": round(kde_rate, 1),
        "calls": fast_calls + loop_calls,
    }


def _causal_section(bundle, spec, min_seconds, seed):
    """Time the batched causal repair against the per-row loop.

    The workload is the engine's repair shape: ``causal_rows`` inputs
    with ``causal_candidates`` perturbed candidates each, repaired by
    the dataset's :class:`repro.causal.ScmCausalModel` (one
    abduction-action-prediction pass) — exactly what
    ``EngineRunner(causal=)`` inserts between immutable projection and
    the feasibility kernel.  Outputs are asserted bit-identical before
    timing and the batched path must hold the 3x acceptance floor; the
    mined-relation model rides along as an informational rate.
    """
    from ..causal import MinedCausalModel, ScmCausalModel

    n = spec["causal_rows"]
    m = spec["causal_candidates"]
    x = bundle.encoded[:n]
    rng = np.random.default_rng(seed + 900)
    candidates = np.clip(
        x[:, None, :] + rng.normal(0.0, 0.08, (n, m, x.shape[1])), 0.0, 1.0)

    model = ScmCausalModel(bundle.encoder).fit(x)
    repaired_fast = model.repair_batch(x, candidates)
    repaired_loop = model._repair_loop(x, candidates)
    if not np.array_equal(repaired_fast, repaired_loop):
        raise AssertionError(
            "batched causal repair diverges from the per-row loop")

    loop_rate, loop_calls = _throughput(
        lambda: model._repair_loop(x, candidates), n, min_seconds)
    fast_rate, fast_calls = _throughput(
        lambda: model.repair_batch(x, candidates), n, min_seconds)
    speedup = fast_rate / loop_rate
    if speedup < MIN_CAUSAL_SPEEDUP:
        raise AssertionError(
            f"batched causal-repair speedup {speedup:.2f}x is below the "
            f"{MIN_CAUSAL_SPEEDUP}x floor")

    x_train, y_train = bundle.split("train")
    mined = MinedCausalModel(bundle.encoder).fit(x_train, y_train)
    mined_rate, _ = _throughput(
        lambda: mined.repair_batch(x, candidates), n, min_seconds)

    return {
        "rows": n,
        "n_candidates": m,
        "equations": len(model.equations),
        "rows_per_sec": round(fast_rate, 1),
        "rows_per_sec_loop": round(loop_rate, 1),
        "candidates_per_sec": round(fast_rate * m, 1),
        "speedup_batched_vs_loop": round(speedup, 2),
        "mined_rows_per_sec": round(mined_rate, 1),
        "mined_relations": len(mined.relations),
        "calls": fast_calls + loop_calls,
    }


def _robust_section(bundle, spec, min_seconds, seed):
    """Time the fused K-model ensemble scoring against the member loop.

    The workload is the serving-request shape: one ``robust_batch``-row
    validity check against all ``robust_members`` ensemble members —
    what ``EngineRunner(ensemble=)`` issues per explained request and
    the rollover migration issues per cached entry.  The batch is kept
    request-sized deliberately: the fused path wins by collapsing K
    Python/dispatch round trips into one stacked GEMM, an advantage
    that exists at small batches and vanishes on large flattened sweeps
    where the identical FLOPs dominate.  Hard predictions are asserted
    bit-identical before timing (raw logits agree only to BLAS-blocking
    precision, like the float32 fast mode above) and the fused path
    must hold the 3x acceptance floor; the per-row agreement scoring
    rides along as an informational rate.
    """
    from ..models import train_ensemble

    k = spec["robust_members"]
    batch = np.ascontiguousarray(bundle.encoded[:spec["robust_batch"]])
    x_train, y_train = bundle.split("train")
    ensemble = train_ensemble(
        x_train[:spec["train_rows"]], y_train[:spec["train_rows"]],
        n_members=k, seed=seed, epochs=spec["train_epochs"],
        batch_size=spec["train_batch_size"])

    logits_fused = ensemble.predict_logits_all(batch)
    logits_loop = ensemble.predict_logits_loop(batch)
    if not np.array_equal(logits_fused > 0.0, logits_loop > 0.0):
        raise AssertionError(
            "fused ensemble scoring changed hard predictions")
    if not np.allclose(logits_fused, logits_loop, atol=1e-9):
        raise AssertionError(
            "fused ensemble logits diverge from the per-member loop "
            "beyond BLAS-blocking precision")

    loop_rate, loop_calls = _throughput(
        lambda: ensemble.predict_logits_loop(batch), len(batch), min_seconds)
    fast_rate, fast_calls = _throughput(
        lambda: ensemble.predict_logits_all(batch), len(batch), min_seconds)
    speedup = fast_rate / loop_rate
    if speedup < MIN_ROBUST_SPEEDUP:
        raise AssertionError(
            f"fused ensemble-scoring speedup {speedup:.2f}x is below the "
            f"{MIN_ROBUST_SPEEDUP}x floor")

    desired = 1 - ensemble.predict(batch)
    agreement_rate, _ = _throughput(
        lambda: ensemble.agreement(batch, desired), len(batch), min_seconds)

    return {
        "rows": len(batch),
        "n_members": k,
        "rows_per_sec": round(fast_rate, 1),
        "rows_per_sec_loop": round(loop_rate, 1),
        "model_rows_per_sec": round(fast_rate * k, 1),
        "speedup_fused_vs_loop": round(speedup, 2),
        "agreement_rows_per_sec": round(agreement_rate, 1),
        "calls": fast_calls + loop_calls,
    }


class _FixedSweepStrategy:
    """Bench strategy replaying a fixed per-row candidate sweep.

    The C-CHVAE growing-sphere search proposes through one sequential
    RNG, which makes its *propose* stage inherently per-request; what a
    plan can fuse is everything downstream of proposal.  This strategy
    pins exactly that workload: a precomputed ``(m, d)`` sweep per row,
    looked up by row bytes, so propose is O(1) and the timed difference
    between the compiled and per-request paths is the chain itself
    (projection, causal repair, validity, feasibility, selection) — not
    proposal cost.
    """

    name = "fixed_sweep"

    def __init__(self, sweeps):
        self._sweeps = {row.tobytes(): sweep for row, sweep in sweeps}

    def fit(self, x_train, y_train=None):
        return self

    def propose(self, x, desired=None):
        from ..engine import CandidateBatch

        candidates = np.stack([self._sweeps[row.tobytes()] for row in x])
        return CandidateBatch(x, np.asarray(desired, dtype=int), candidates)

    def describe(self):
        return {"class": type(self).__name__, "name": self.name,
                "rows": len(self._sweeps)}

    def fingerprint(self):
        import hashlib
        import json as _json

        canonical = _json.dumps(self.describe(), sort_keys=True,
                                separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _plan_section(explainer, bundle, spec, min_seconds, seed):
    """Time the compiled explain plan against the per-request staged chain.

    The workload is the C-CHVAE serving shape: ``plan_rows`` requests,
    each carrying a fixed ``plan_candidates``-candidate sweep (the
    baseline's ``n_candidates=40`` matrix shape), answered by a runner
    hosting the dataset's SCM causal model — so every request runs the
    full projection + causal repair + validity + feasibility +
    selection chain.  The loop reference issues one staged
    ``EngineRunner.run`` per request, exactly the pre-plan serving
    shape; the compiled path replays ONE fused ``ExplainPlan.execute``
    over the whole batch.  A density estimator is deliberately NOT
    hosted here: the k-NN query costs per *point* (cKDTree), so it
    neither amortises across requests nor measures what the plan fuses
    — its batched-vs-loop story is the gated ``density`` section.

    The compiled path is asserted bit-identical to the *batched* staged
    path before timing (the plan's parity contract; the parity suite
    pins it per strategy and dataset).  Per-request staged results are
    additionally sanity-checked to agree on nearly every row — they may
    drift from the batch on selection near-ties because the validity
    GEMM's BLAS blocking changes with batch shape, the same caveat every
    batched-vs-loop section documents.  The compiled path must hold the
    3x acceptance floor; the tiled float32 backend rides along as an
    informational rate.
    """
    from ..causal import ScmCausalModel
    from ..engine import EngineRunner

    n = spec["plan_rows"]
    m = spec["plan_candidates"]
    x = np.ascontiguousarray(bundle.encoded[:n])
    rng = np.random.default_rng(seed + 1300)
    sweep = np.clip(
        x[:, None, :] + rng.normal(0.0, 0.08, (n, m, x.shape[1])), 0.0, 1.0)
    strategy = _FixedSweepStrategy(zip(x, sweep))
    desired = 1 - explainer.blackbox.predict(x)

    x_train, _ = bundle.split("train")
    causal = ScmCausalModel(bundle.encoder).fit(x_train)
    runner = EngineRunner(bundle.encoder, explainer.blackbox, causal=causal)
    plan = runner.compile(strategy)

    result_staged = runner.run(strategy, x, desired)
    result_plan = plan.execute(x, desired)
    for field in ("x_cf", "predicted", "valid", "feasible"):
        if not np.array_equal(getattr(result_plan, field),
                              getattr(result_staged, field)):
            raise AssertionError(
                f"compiled plan diverges from the staged chain on {field}")

    def staged_requests():
        parts = [
            runner.run(strategy, x[i:i + 1], desired[i:i + 1]).x_cf
            for i in range(n)
        ]
        return np.concatenate(parts)

    per_request_cf = staged_requests()
    row_match = float((per_request_cf == result_staged.x_cf).all(axis=1).mean())
    if row_match < 0.9:
        raise AssertionError(
            f"per-request staged chain agrees with the batch on only "
            f"{row_match:.0%} of rows — more than near-tie drift")

    loop_rate, loop_calls = _throughput(staged_requests, n, min_seconds)
    fast_rate, fast_calls = _throughput(
        lambda: plan.execute(x, desired), n, min_seconds)
    speedup = fast_rate / loop_rate
    if speedup < MIN_PLAN_SPEEDUP:
        raise AssertionError(
            f"compiled plan speedup {speedup:.2f}x over the per-request "
            f"staged chain is below the {MIN_PLAN_SPEEDUP}x floor")

    plan32 = runner.compile(strategy, backend="float32")
    if not np.array_equal(plan32.execute(x, desired).predicted,
                          result_staged.predicted):
        raise AssertionError(
            "float32 plan backend changed hard validity predictions")
    f32_rate, _ = _throughput(
        lambda: plan32.execute(x, desired), n, min_seconds)

    return {
        "rows": n,
        "n_candidates": m,
        "stages": [stage.name for stage in plan.stages],
        "rows_per_sec": round(fast_rate, 1),
        "rows_per_sec_loop": round(loop_rate, 1),
        "candidates_per_sec": round(fast_rate * m, 1),
        "speedup_compiled_vs_requests": round(speedup, 2),
        "per_request_row_agreement": round(row_match, 4),
        "float32_rows_per_sec": round(f32_rate, 1),
        "calls": fast_calls + loop_calls,
    }


def _inloss_section(bundle, spec, seed):
    """Measure sample efficiency of in-objective (six-part) training.

    The claim under test is the in-loss PR's acceptance bar: pulling the
    density and causal criteria *into the training objective* should
    mean far fewer decoded candidates are burned per accepted
    counterfactual at serving time, because the generator already
    decodes into dense, causally consistent regions instead of relying
    on post-hoc filtering alone.

    Two explainers share ONE black-box (so validity judgments are
    identical) and differ only in the training objective: the four-part
    post-hoc baseline vs the six-part ``inloss_config`` objective.  Both
    explain the same undesired-class test rows with the same fixed
    ``inloss_candidates`` latent sweep, and a candidate is *accepted*
    when it is valid, feasible, at least as close to the desired-class
    manifold (mean k-NN distance) as the
    :data:`INLOSS_DENSITY_QUANTILE` quantile of held-out desired-class
    rows, and survives SCM repair within
    :data:`INLOSS_CAUSAL_TOLERANCE` — the full post-hoc acceptance
    stack.  The gated metric is ``reduction_vs_posthoc = baseline
    candidates-per-accepted / in-loss candidates-per-accepted``,
    asserted to hold the :data:`MIN_INLOSS_REDUCTION` floor; black-box
    validity is asserted no worse than the baseline before any number
    is reported.  When a run accepts *nothing*, its
    candidates-per-accepted is reported as the sweep size — a lower
    bound ("needed more candidates than the whole sweep"), flagged by
    ``accepted == 0`` in the section payload.
    """
    from ..causal import ScmCausalModel
    from ..core import inloss_config
    from ..density import KnnDensity

    n = spec["inloss_rows"]
    m = spec["inloss_candidates"]
    x_train, y_train = bundle.split("train")
    x_train = x_train[:spec["train_rows"]]
    y_train = y_train[:spec["train_rows"]]

    base_config = fast_config(epochs=spec["inloss_epochs"])
    baseline = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary", config=base_config,
        seed=seed)
    baseline.fit(x_train, y_train, blackbox_epochs=spec["train_epochs"])
    inloss = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=inloss_config(base_config), blackbox=baseline.blackbox,
        seed=seed)
    inloss.fit(x_train, y_train)

    desired_class = int(bundle.schema.desired_class)
    x_test, _ = bundle.split("test")
    rows = x_test[baseline.blackbox.predict(x_test) != desired_class][:n]
    if len(rows) == 0:
        raise AssertionError(
            "inloss workload found no undesired-class test rows")

    reference = x_train[np.asarray(y_train) == desired_class]
    knn = KnnDensity(k_neighbors=8).fit(reference)
    heldout = x_test[np.asarray(bundle.split("test")[1]) == desired_class]
    threshold = float(np.quantile(
        knn.score(heldout), INLOSS_DENSITY_QUANTILE))
    causal = ScmCausalModel(bundle.encoder).fit(x_train)

    def acceptance(explainer):
        sets = generate_candidates(
            explainer, rows, n_candidates=m,
            rng=np.random.default_rng(seed + 4242))
        sweep = np.stack([cs.candidates for cs in sets])
        usable = np.stack([cs.usable_mask for cs in sets])
        flat = sweep.reshape(-1, sweep.shape[-1])
        dense = (knn.score(flat) <= threshold).reshape(usable.shape)
        repaired = causal.repair_batch(rows, sweep)
        plausible = (np.abs(repaired - sweep).max(axis=-1)
                     <= INLOSS_CAUSAL_TOLERANCE)
        accepted = usable & dense & plausible
        validity = float(
            np.stack([cs.valid for cs in sets]).any(axis=1).mean())
        n_accepted = int(accepted.sum())
        return {
            "accepted": n_accepted,
            "candidates_per_accepted": round(
                accepted.size / max(n_accepted, 1), 2),
            "accepted_rate": round(n_accepted / accepted.size, 4),
            "rows_with_accepted_cf": round(
                float(accepted.any(axis=1).mean()), 4),
            "validity": round(validity, 4),
        }

    posthoc = acceptance(baseline)
    sixpart = acceptance(inloss)
    if sixpart["validity"] < posthoc["validity"]:
        raise AssertionError(
            f"in-loss training dropped validity: "
            f"{sixpart['validity']:.2%} vs {posthoc['validity']:.2%}")
    reduction = (posthoc["candidates_per_accepted"]
                 / sixpart["candidates_per_accepted"])
    if reduction < MIN_INLOSS_REDUCTION:
        raise AssertionError(
            f"in-loss candidates-per-accepted reduction {reduction:.2f}x "
            f"is below the {MIN_INLOSS_REDUCTION}x floor "
            f"({posthoc['candidates_per_accepted']} -> "
            f"{sixpart['candidates_per_accepted']} candidates per "
            f"accepted CF)")

    return {
        "rows": len(rows),
        "n_candidates": m,
        "epochs": spec["inloss_epochs"],
        "density_quantile": INLOSS_DENSITY_QUANTILE,
        "causal_tolerance": INLOSS_CAUSAL_TOLERANCE,
        "posthoc": posthoc,
        "inloss": sixpart,
        "reduction_vs_posthoc": round(reduction, 2),
    }


def _serve_section(spec, seed):
    """Time cold-start vs warm-start serving on the bench workload.

    Cold start = train the full pipeline, persist it to an artifact
    store and answer one ``serve_rows`` batch (what a process without an
    artifact must do).  Warm start = rebuild the service from the store
    and answer the same batch.  The cache-hit replay answers it a second
    time from the LRU cache.  A density-aware warm start (k-NN state
    persisted next to the artifact, served via ``density="store"``)
    rides along to prove the paper's density criterion survives a
    process restart.
    """
    import tempfile

    from ..density import fit_class_density
    from ..serve import ArtifactStore, ExplanationService, train_pipeline
    from .runconfig import ExperimentScale

    scale = ExperimentScale(
        "perfbench", spec["n_instances"], spec["serve_rows"],
        spec["train_epochs"])
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)

        start = time.perf_counter()
        pipeline = train_pipeline(
            "adult", scale=scale, seed=seed,
            config=fast_config(epochs=spec["cf_epochs"]))
        store.save(pipeline, name="bench")
        x_test, _ = pipeline.bundle.split("test")
        rows = x_test[:spec["serve_rows"]]
        cold_result = ExplanationService(pipeline, cache_size=0).explain_batch(rows)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        service = ExplanationService.warm_start(store, "bench")
        warm_result = service.explain_batch(rows)
        warm_seconds = time.perf_counter() - start
        if not np.array_equal(cold_result.x_cf, warm_result.x_cf):
            raise AssertionError(
                "warm-start counterfactuals diverge from the cold pipeline")

        start = time.perf_counter()
        service.explain_batch(rows)
        cached_seconds = max(time.perf_counter() - start, 1e-9)

        # density-aware warm start: persist fitted k-NN state, rebuild the
        # service from disk and serve the batch density-selected
        x_train, y_train = pipeline.bundle.split("train")
        density = fit_class_density(
            "knn", x_train, y_train, pipeline.bundle.schema.desired_class,
            k_neighbors=8)
        store.save_overlay("bench", "density", density)
        start = time.perf_counter()
        dense_service = ExplanationService.warm_start(
            store, "bench", overlays={"density": "store"})
        dense_result = dense_service.explain_batch(rows)
        warm_density_seconds = time.perf_counter() - start
        if dense_result.x_cf.shape != warm_result.x_cf.shape:
            raise AssertionError("density-aware warm start lost rows")

    return {
        "rows": len(rows),
        "cold_start_seconds": round(cold_seconds, 4),
        "warm_start_seconds": round(warm_seconds, 4),
        "speedup_cold_vs_warm": round(cold_seconds / warm_seconds, 1),
        "warm_rows_per_sec": round(len(rows) / warm_seconds, 1),
        "cache_hit_rows_per_sec": round(len(rows) / cached_seconds, 1),
        "warm_density_seconds": round(warm_density_seconds, 4),
        "warm_density_rows_per_sec": round(
            len(rows) / max(warm_density_seconds, 1e-9), 1),
    }


def _serve_scale_section(spec, seed, replica_counts=None):
    """Time the scaled worker pool on a cache-bound single-row trace.

    The workload replays ``serve_scale_passes`` cyclic passes over
    ``serve_scale_rows`` distinct requests, one row at a time — the
    shape of heavy per-request traffic.  Each replica's LRU cache holds
    only ``serve_scale_cache`` rows, chosen so ONE replica cannot fit
    the working set (a cyclic scan over an LRU it doesn't fit is the
    worst case: every request misses) while the pool's *aggregate*
    capacity at 4 replicas can.  Consistent-hash routing pins each row
    to one replica, so scaling out grows effective cache capacity and
    the trace turns into hits — the mechanism by which replicas pay off
    on this single-core box, where raw compute parallelism cannot.

    Before any timing, single-replica async serving
    (:class:`repro.serve.AsyncExplanationService` coalescing the whole
    trace into one flush) is asserted bit-identical in
    ``x_cf``/``predicted``/``valid`` to the synchronous
    :class:`repro.serve.ExplanationService` submit/flush path.  The
    4-replica sustained rate must hold the
    :data:`MIN_SERVE_SCALE_SPEEDUP` floor over 1 replica whenever both
    counts are measured.
    """
    import asyncio
    import tempfile

    from ..serve import (
        ArtifactStore,
        AsyncExplanationService,
        ExplanationService,
        WorkerPool,
        train_pipeline,
    )
    from .runconfig import ExperimentScale

    n_rows = spec["serve_scale_rows"]
    cache = spec["serve_scale_cache"]
    passes = spec["serve_scale_passes"]
    if replica_counts is None:
        replica_counts = spec["serve_scale_replicas"]
    replica_counts = sorted(int(count) for count in replica_counts)

    scale = ExperimentScale(
        "perfbench", spec["n_instances"], n_rows, spec["train_epochs"])
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        pipeline = train_pipeline(
            "adult", scale=scale, seed=seed,
            config=fast_config(epochs=spec["cf_epochs"]))
        store.save(pipeline, name="bench-scale")
        x_test, _ = pipeline.bundle.split("test")
        rows = np.ascontiguousarray(x_test[:n_rows])
        if len(rows) < n_rows:
            raise AssertionError(
                f"serve_scale workload needs {n_rows} test rows, "
                f"got {len(rows)}")
        # explicit targets keep the timed hot path free of per-request
        # black-box flips (one batched predict here instead)
        desired = 1 - pipeline.explainer.blackbox.predict(rows)

        # synchronous reference for the single-replica parity contract
        sync = ExplanationService.warm_start(store, "bench-scale",
                                             cache_size=cache)
        tickets = [sync.submit(row, int(target))
                   for row, target in zip(rows, desired)]
        sync.flush()
        reference = [ticket.result() for ticket in tickets]

        async def _async_trace(pool):
            front = AsyncExplanationService(
                pool, coalesce_window=0.05, max_batch=len(rows))
            results = await front.explain_many(rows, desired)
            await front.aclose()
            return results

        per_count = []
        for count in replica_counts:
            with WorkerPool(store, "bench-scale", n_replicas=count,
                            cache_size=cache) as pool:
                if count == 1:
                    async_results = asyncio.run(_async_trace(pool))
                    for got, want in zip(async_results, reference):
                        if (not np.array_equal(got["x_cf"], want["x_cf"])
                                or got["predicted"] != want["predicted"]
                                or got["valid"] != want["valid"]):
                            raise AssertionError(
                                "single-replica async serving diverges "
                                "from the synchronous service")

                latencies = []
                start = time.perf_counter()
                for _ in range(passes):
                    for i in range(n_rows):
                        request_start = time.perf_counter()
                        pool.explain_batch(rows[i:i + 1], desired[i:i + 1])
                        latencies.append(
                            time.perf_counter() - request_start)
                elapsed = max(time.perf_counter() - start, 1e-9)
                latencies_ms = np.asarray(latencies) * 1000.0
                aggregate = pool.stats()["aggregate"]
                per_count.append({
                    "replicas": count,
                    "rows_per_sec": round(len(latencies) / elapsed, 1),
                    "p50_ms": round(float(np.percentile(latencies_ms, 50)), 3),
                    "p99_ms": round(float(np.percentile(latencies_ms, 99)), 3),
                    "hit_rate": round(aggregate["hit_rate"], 4),
                    "shared_weight_bytes": aggregate["shared_weight_bytes"],
                })

    by_count = {entry["replicas"]: entry for entry in per_count}
    section = {
        "rows": n_rows,
        "requests": n_rows * passes,
        "cache_per_replica": cache,
        "backend": "thread",
        "rows_per_sec": per_count[-1]["rows_per_sec"],
        "replicas": per_count,
        "async_parity_single_replica": 1 in by_count,
    }
    if 1 in by_count and 4 in by_count:
        speedup = by_count[4]["rows_per_sec"] / by_count[1]["rows_per_sec"]
        if speedup < MIN_SERVE_SCALE_SPEEDUP:
            raise AssertionError(
                f"4-replica sustained rate is only {speedup:.2f}x the "
                f"single replica, below the {MIN_SERVE_SCALE_SPEEDUP}x "
                f"floor")
        section["speedup_4_replicas_vs_1"] = round(speedup, 2)
    return section


def run_perfbench(scale="smoke", seed=0):
    """Run every timed section and return a result dict."""
    if scale not in PERF_SCALES:
        raise KeyError(f"unknown scale {scale!r}; options: {sorted(PERF_SCALES)}")
    spec = PERF_SCALES[scale]
    min_seconds = spec["min_seconds"]

    bundle = load_dataset("adult", n_instances=spec["n_instances"], seed=seed)
    x_train, y_train = bundle.split("train")
    x_train = x_train[:spec["train_rows"]]
    y_train = y_train[:spec["train_rows"]]
    n_features = x_train.shape[1]

    # -- train throughput --------------------------------------------------
    def train_once():
        model = BlackBoxClassifier(n_features, np.random.default_rng(seed + 1))
        train_classifier(model, x_train, y_train,
                         epochs=spec["train_epochs"],
                         batch_size=spec["train_batch_size"],
                         rng=np.random.default_rng(seed + 2))

    train_rows = len(x_train) * spec["train_epochs"]
    train_rate, train_calls = _throughput(train_once, train_rows, min_seconds)

    # -- shared fitted pipeline (untimed setup) ----------------------------
    explainer = FeasibleCFExplainer(
        bundle.encoder, constraint_kind="unary",
        config=fast_config(epochs=spec["cf_epochs"]), seed=seed)
    explainer.fit(x_train, y_train, blackbox_epochs=spec["train_epochs"])

    # -- predict throughput ------------------------------------------------
    batch = np.ascontiguousarray(x_train[:spec["predict_batch"]])

    def predict_once():
        explainer.blackbox.predict(batch)

    predict_rate, predict_calls = _throughput(
        predict_once, len(batch), min_seconds)
    predict_rate_f32 = _float32_predict_rate(
        explainer.blackbox, batch, min_seconds, seed)

    # -- candidate-generation throughput -----------------------------------
    x_explain = x_train[:spec["candidate_rows"]]
    desired = 1 - explainer.blackbox.predict(x_explain)

    def candidates_once():
        generate_candidates(explainer, x_explain,
                            n_candidates=spec["n_candidates"],
                            desired=desired,
                            rng=np.random.default_rng(seed + 500))

    candidate_rate, candidate_calls = _throughput(
        candidates_once, len(x_explain), min_seconds)

    results = {
        "benchmark": "engine_fast_path",
        "scale": scale,
        "seed": seed,
        "workload": dict(spec),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "train": {
            "rows_per_sec": round(train_rate, 1),
            "calls": train_calls,
        },
        "predict": {
            "rows_per_sec": round(predict_rate, 1),
            "rows_per_sec_float32": (
                None if predict_rate_f32 is None else round(predict_rate_f32, 1)),
            "batch_size": spec["predict_batch"],
            "calls": predict_calls,
        },
        "candidates": {
            "rows_per_sec": round(candidate_rate, 1),
            "candidates_per_sec": round(candidate_rate * spec["n_candidates"], 1),
            "n_candidates": spec["n_candidates"],
            "calls": candidate_calls,
        },
        "constraint_eval": _constraint_eval_section(
            bundle, spec, min_seconds, seed),
        "density": _density_section(explainer, bundle, spec, min_seconds, seed),
        "causal": _causal_section(bundle, spec, min_seconds, seed),
        "robust": _robust_section(bundle, spec, min_seconds, seed),
        "plan": _plan_section(explainer, bundle, spec, min_seconds, seed),
        "inloss": _inloss_section(bundle, spec, seed),
        "serve": _serve_section(spec, seed),
        "serve_scale": _serve_scale_section(spec, seed),
    }
    if scale == PRE_PR_BASELINE["scale"]:
        results["pre_pr_baseline"] = dict(PRE_PR_BASELINE)
        results["speedup_vs_baseline"] = {
            "train": round(train_rate / PRE_PR_BASELINE["train_rows_per_sec"], 2),
            "predict": round(predict_rate / PRE_PR_BASELINE["predict_rows_per_sec"], 2),
            "candidates": round(candidate_rate / PRE_PR_BASELINE["candidate_rows_per_sec"], 2),
        }
    return results


def write_bench(results, path):
    """Write ``results`` as pretty JSON to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path

"""Experiment scales: the same pipeline at different data sizes.

``paper`` uses the exact Table I instance counts; ``standard`` caps each
dataset at ~20k raw rows (the default for EXPERIMENTS.md runs — the
pipeline, methods and metrics are identical, only n shrinks); ``fast``
and ``smoke`` shrink further for benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.registry import PAPER_SIZES

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade run time for statistical resolution.

    Attributes
    ----------
    name:
        Scale label.
    max_instances:
        Raw instance cap per dataset (None = the paper's Table I size).
    n_explain:
        How many undesired-class test rows each method explains.
    blackbox_epochs:
        Training epochs for the classifier stage.
    """

    name: str
    max_instances: int
    n_explain: int
    blackbox_epochs: int

    def instances_for(self, dataset_name):
        """Raw instance count to generate for ``dataset_name``."""
        paper_size = PAPER_SIZES[dataset_name]
        if self.max_instances is None:
            return paper_size
        return min(paper_size, self.max_instances)


SCALES = {
    "paper": ExperimentScale("paper", None, 500, 40),
    "standard": ExperimentScale("standard", 20_000, 300, 35),
    "fast": ExperimentScale("fast", 6_000, 150, 30),
    "smoke": ExperimentScale("smoke", 3_500, 60, 20),
}


def get_scale(name):
    """Look up a named scale."""
    if isinstance(name, ExperimentScale):
        return name
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; options: {sorted(SCALES)}")
    return SCALES[name]

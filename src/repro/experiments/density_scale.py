"""At-scale density benchmark: exact vs ANN over growing references.

The ``density_at_scale`` section of ``BENCH_engine.json``: one real
(downloaded, checksum-verified — or synthetically upsampled when
offline) Adult Census population, encoded once and sliced to reference
sizes from 1k to 1M rows; at each size the exact ``cKDTree`` and the
:class:`repro.density.ann.AnnIndex` answer the same k-NN query batch.

The contract is measured in order:

1. **recall first** — ANN indices are compared against the exact
   neighbours and ``recall@k`` must clear
   :data:`repro.experiments.perfbench.MIN_ANN_RECALL` *before* any
   timing is recorded;
2. **speedup second** — at reference sizes of
   :data:`ANN_GATE_ROWS` and above, the ANN query rate must beat exact
   by :data:`repro.experiments.perfbench.MIN_ANN_SPEEDUP`.  Below that
   the exact scan still fits in cache and the ratio is informational.

The section's top-level ``rows_per_sec`` is the ANN rate at the largest
size at or under :data:`GATE_SIZE` (10k) — the size the CI smoke also
runs, so the regression gate compares like with like between a local
full run and a CI run.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import TabularEncoder, dataset_schema, load_downloadable
from ..density import KnnDensity, recall_at_k
from .perfbench import MIN_ANN_RECALL, MIN_ANN_SPEEDUP

__all__ = ["ANN_GATE_ROWS", "DEFAULT_SIZES", "GATE_SIZE",
           "run_density_at_scale"]

#: Reference sizes of the full bench (CI smoke runs the first two).
DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000)

#: Reference size from which the ANN >= MIN_ANN_SPEEDUP floor is
#: *asserted*; below it the ratio is recorded but not enforced.
ANN_GATE_ROWS = 100_000

#: The regression-gated ``rows_per_sec`` is the ANN rate at the largest
#: measured size at or under this row count (the CI smoke's ceiling).
GATE_SIZE = 10_000


def _best_seconds(fn, repeats):
    """Best wall-clock of ``repeats`` calls (min absorbs scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def run_density_at_scale(sizes=DEFAULT_SIZES, seed=0, n_queries=512, k=10,
                         cache_dir=None, fetcher=None):
    """Measure exact vs ANN k-NN rates per reference size; returns the section.

    Raises ``AssertionError`` when the ANN recall floor or (at
    :data:`ANN_GATE_ROWS`+) the speedup floor is missed — the bench is
    its own acceptance test, so a bad index can never merge a section
    that looks healthy.
    """
    sizes = sorted(int(size) for size in sizes)
    if not sizes:
        raise ValueError("sizes must be non-empty")
    schema = dataset_schema("adult")
    frame, _, source = load_downloadable(
        "adult_uci", n_rows=max(sizes), seed=seed, cache_dir=cache_dir,
        fetcher=fetcher)
    encoder = TabularEncoder(schema).fit(frame)
    encoded = encoder.transform_chunked(frame, chunk_size=16384)

    rng = np.random.default_rng(seed + 1)
    picked = rng.choice(len(encoded), size=min(n_queries, len(encoded)), replace=False)
    queries = encoded[picked] + rng.normal(0.0, 0.02, (len(picked), encoded.shape[1]))

    rows = []
    gate_rate = None
    for size in sizes:
        reference = encoded[:size]
        k_eff = min(k, size)
        exact = KnnDensity(k_neighbors=k_eff, backend="exact").fit(reference)
        ann = exact.with_backend("ann")

        # recall is asserted before a single timing is recorded
        _, exact_idx = exact.query(queries, k_eff)
        _, ann_idx = ann.query(queries, k_eff)
        recall = recall_at_k(exact_idx, ann_idx)
        assert recall >= MIN_ANN_RECALL, (
            f"ANN recall@{k_eff} at {size} reference rows is {recall:.3f}, "
            f"below the {MIN_ANN_RECALL} floor")

        repeats = 3 if size <= GATE_SIZE else 1
        exact_seconds = _best_seconds(lambda: exact.query(queries, k_eff), repeats)
        ann_seconds = _best_seconds(lambda: ann.query(queries, k_eff), repeats)
        exact_rate = len(queries) / exact_seconds
        ann_rate = len(queries) / ann_seconds
        speedup = ann_rate / exact_rate

        if size >= ANN_GATE_ROWS:
            assert speedup >= MIN_ANN_SPEEDUP, (
                f"ANN speedup at {size} reference rows is {speedup:.2f}x, "
                f"below the {MIN_ANN_SPEEDUP}x floor")
        if size <= GATE_SIZE:
            gate_rate = ann_rate

        rows.append({
            "reference_rows": size,
            "k": k_eff,
            "recall_at_k": round(float(recall), 4),
            "exact_rows_per_sec": round(exact_rate, 1),
            "ann_rows_per_sec": round(ann_rate, 1),
            "ann_speedup": round(float(speedup), 2),
            "speedup_gated": size >= ANN_GATE_ROWS,
        })

    return {
        "dataset": "adult_uci",
        "source": source,
        "queries": int(len(queries)),
        "recall_floor": MIN_ANN_RECALL,
        "min_ann_speedup": MIN_ANN_SPEEDUP,
        "ann_gate_rows": ANN_GATE_ROWS,
        "gate_size": GATE_SIZE,
        # the regression-gated metric: ANN rate at the CI-comparable size
        "rows_per_sec": round(gate_rate if gate_rate is not None
                              else rows[0]["ann_rows_per_sec"], 1),
        "sizes": rows,
    }

"""In-memory LRU cache for served explanation results.

The serving layer answers heavy repeated traffic over a fixed dataset, so
many requests are literal repeats of rows already explained.  The cache
stores one entry per (encoded row, desired class, pipeline fingerprint)
key; keying on the fingerprint automatically invalidates every entry when
the underlying artifact changes, so no explicit flush is needed on reload.

Every operation is atomic under an internal lock, so one cache instance
can be shared by concurrent request threads (the scaled serving tier
drives one service per replica from a thread pool): a ``get`` can never
observe a half-applied ``put``, eviction bookkeeping cannot double-count,
and :attr:`stats` returns a consistent snapshot of all counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["LRUResultCache"]


class LRUResultCache:
    """Bounded least-recently-used mapping with hit/miss accounting.

    Parameters
    ----------
    capacity:
        Maximum number of entries; ``0`` disables caching entirely (every
        lookup misses, nothing is stored).
    """

    def __init__(self, capacity=4096):
        capacity = int(capacity)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def get(self, key):
        """Return the cached value for ``key`` or ``None``, updating stats.

        A hit moves the entry to the most-recently-used position.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, value):
        """Insert ``value`` under ``key``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def items(self):
        """Snapshot of ``(key, value)`` pairs in LRU-to-MRU order.

        Reading through this view does not touch the hit/miss counters
        or recency — it exists for bulk maintenance (the serving
        rollover migration re-validates every entry), not for lookups.
        """
        with self._lock:
            return list(self._entries.items())

    def clear(self):
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self):
        """Counters dict: size, capacity, hits, misses, evictions.

        Taken under the lock, so the size and counters are one
        consistent point-in-time snapshot even while other threads keep
        serving through the cache.
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
